"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

- ``verify <file.v> --bench <name>`` — run the UVLLM pipeline on a DUT
  file against a registered benchmark harness;
- ``lint <file.v>`` — Verilator-style lint report;
- ``bench-list`` — list the registered benchmark designs;
- ``inject <name>`` — print a mutated (buggy) copy of a benchmark;
- ``simulate <file.v> --vcd out.vcd`` — elaborate, run the benchmark
  stimulus, dump a VCD;
- ``campaign`` — run a (dataset x methods) sweep through the parallel
  campaign runner: ``--jobs N`` fans units out over worker processes,
  ``--cache-dir`` memoizes finished units on disk, ``--shard i/n``
  runs one round-robin partition of the grid (for multi-host sweeps
  sharing a cache directory); every record carries its coverage
  fragment, merged into a coverage DB (``--coverage-db``; sharded
  runs also drop their partition into a per-grid slot under
  ``<cache-dir>/coverage/`` for cross-host merging);
- ``coverage <db.json ...>`` — union-merge coverage databases and
  report totals, per-module bins and (``--holes``) uncovered bins;
- ``profile --bench <name>`` — run a bench workload under ``cProfile``
  on either backend and print the top cumulative hotspots, so perf
  work starts from data;
- ``report <telemetry-dir>`` — summarize the span/metrics shards a
  ``--telemetry`` campaign or fuzz run wrote: per-phase wall-time
  breakdown, cache hit rates, per-module cycles/sec, slowest units,
  lane-demotion histogram; ``--trace-out`` exports a Chrome
  trace-event JSON loadable in Perfetto;
- ``fuzz`` — differential fuzzing: generate seeded random designs
  and run each through the xcheck lockstep + printer round-trip +
  coverage-parity oracle; failures are delta-debugged to minimal
  reproducers (written to ``--artifact-dir`` and promotable into
  ``tests/corpus/``).  Units are content-hashed like campaign units,
  so ``--cache-dir`` makes fuzz runs resumable and ``--shard i/n``
  splits them across hosts.
"""

import argparse
import sys

from repro.bench.registry import all_modules, get_module, make_hr_sequence
from repro.core.config import UVLLMConfig
from repro.core.framework import UVLLM
from repro.lint.linter import Linter
from repro.llm.mock import MockLLM


def _cmd_lint(args):
    with open(args.file) as handle:
        source = handle.read()
    report = Linter().lint(source)
    print(report.format(filename=args.file))
    return 1 if report.errors else 0


def _cmd_bench_list(args):
    print(f"{'name':<18}{'category':<12}{'type':<12}{'ports'}")
    for bench in all_modules():
        ports = ", ".join(bench.compare_signals)
        print(f"{bench.name:<18}{bench.category:<12}"
              f"{bench.type_tag:<12}{ports}")
    return 0


def _cmd_verify(args):
    bench = get_module(args.bench)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    llm = MockLLM(seed=args.seed)
    config = UVLLMConfig(
        max_iterations=args.max_iterations,
        ms_iterations=args.ms_iterations,
        patch_form=args.patch_form,
    )
    outcome = UVLLM(llm, config).verify_and_repair(source, bench)
    print(f"hit        : {outcome.hit}")
    print(f"stage      : {outcome.stage}")
    print(f"iterations : {outcome.iterations}")
    print(f"time (mod.): {outcome.seconds:.2f}s")
    print(f"llm calls  : {outcome.llm_calls} (${outcome.cost_usd:.4f})")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(outcome.final_source)
        print(f"repaired source written to {args.output}")
    elif args.show:
        print("---")
        print(outcome.final_source)
    return 0 if outcome.hit else 1


def _cmd_inject(args):
    from repro.errgen.generator import generate_for_module

    bench = get_module(args.name)
    instances = generate_for_module(
        bench, per_operator=1, seed=args.seed
    )
    wanted = [
        inst for inst in instances
        if args.operator is None or inst.operator == args.operator
    ]
    if not wanted:
        print(f"no applicable mutation (operator={args.operator})",
              file=sys.stderr)
        return 1
    instance = wanted[0]
    print(f"// {instance.instance_id}: {instance.description}",
          file=sys.stderr)
    print(instance.buggy_source)
    return 0


def _cmd_simulate(args):
    from repro.sim.vcd import dump_simulator
    from repro.uvm.test import run_uvm_test

    bench = get_module(args.bench)
    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = bench.source
    result = run_uvm_test(
        source, make_hr_sequence(bench), bench.protocol, bench.model(),
        bench.compare_signals, top=bench.top, backend=args.backend,
    )
    print(f"ok={result.ok} pass_rate={result.pass_rate:.2%} "
          f"checked={result.checked} coverage={result.coverage:.2%}")
    for entry in result.log.mismatches()[:5]:
        print(entry.format())
    if args.vcd and result.simulator is not None:
        # An aborted simulation (combinational loop, runaway deltas)
        # still flushes the waveform up to the abort point, with the
        # abort recorded in a trailing VCD comment.
        abort_note = None
        if result.error:
            abort_note = (
                "aborted at t=%d: %s"
                % (int(getattr(result.simulator, "time", 0)), result.error)
            )
        dump_simulator(result.simulator, path=args.vcd,
                       abort_note=abort_note)
        if abort_note:
            print(f"partial waveform written to {args.vcd} ({abort_note})")
        else:
            print(f"waveform written to {args.vcd}")
    elif args.vcd:
        print(f"no simulator state to dump ({result.error or 'no run'})",
              file=sys.stderr)
    return 0 if result.all_passed else 1


def _cmd_campaign(args):
    import json

    from repro.errgen.generator import generate_dataset
    from repro.experiments.runner import METHODS, group_records, rates
    from repro.runner import (
        expand_grid,
        parse_shard,
        run_units,
        shard_units,
    )
    from repro.runner.cache import record_to_dict
    from repro.runner.scheduler import default_jobs, default_lanes

    methods = (
        tuple(args.methods.split(",")) if args.methods else METHODS
    )
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)} "
              f"(known: {', '.join(METHODS)})", file=sys.stderr)
        return 2
    modules = args.modules.split(",") if args.modules else None
    if modules:
        known = {bench.name for bench in all_modules()}
        missing = [name for name in modules if name not in known]
        if missing:
            print(f"unknown modules: {', '.join(missing)} "
                  f"(see 'bench-list')", file=sys.stderr)
            return 2
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.lanes is None or args.lanes == "auto":
        # Explicit 'auto' insists REPRO_SIM_LANES is set; with the
        # flag omitted an unset variable just means 1 — but a set,
        # malformed variable is an error either way, never a silent
        # fallback to a serial campaign.
        try:
            lanes = default_lanes(require=args.lanes == "auto")
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    else:
        try:
            lanes = max(1, int(args.lanes))
        except ValueError:
            print(f"bad --lanes value '{args.lanes}' (want an integer "
                  f"or 'auto')", file=sys.stderr)
            return 2
    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    instances = generate_dataset(
        seed=args.seed, per_operator=args.per_operator, target=None,
        modules=modules, cache_dir=args.cache_dir,
    )
    units = expand_grid(instances, methods, attempts=args.attempts,
                        backend=args.backend)
    total = len(units)
    grid_key = _grid_key(units)
    if not units:
        print("campaign grid is empty", file=sys.stderr)
        return 1
    if shard is not None:
        units = shard_units(units, *shard)
        print(f"shard {args.shard}: {len(units)}/{total} units",
              file=sys.stderr)
        if not units:
            # A small grid can legitimately leave a shard empty; the
            # other shards still cover it, so this host succeeded.
            print(f"shard {args.shard} has no units (grid has {total}); "
                  f"nothing to do", file=sys.stderr)
            return 0

    if args.telemetry and not args.cache_dir:
        print("--telemetry needs --cache-dir (shards live under "
              "<cache-dir>/telemetry/)", file=sys.stderr)
        return 2
    if args.forensics and not args.cache_dir:
        print("--forensics needs --cache-dir (bundles live under "
              "<cache-dir>/forensics/)", file=sys.stderr)
        return 2
    from repro.runner import CampaignInterrupted

    try:
        records = run_units(units, jobs=jobs, cache_dir=args.cache_dir,
                            show_progress=True, lanes=lanes,
                            telemetry=args.telemetry,
                            forensics_capture=args.forensics,
                            unit_timeout=args.unit_timeout,
                            fail_fast=args.fail_fast)
    except CampaignInterrupted as exc:
        print(f"{exc}; re-run the same command to resume",
              file=sys.stderr)
        return 130
    if args.telemetry:
        import os

        telemetry_dir = os.path.join(args.cache_dir, "telemetry")
        print(f"telemetry shards written under {telemetry_dir}; "
              f"summarize with: repro.cli report {telemetry_dir}",
              file=sys.stderr)
    if args.forensics:
        import os

        forensics_dir = os.path.join(args.cache_dir, "forensics")
        bundles = [
            name for name in sorted(os.listdir(forensics_dir))
            if os.path.isdir(os.path.join(forensics_dir, name))
        ] if os.path.isdir(forensics_dir) else []
        print(f"{len(bundles)} forensic bundle(s) under {forensics_dir}; "
              f"inspect with: repro.cli triage {forensics_dir}",
              file=sys.stderr)

    print(f"{'method':<14}{'n':>5}{'HR %':>8}{'FR %':>8}{'t (s)':>9}")
    by_method = group_records(records, lambda r: r.method)
    for method in methods:
        subset = by_method.get(method, [])
        hr, fr, seconds = rates(subset)
        print(f"{method:<14}{len(subset):>5}{hr:>8.1f}{fr:>8.1f}"
              f"{seconds:>9.2f}")
    if args.records:
        with open(args.records, "w") as handle:
            for record in records:
                handle.write(json.dumps(record_to_dict(record)) + "\n")
        print(f"records written to {args.records}", file=sys.stderr)

    import os

    from repro.cover.db import CoverageDB

    db = CoverageDB.from_records(records)
    print(f"functional coverage (merged over this run): "
          f"{100.0 * db.functional_coverage():.1f}%")
    if args.coverage_db:
        db.write(args.coverage_db)
        print(f"coverage DB written to {args.coverage_db} "
              f"(key {db.content_key()[:12]})", file=sys.stderr)
    if args.cache_dir and shard is not None:
        # Shard slot under the shared cache dir, keyed by the full
        # grid's identity: each host overwrites *its own* partition on
        # re-runs (no stale accumulation), and merging one campaign's
        # `<grid-key>.shard-*` set reproduces the --jobs 1 database
        # bit-for-bit.
        index, count = shard
        path = os.path.join(
            args.cache_dir, "coverage",
            f"{grid_key}.shard-{index + 1}-of-{count}.json",
        )
        db.write(path)
        print(f"shard coverage DB saved to {path}; merge with: "
              f"repro.cli coverage "
              f"'{os.path.join(args.cache_dir, 'coverage', grid_key)}"
              f".shard-*.json'", file=sys.stderr)
    poisoned = [r for r in records
                if getattr(r, "failure_kind", None)]
    if poisoned:
        print(f"{len(poisoned)} unit(s) QUARANTINED (campaign ran to "
              f"completion; poisoned records carry the failure "
              f"detail):", file=sys.stderr)
        for record in poisoned:
            detail = record.failure_detail or {}
            print(f"  {record.instance_id}::{record.method} "
                  f"[{record.failure_kind}] "
                  f"{detail.get('error', '')}", file=sys.stderr)
        return 3
    return 0


def _grid_key(units):
    """Stable identity of a campaign grid: the hash of its units'
    cache keys (content-hashed inputs), independent of sharding."""
    import hashlib

    digest = hashlib.sha256()
    for unit in units:
        digest.update(unit.cache_key().encode("ascii"))
    return digest.hexdigest()[:16]


def _cmd_coverage(args):
    import glob as globmod

    from repro.cover.db import CoverageDB, CoverageMergeError
    from repro.cover.holes import format_holes

    paths = []
    for pattern in args.databases:
        matched = sorted(globmod.glob(pattern))
        paths.extend(matched if matched else [pattern])
    try:
        db = CoverageDB.merge_paths(paths)
    except FileNotFoundError as exc:
        print(f"cannot read coverage DB: {exc}", file=sys.stderr)
        return 2
    except (ValueError, CoverageMergeError) as exc:
        print(f"cannot merge coverage DBs: {exc}", file=sys.stderr)
        return 2
    print(db.report())
    if args.holes:
        for group in sorted(db.functional):
            model = _model_from_dict(group, db.functional[group])
            holes = _holes_from_model(model)
            if not holes:
                continue
            print(f"holes in {group}:")
            for line in format_holes(holes, limit=args.hole_limit
                                     ).splitlines():
                print(f"  {line}")
    if args.out:
        db.write(args.out)
        print(f"merged coverage DB written to {args.out} "
              f"(key {db.content_key()[:12]})", file=sys.stderr)
    if args.fail_under is not None and \
            100.0 * db.functional_coverage() < args.fail_under:
        print(f"functional coverage "
              f"{100.0 * db.functional_coverage():.2f}% is below "
              f"--fail-under {args.fail_under}", file=sys.stderr)
        return 1
    return 0


def _model_from_dict(group, data):
    """Rebuild a CoverModel skeleton (bins + hits) from DB counters so
    the hole report can run over a merged database (shared with the
    forensics bundle writer's coverage-hole section)."""
    from repro.cover.model import model_from_counters

    return model_from_counters(group, data)


def _holes_from_model(model):
    from repro.cover.holes import holes_of

    return holes_of(model)


def _cmd_fuzz(args):
    import contextlib
    import os

    from repro.fuzz.campaign import run_fuzz
    from repro.fuzz.corpus import make_entry, save_reproducer
    from repro.fuzz.shrink import shrink
    from repro.obs import sink, trace
    from repro.runner import parse_shard
    from repro.runner.scheduler import default_jobs

    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.telemetry and not args.cache_dir:
        print("--telemetry needs --cache-dir (shards live under "
              "<cache-dir>/telemetry/)", file=sys.stderr)
        return 2
    if args.forensics and not args.cache_dir:
        print("--forensics needs --cache-dir (bundles live under "
              "<cache-dir>/forensics/)", file=sys.stderr)
        return 2
    # The telemetry scope wraps the whole command (not just run_fuzz)
    # so parent-side shrinking shows up in the same shard set.
    telemetry_dir = (
        os.path.join(args.cache_dir, "telemetry")
        if args.telemetry else None
    )
    with contextlib.ExitStack() as scope:
        scope.enter_context(sink.telemetry_scope(telemetry_dir))
        return _run_fuzz_command(args, shard, jobs, run_fuzz, shrink,
                                 make_entry, save_reproducer, trace)


def _run_fuzz_command(args, shard, jobs, run_fuzz, shrink, make_entry,
                      save_reproducer, trace):
    from repro.forensics import bundle as forensics
    from repro.runner import CampaignInterrupted

    try:
        summary = run_fuzz(
            args.count, seed=args.seed, cycles=args.cycles, jobs=jobs,
            cache_dir=args.cache_dir, shard=shard,
            time_budget=args.time_budget, show_progress=True,
            forensics_capture=args.forensics,
            unit_timeout=args.unit_timeout, fail_fast=args.fail_fast,
        )
    except CampaignInterrupted as exc:
        print(f"{exc}; re-run the same command to resume",
              file=sys.stderr)
        return 130
    print(f"fuzz: {summary['run']}/{summary['count']} designs "
          f"({summary['cached']} cached, "
          f"{summary['skipped_by_budget']} skipped by budget) in "
          f"{summary['elapsed']:.1f}s")
    if summary.get("poisoned"):
        print(f"{summary['poisoned']} unit(s) QUARANTINED (worker "
              f"crash/hang/exception — not divergences; cached as "
              f"poisoned verdicts)", file=sys.stderr)
    features = summary["features"]
    if features:
        top = ", ".join(f"{k}:{v}" for k, v in sorted(features.items()))
        print(f"feature coverage: {top}")

    failures = summary["failures"]
    if not failures:
        print("no divergences found")
        return 3 if summary.get("poisoned") else 0
    print(f"{len(failures)} failing design(s):", file=sys.stderr)
    bundles = summary.get("forensics") or [None] * len(failures)
    for verdict, bundle_dir in zip(failures, bundles):
        kind = verdict["failure"]["kind"]
        source = verdict["source"]
        ops = [tuple(op) for op in verdict["ops"]]
        print(f"  seed {verdict['design_seed']}: {kind} — "
              f"{verdict['failure']['detail'][:200]}", file=sys.stderr)
        if bundle_dir:
            print(f"    debug bundle: {bundle_dir}", file=sys.stderr)
        if args.shrink:
            # The shrinker re-runs the oracle hundreds of times; each
            # intermediate failure must not spawn its own bundle.
            with forensics.suppress(), \
                    trace.span("shrink", cat="fuzz",
                               seed=verdict["design_seed"]):
                result = shrink(source, ops, kind)
            print(f"    shrunk {len(source)} -> {len(result.source)} "
                  f"chars, {len(ops)} -> {len(result.ops)} ops "
                  f"({result.checks} oracle checks)", file=sys.stderr)
            source, ops = result.source, result.ops
            if bundle_dir:
                forensics.attach_shrunk(bundle_dir, source, ops)
        # A freshly-found failure still reproduces, so the entry is
        # written with expect="fail"; after fixing the bug, flip it
        # to "pass" when promoting into tests/corpus (the content
        # address hashes kind/source/ops only, so the filename
        # stays valid).
        entry = make_entry(
            kind, source, ops,
            description=verdict["failure"]["detail"][:500],
            origin={
                "design_seed": verdict["design_seed"],
                "stim_seed": verdict["stim_seed"],
                "cycles": verdict["cycles"],
                "generator_version": _generator_version(),
            },
            expect="fail",
        )
        for directory in filter(None, (args.artifact_dir,
                                       args.corpus_dir)):
            path = save_reproducer(entry, directory)
            print(f"    reproducer saved to {path}", file=sys.stderr)
    return 1


def _cmd_profile(args):
    from repro.sim.benchmark import profile_bench

    bench = get_module(args.bench)
    print(f"profiling {bench.name} on the {args.backend} backend "
          f"({args.repeat} passes, trace={'on' if args.trace else 'off'})",
          file=sys.stderr)
    profile_bench(
        bench, backend=args.backend, trace=args.trace,
        repeat=args.repeat, top_n=args.top, sort=args.sort,
        spans=args.spans,
    )
    return 0


def _cmd_report(args):
    import json

    from repro.obs import export, sink

    spans, metrics = sink.read_shards(args.telemetry_dir)
    opens = sink.read_opens(args.telemetry_dir)
    if not spans and not opens and not metrics.counters \
            and not metrics.histograms:
        print(f"no telemetry shards found under {args.telemetry_dir}",
              file=sys.stderr)
        return 1
    report = export.summarize(spans, metrics, top=args.top, opens=opens)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(export.render_summary(report, markdown=args.markdown),
              end="")
    if args.trace_out:
        export.write_chrome_trace(spans, args.trace_out)
        print(f"chrome trace written to {args.trace_out} "
              f"(load at ui.perfetto.dev or chrome://tracing)",
              file=sys.stderr)
    if args.merged_out:
        sink.write_merged(args.telemetry_dir, args.merged_out)
        print(f"merged telemetry JSONL written to {args.merged_out}",
              file=sys.stderr)
    return 0


def _cmd_triage(args):
    from repro.forensics import triage

    bundles = triage.list_bundles(args.forensics_dir)
    if args.show:
        try:
            manifest = triage.resolve_bundle(args.forensics_dir,
                                             args.show)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(triage.describe(manifest), end="")
        return 0
    if args.diff:
        try:
            left = triage.resolve_bundle(args.forensics_dir,
                                         args.diff[0])
            right = triage.resolve_bundle(args.forensics_dir,
                                          args.diff[1])
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(triage.diff_bundles(left, right), end="")
        return 0
    if args.replay is not None:
        targets = bundles
        if args.replay:  # explicit ids; empty list means "all"
            try:
                targets = [
                    triage.resolve_bundle(args.forensics_dir, ref)
                    for ref in args.replay
                ]
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
        if not targets:
            print(f"no bundles under {args.forensics_dir}",
                  file=sys.stderr)
            return 1
        stale = 0
        for manifest in targets:
            name = _bundle_name(manifest)
            try:
                reproduced, detail = triage.replay(manifest)
            except Exception as exc:
                reproduced = False
                detail = f"replay crashed: {type(exc).__name__}: {exc}"
            status = "REPRODUCED" if reproduced else "NOT REPRODUCED"
            stale += 0 if reproduced else 1
            print(f"{status:<16} {name}  {detail}")
        if stale:
            print(f"{stale}/{len(targets)} bundle(s) no longer "
                  f"reproduce as recorded — a fix landed or the "
                  f"replay contract broke", file=sys.stderr)
            return 1
        return 0
    # Default: list bundles.
    if not bundles:
        print(f"no bundles under {args.forensics_dir}", file=sys.stderr)
        return 1
    print(f"{'bundle':<28}{'kind':<12}{'sections':>9}  label")
    for manifest in bundles:
        print(f"{_bundle_name(manifest):<28}"
              f"{manifest.get('kind', '?'):<12}"
              f"{len(manifest.get('sections', {})):>9}  "
              f"{manifest.get('label', '?')}")
    return 0


def _bundle_name(manifest):
    import os

    return os.path.basename(manifest["_dir"])


def _generator_version():
    from repro.fuzz.generate import GENERATOR_VERSION

    return GENERATOR_VERSION


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="UVLLM reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint a Verilog file")
    lint.add_argument("file")
    lint.set_defaults(func=_cmd_lint)

    bench_list = sub.add_parser("bench-list", help="list benchmarks")
    bench_list.set_defaults(func=_cmd_bench_list)

    verify = sub.add_parser("verify", help="run UVLLM on a DUT")
    verify.add_argument("file", help="Verilog file ('-' for stdin)")
    verify.add_argument("--bench", required=True,
                        help="benchmark harness name")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--max-iterations", type=int, default=5)
    verify.add_argument("--ms-iterations", type=int, default=2)
    verify.add_argument("--patch-form", choices=("pair", "complete"),
                        default="pair")
    verify.add_argument("--output", help="write repaired source here")
    verify.add_argument("--show", action="store_true",
                        help="print repaired source")
    verify.set_defaults(func=_cmd_verify)

    inject = sub.add_parser("inject", help="print a mutated benchmark")
    inject.add_argument("name")
    inject.add_argument("--operator", default=None)
    inject.add_argument("--seed", type=int, default=0)
    inject.set_defaults(func=_cmd_inject)

    simulate = sub.add_parser("simulate", help="run the UVM testbench")
    simulate.add_argument("--bench", required=True)
    simulate.add_argument("--file", default=None,
                          help="DUT file (defaults to the golden source)")
    simulate.add_argument("--vcd", default=None, help="VCD output path")
    simulate.add_argument("--backend", default=None,
                          choices=("interp", "compiled", "xcheck"),
                          help="simulation backend (default: interp, or "
                               "REPRO_SIM_BACKEND)")
    simulate.set_defaults(func=_cmd_simulate)

    campaign = sub.add_parser(
        "campaign",
        help="run a method sweep through the parallel campaign runner",
    )
    campaign.add_argument("--modules", default=None,
                          help="comma-separated benchmark names "
                               "(default: all)")
    campaign.add_argument("--methods", default=None,
                          help="comma-separated methods (default: all)")
    campaign.add_argument("--per-operator", type=int, default=1,
                          help="error instances per mutation operator")
    campaign.add_argument("--attempts", type=int, default=3,
                          help="LLM attempts per unit (pass@k)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="dataset generation seed")
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes (0 = auto)")
    campaign.add_argument("--cache-dir", default=None,
                          help="memoize finished units/datasets here")
    campaign.add_argument("--shard", default=None, metavar="i/n",
                          help="run the i-th of n round-robin shards")
    campaign.add_argument("--backend", default=None,
                          choices=("interp", "compiled", "xcheck"),
                          help="simulation backend for every UVM run "
                               "(default: interp, or REPRO_SIM_BACKEND); "
                               "cache records are keyed per backend")
    campaign.add_argument("--lanes", default=None,
                          help="pack up to N stimulus seeds per "
                               "same-design simulation batch (compiled "
                               "backend only; records are bit-identical "
                               "to --lanes 1). 'auto' requires "
                               "REPRO_SIM_LANES to hold the count; "
                               "omitted, REPRO_SIM_LANES if set, else 1")
    campaign.add_argument("--records", default=None,
                          help="write per-unit records as JSONL here")
    campaign.add_argument("--coverage-db", default=None,
                          help="write this run's merged coverage DB "
                               "(deterministic JSON) here")
    campaign.add_argument("--telemetry", action="store_true",
                          help="record span/metrics shards under "
                               "<cache-dir>/telemetry/ (records and "
                               "coverage stay bit-identical)")
    campaign.add_argument("--forensics", action="store_true",
                          help="archive every failing unit as a debug "
                               "bundle under <cache-dir>/forensics/ "
                               "(stimulus, waveforms, divergence "
                               "report; records stay bit-identical)")
    campaign.add_argument("--unit-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget per unit; a unit "
                               "that exceeds it is retried and, on a "
                               "second strike, quarantined as a "
                               "poisoned record (default: no limit)")
    campaign.add_argument("--fail-fast", action="store_true",
                          help="abort on the first unit failure "
                               "instead of retrying/quarantining "
                               "(restores pre-fault-tolerance "
                               "semantics)")
    campaign.set_defaults(func=_cmd_campaign)

    coverage = sub.add_parser(
        "coverage",
        help="merge and report coverage databases",
    )
    coverage.add_argument("databases", nargs="+",
                          help="coverage DB files (globs allowed), e.g. "
                               ".campaign-cache/coverage/*.json")
    coverage.add_argument("--out", default=None,
                          help="write the merged DB here")
    coverage.add_argument("--holes", action="store_true",
                          help="list uncovered bins per module")
    coverage.add_argument("--hole-limit", type=int, default=20,
                          help="max holes listed per module")
    coverage.add_argument("--fail-under", type=float, default=None,
                          metavar="PCT",
                          help="exit 1 if merged functional coverage "
                               "falls below PCT")
    coverage.set_defaults(func=_cmd_coverage)

    profile = sub.add_parser(
        "profile",
        help="run a bench workload under cProfile and print hotspots",
    )
    profile.add_argument("--bench", required=True,
                         help="benchmark module to drive (see "
                              "'bench-list')")
    profile.add_argument("--backend", default="compiled",
                         choices=("interp", "compiled", "xcheck"),
                         help="simulation backend to profile "
                              "(default: compiled)")
    profile.add_argument("--repeat", type=int, default=3,
                         help="full drive passes inside the profile")
    profile.add_argument("--top", type=int, default=25,
                         help="hotspots to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"),
                         help="pstats sort key")
    profile.add_argument("--trace", action="store_true",
                         help="profile with value-change tracing on")
    profile.add_argument("--spans", action="store_true",
                         help="also print a span timeline and "
                              "settle/tick phase split from one extra "
                              "instrumented pass")
    profile.set_defaults(func=_cmd_profile)

    report = sub.add_parser(
        "report",
        help="summarize telemetry shards from a --telemetry run",
    )
    report.add_argument("telemetry_dir",
                        help="telemetry directory, e.g. "
                             "<cache-dir>/telemetry/")
    report.add_argument("--top", type=int, default=10,
                        help="slowest units to list")
    report.add_argument("--json", action="store_true",
                        help="print the summary as JSON")
    report.add_argument("--markdown", action="store_true",
                        help="render tables as GitHub-flavoured "
                             "markdown")
    report.add_argument("--trace-out", default=None, metavar="FILE",
                        help="export a Chrome trace-event JSON "
                             "(Perfetto-loadable) here")
    report.add_argument("--merged-out", default=None, metavar="FILE",
                        help="write the merged telemetry JSONL "
                             "(deterministic bytes) here")
    report.set_defaults(func=_cmd_report)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the simulation stack",
    )
    fuzz.add_argument("--count", type=int, default=100,
                      help="number of random designs")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first design seed (designs use seed..seed+N)")
    fuzz.add_argument("--cycles", type=int, default=24,
                      help="stimulus cycles per design")
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="worker processes (0 = auto)")
    fuzz.add_argument("--cache-dir", default=None,
                      help="memoize verdicts here (resumable runs)")
    fuzz.add_argument("--shard", default=None, metavar="i/n",
                      help="run the i-th of n round-robin shards")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop dispatching new designs after this "
                           "long (finished units stay cached)")
    fuzz.add_argument("--no-shrink", dest="shrink",
                      action="store_false",
                      help="skip delta-debugging of failures")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="write minimized failing reproducers here "
                           "(CI uploads them as artifacts)")
    fuzz.add_argument("--corpus-dir", default=None,
                      help="also save reproducers into this corpus "
                           "directory (e.g. tests/corpus)")
    fuzz.add_argument("--telemetry", action="store_true",
                      help="record span/metrics shards under "
                           "<cache-dir>/telemetry/ (verdicts are "
                           "unaffected)")
    fuzz.add_argument("--forensics", action="store_true",
                      help="archive every failing design as a debug "
                           "bundle under <cache-dir>/forensics/ "
                           "(verdicts are unaffected)")
    fuzz.add_argument("--unit-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="wall-clock budget per fuzz unit; a unit "
                           "that exceeds it is retried and, on a "
                           "second strike, quarantined as a poisoned "
                           "verdict (default: no limit)")
    fuzz.add_argument("--fail-fast", action="store_true",
                      help="abort on the first unit failure instead "
                           "of retrying/quarantining")
    fuzz.set_defaults(func=_cmd_fuzz)

    triage = sub.add_parser(
        "triage",
        help="inspect, replay and diff forensic debug bundles",
    )
    triage.add_argument("forensics_dir",
                        help="bundle directory, e.g. "
                             "<cache-dir>/forensics/")
    triage.add_argument("--show", default=None, metavar="BUNDLE",
                        help="render one bundle's failure and "
                             "divergence report (id or unique prefix)")
    triage.add_argument("--replay", nargs="*", default=None,
                        metavar="BUNDLE",
                        help="re-run bundles' archived stimulus "
                             "against current code; no argument "
                             "replays all. Exits 1 if any failure no "
                             "longer reproduces as recorded")
    triage.add_argument("--diff", nargs=2, default=None,
                        metavar=("A", "B"),
                        help="compare two bundles section by section")
    triage.set_defaults(func=_cmd_triage)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Failure forensics: capture-on-failure debug bundles.

Every failing work unit — scoreboard mismatch, lockstep
cross-check divergence, fuzz-oracle failure — can be archived as a
self-contained, content-addressed bundle under
``<cache-dir>/forensics/`` (see :mod:`repro.forensics.bundle`), and
``repro.cli triage`` lists, renders, replays and diffs those bundles
(:mod:`repro.forensics.triage`).

The package is a pure observer of the execution pipeline: capture
reads finished records and re-runs failures on the side; nothing here
ever feeds ``cache_key()`` or the bytes of a campaign record.
"""

from repro.forensics.bundle import (
    FORENSICS_ENV,
    capture_fuzz_failure,
    capture_unit_failure,
    capture_xcheck,
    enabled,
    forensics_dir,
    maybe_init_worker,
    scope,
    suppress,
    write_bundle,
)

__all__ = [
    "FORENSICS_ENV",
    "capture_fuzz_failure",
    "capture_unit_failure",
    "capture_xcheck",
    "enabled",
    "forensics_dir",
    "maybe_init_worker",
    "scope",
    "suppress",
    "write_bundle",
]

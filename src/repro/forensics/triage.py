"""Triage operations over forensic debug bundles.

Backing logic for ``repro.cli triage``: enumerate bundles in a
forensics directory, render one bundle's divergence report, re-replay
a bundle's archived stimulus against the *current* code (flagging
bundles whose failure no longer reproduces as recorded), and diff two
bundles section by section.

Replays run entirely from the bundle contents — archived sources plus
the flat op list — never from the bench registry or a live campaign,
so a bundle stays actionable after the code that produced it changed.
"""

import json
import os

from repro.forensics import bundle as forensics
from repro.forensics.diverge import (first_divergence, render_divergence)
from repro.forensics.replay import apply_recorded_ops, traced_run


def list_bundles(directory):
    """All bundle manifests under ``directory``, sorted by bundle dir
    name (content-addressed, so the order is stable)."""
    found = []
    if not os.path.isdir(directory):
        return found
    for entry in sorted(os.listdir(directory)):
        manifest_path = os.path.join(directory, entry, "manifest.json")
        if not os.path.isfile(manifest_path):
            continue
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            continue
        manifest["_dir"] = os.path.join(directory, entry)
        found.append(manifest)
    return found


def resolve_bundle(directory, ref):
    """Find one bundle by directory name, bundle id, or unique prefix."""
    matches = [
        manifest for manifest in list_bundles(directory)
        if ref in (os.path.basename(manifest["_dir"]),
                   manifest.get("bundle"))
        or os.path.basename(manifest["_dir"]).startswith(ref)
        or str(manifest.get("bundle", "")).startswith(ref)
    ]
    if not matches:
        raise KeyError(f"no bundle matching '{ref}'")
    if len(matches) > 1:
        names = ", ".join(os.path.basename(m["_dir"]) for m in matches)
        raise KeyError(f"ambiguous bundle '{ref}': {names}")
    return matches[0]


def _read_section(manifest, section, mode="r"):
    filename = (manifest.get("sections") or {}).get(section)
    if filename is None:
        return None
    path = os.path.join(manifest["_dir"], filename)
    try:
        with open(path, mode) as handle:
            return handle.read()
    except OSError:
        return None


def load_stimulus(manifest):
    """The archived op list: ``(dialect, ops, top)``."""
    raw = _read_section(manifest, "stimulus")
    if raw is None:
        return None, [], None
    doc = json.loads(raw)
    ops = [tuple(op) for op in doc.get("ops", ())]
    return doc.get("dialect", "uvm"), ops, doc.get("top")


def load_divergence(manifest):
    raw = _read_section(manifest, "divergence")
    return json.loads(raw) if raw else None


def describe(manifest):
    """One-screen rendering of a bundle for ``triage --show``."""
    lines = [
        "bundle    : %s" % os.path.basename(manifest["_dir"]),
        "kind      : %s" % manifest.get("kind"),
        "label     : %s" % manifest.get("label"),
        "sections  : %s" % ", ".join(sorted(manifest.get("sections",
                                                         {}))),
    ]
    failure = manifest.get("failure") or {}
    for key in sorted(failure):
        lines.append("  failure.%-12s %s" % (key, failure[key]))
    divergence = load_divergence(manifest)
    if divergence:
        lines.append("")
        lines.append(render_divergence(
            divergence.get("first_divergence"),
            divergence.get("cone")).rstrip())
    return "\n".join(lines) + "\n"


def replay(manifest):
    """Re-run a bundle's archived failure against current code.

    Returns ``(reproduced, detail)``.  ``reproduced`` is True when the
    failure recurs *as recorded* (same divergence signal/time, same
    oracle kind...); a False means the current tree no longer exhibits
    the archived behaviour — either a fix landed or the replay
    contract broke, and both deserve a human look.
    """
    contract = manifest.get("replay") or {}
    mode = contract.get("mode", "uvm-compare")
    if mode == "none":
        # Poisoned-unit bundles: executing the unit is what failed, so
        # there is nothing mechanical to re-check — vacuously current.
        return True, contract.get("reason", "no replay contract")
    with forensics.suppress():
        if mode == "fuzz":
            return _replay_fuzz(manifest)
        if mode == "xcheck":
            return _replay_xcheck(manifest)
        return _replay_compare(manifest)


def _replay_compare(manifest):
    """Scoreboard bundles: replay the op list on both archived sources
    and require the recorded first divergence to recur."""
    dialect, ops, top = load_stimulus(manifest)
    candidate_src = _read_section(manifest, "candidate_source")
    golden_src = _read_section(manifest, "golden_source")
    if candidate_src is None or golden_src is None:
        return False, "bundle lacks candidate/golden sources"
    expect = (manifest.get("replay") or {}).get("expect") or {}
    if expect.get("run_error"):
        # The recorded failure was "candidate never ran" (elaboration
        # or simulation abort); reproduced iff that still holds.
        from repro.hdl.errors import HdlError
        from repro.sim.engine import SimulationError

        try:
            traced_run(candidate_src, ops, dialect=dialect, top=top)
        except (HdlError, SimulationError) as exc:
            return True, "candidate still fails to run (%s)" % (
                str(exc).splitlines()[0])
        return False, "candidate runs now (recorded: failed to run)"
    candidate = traced_run(candidate_src, ops, dialect=dialect, top=top)
    golden = traced_run(golden_src, ops, dialect=dialect, top=top)
    report = first_divergence(golden.trace, candidate.trace)
    if bool(report.get("diverged")) != bool(expect.get("diverged")):
        return False, (
            "recorded diverged=%s, replay diverged=%s"
            % (expect.get("diverged"), report.get("diverged")))
    if not report.get("diverged"):
        return True, "no divergence, as recorded"
    same = (report.get("signal") == expect.get("signal")
            and report.get("time") == expect.get("time"))
    detail = "replay diverges at t=%s on '%s' (recorded t=%s on '%s')" % (
        report.get("time"), report.get("signal"),
        expect.get("time"), expect.get("signal"))
    return same, detail


def _replay_xcheck(manifest):
    """X-check bundles: re-run the recorded ops in lockstep and expect
    an :class:`XCheckDivergence` at the recorded point."""
    from repro.sim.compile.xcheck import (XCheckDivergence,
                                          XCheckSimulator)

    dialect, ops, top = load_stimulus(manifest)
    source = _read_section(manifest, "candidate_source")
    if source is None:
        return False, "bundle lacks candidate source"
    expect = (manifest.get("replay") or {}).get("expect") or {}
    try:
        sim = XCheckSimulator(source, top=top)
        apply_recorded_ops(sim, ops, dialect=dialect)
    except XCheckDivergence as exc:
        signal = getattr(exc, "signal", None)
        if expect.get("signal") in (None, signal):
            return True, "lockstep divergence recurred (%s)" % exc
        return False, (
            "lockstep diverged on '%s', recorded '%s'"
            % (signal, expect.get("signal")))
    return False, "recorded lockstep divergence did not recur"


def _replay_fuzz(manifest):
    """Fuzz bundles: re-run the oracle and expect the same failure
    kind."""
    from repro.fuzz.oracle import run_oracle

    _, ops, _ = load_stimulus(manifest)
    source = _read_section(manifest, "candidate_source")
    if source is None:
        return False, "bundle lacks candidate source"
    expect = (manifest.get("replay") or {}).get("expect") or {}
    failure = run_oracle(source, ops)
    if failure is None:
        return False, "oracle passes now (recorded kind=%s)" % (
            expect.get("kind"))
    if expect.get("kind") in (None, failure.kind):
        return True, "oracle failure recurred (kind=%s)" % failure.kind
    return False, ("oracle fails with kind=%s, recorded kind=%s"
                   % (failure.kind, expect.get("kind")))


def diff_bundles(left, right):
    """Section-by-section comparison of two bundles.

    Returns report text: differing manifests/hashes, plus — when both
    carry a candidate waveform — the first divergence *between the two
    candidates*, which localizes what changed between two captures of
    "the same" failure.
    """
    lines = ["%s  vs  %s" % (os.path.basename(left["_dir"]),
                             os.path.basename(right["_dir"]))]
    for key in ("kind", "label"):
        lv, rv = left.get(key), right.get(key)
        marker = "==" if lv == rv else "!="
        lines.append("  %-10s %s  %s | %s" % (key, marker, lv, rv))
    sections = sorted(set(left.get("sections", {}))
                      | set(right.get("sections", {})))
    left_sha = {left["sections"][s]: left["sha256"].get(left["sections"][s])
                for s in left.get("sections", {})}
    for section in sections:
        lf = (left.get("sections") or {}).get(section)
        rf = (right.get("sections") or {}).get(section)
        if lf is None or rf is None:
            lines.append("  section %-16s only in %s" % (
                section, "right" if lf is None else "left"))
            continue
        lsha = (left.get("sha256") or {}).get(lf)
        rsha = (right.get("sha256") or {}).get(rf)
        lines.append("  section %-16s %s" % (
            section, "identical" if lsha == rsha else "DIFFERS"))
    ld, rd = load_divergence(left), load_divergence(right)
    if ld and rd:
        lr = ld.get("first_divergence") or {}
        rr = rd.get("first_divergence") or {}
        lines.append("  recorded divergence: t=%s '%s'  |  t=%s '%s'" % (
            lr.get("time"), lr.get("signal"),
            rr.get("time"), rr.get("signal")))
    left_vcd = _read_section(left, "candidate_vcd")
    right_vcd = _read_section(right, "candidate_vcd")
    if left_vcd and right_vcd:
        from repro.sim.vcd import parse_vcd

        try:
            lt = parse_vcd(left_vcd)["trace"]
            rt = parse_vcd(right_vcd)["trace"]
            cross = first_divergence(lt, rt)
            if cross.get("diverged"):
                lines.append(
                    "  candidate waveforms split at t=%d on '%s'"
                    % (cross["time"], cross["signal"]))
            else:
                lines.append("  candidate waveforms identical on %d "
                             "shared signals"
                             % cross.get("signals_compared", 0))
        except Exception as exc:
            lines.append("  waveform cross-diff failed: %s" % exc)
    return "\n".join(lines) + "\n"

"""Waveform divergence diffing for debug bundles.

Given the golden and candidate canonical traces (the
``{name: [(time, Value)]}`` shape both backends produce
bit-identically), find the first simulation time at which any shared
signal's value splits, then walk the static fan-in cone of that signal
through :mod:`repro.locate.dfg` — the report an engineer starts from
instead of re-running by hand.
"""

from repro.sim.values import Value


def _value_dict(value):
    if value is None:
        return None
    return {
        "bits": int(value.bits),
        "xmask": int(value.xmask),
        "width": int(value.width),
        "verilog": value.to_verilog_bits(),
    }


def value_from_dict(data):
    """Inverse of the serialized value shape in divergence reports."""
    if data is None:
        return None
    return Value(data["bits"], data["width"], data["xmask"])


def _first_diff_time(golden, candidate):
    """First time two canonical value-change histories disagree.

    Returns ``(time, golden_value, candidate_value)`` or ``None``.
    Histories are step functions: at every change point of either
    side, the current values must match.
    """
    i = j = 0
    gv = cv = None
    while i < len(golden) or j < len(candidate):
        gt = golden[i][0] if i < len(golden) else None
        ct = candidate[j][0] if j < len(candidate) else None
        if ct is None or (gt is not None and gt <= ct):
            when = gt
            gv = golden[i][1]
            i += 1
            if ct is not None and ct == when:
                cv = candidate[j][1]
                j += 1
        else:
            when = ct
            cv = candidate[j][1]
            j += 1
        if gv != cv or getattr(gv, "xmask", 0) != getattr(cv, "xmask", 0):
            return when, gv, cv
    return None


def first_divergence(golden_trace, candidate_trace, clock_period=10):
    """The first (time, signal) where two traces split.

    Returns a JSON-pure report dict (``{"diverged": False, ...}`` when
    the shared signals agree everywhere).  Ties at the same time are
    broken by signal name, so the report is deterministic.
    """
    shared = sorted(set(golden_trace) & set(candidate_trace))
    best = None
    for name in shared:
        hit = _first_diff_time(golden_trace[name], candidate_trace[name])
        if hit is None:
            continue
        when, gv, cv = hit
        if best is None or (when, name) < (best[0], best[1]):
            best = (when, name, gv, cv)
    report = {
        "diverged": best is not None,
        "signals_compared": len(shared),
        "only_golden": sorted(set(golden_trace) - set(candidate_trace)),
        "only_candidate": sorted(set(candidate_trace) - set(golden_trace)),
    }
    if best is None:
        return report
    when, name, gv, cv = best
    also = []
    for other in shared:
        if other == name:
            continue
        hit = _first_diff_time(golden_trace[other], candidate_trace[other])
        if hit is not None and hit[0] == when:
            also.append(other)
    report.update({
        "time": int(when),
        "cycle": int(when) // clock_period,
        "signal": name,
        "golden": _value_dict(gv),
        "candidate": _value_dict(cv),
        "also_diverged_at_time": also,
    })
    return report


def fanin_cone(source, signal, top=None, max_sites=40):
    """Static fan-in cone of ``signal`` in ``source``.

    Parses the candidate source, builds the data-flow graph, and
    returns the transitive read set plus the definition sites (with
    lines and guards) driving the diverging signal — JSON-pure, and
    best-effort: any analysis failure degrades to an ``error`` note
    rather than losing the bundle.
    """
    try:
        from repro.hdl.parser import parse_source
        from repro.locate.dfg import build_dfg

        parsed = parse_source(source)
        module = None
        for candidate in parsed.modules:
            if top is None or candidate.name == top:
                module = candidate
                break
        if module is None and parsed.modules:
            module = parsed.modules[0]
        if module is None:
            return {"signal": signal, "error": "no module in source"}
        dfg = build_dfg(module)
        # Hierarchical divergences anchor the cone at the leaf name.
        base = signal.split(".")[-1]
        deps = sorted(dfg.dependencies(base))
        sites = []
        seen = set()
        frontier = [base] + [dep for dep in deps if dep != base]
        for target in frontier:
            for site in dfg.defs_of(target):
                key = (site.target, site.line, site.kind)
                if key in seen:
                    continue
                seen.add(key)
                sites.append({
                    "target": site.target,
                    "line": site.line,
                    "kind": site.kind,
                    "reads": list(site.reads),
                    "guard_lines": list(site.guard_lines),
                })
                if len(sites) >= max_sites:
                    break
            if len(sites) >= max_sites:
                break
        return {
            "signal": signal,
            "anchor": base,
            "dependencies": deps,
            "sites": sites,
            "truncated": len(sites) >= max_sites,
        }
    except Exception as exc:  # forensics must never break the run
        return {"signal": signal,
                "error": f"{type(exc).__name__}: {exc}"}


def render_divergence(report, cone=None):
    """Human-readable rendering of a divergence report (+ cone)."""
    lines = []
    if not report:
        return "no divergence report recorded\n"
    if not report.get("diverged"):
        lines.append(
            "traces agree on all %d shared signals"
            % report.get("signals_compared", 0)
        )
    else:
        lines.append(
            "first divergence at t=%d (cycle %d) on signal '%s'"
            % (report["time"], report["cycle"], report["signal"])
        )
        golden = report.get("golden") or {}
        candidate = report.get("candidate") or {}
        lines.append("  golden    : %s'b%s" % (
            golden.get("width", "?"), golden.get("verilog", "?")))
        lines.append("  candidate : %s'b%s" % (
            candidate.get("width", "?"), candidate.get("verilog", "?")))
        also = report.get("also_diverged_at_time") or []
        if also:
            lines.append("  also diverged at that time: "
                         + ", ".join(also[:8]))
    for side, key in (("only in golden", "only_golden"),
                      ("only in candidate", "only_candidate")):
        extra = report.get(key) or []
        if extra:
            lines.append("  signals %s: %s" % (side, ", ".join(extra[:8])))
    if cone and not cone.get("error"):
        lines.append("fan-in cone of '%s' (%d deps):"
                     % (cone.get("anchor", "?"),
                        len(cone.get("dependencies", []))))
        for site in cone.get("sites", [])[:12]:
            guard = (" guarded@%s" % ",".join(map(str, site["guard_lines"]))
                     if site.get("guard_lines") else "")
            lines.append("  line %4s  %-5s %s <- %s%s" % (
                site["line"], site["kind"], site["target"],
                ", ".join(site["reads"]) or "(const)", guard))
        if cone.get("truncated"):
            lines.append("  ... cone truncated")
    elif cone and cone.get("error"):
        lines.append("fan-in cone unavailable: %s" % cone["error"])
    return "\n".join(lines) + "\n"

"""Capture-on-failure debug bundles.

A *bundle* is a self-contained, content-addressed directory under
``<cache-dir>/forensics/`` archiving everything needed to understand —
and replay — one failing work unit:

- ``stimulus.json`` — the pin-level driving script as a replayable op
  list (fuzz corpus format / recorded UVM dialect);
- ``candidate.v`` / ``golden.v`` — the DUT sources;
- ``golden.vcd`` / ``candidate.vcd`` — both waveforms;
- ``divergence.json`` — first (cycle, signal) split plus the static
  fan-in cone of the diverging signal;
- ``spans.json`` — the unit's span-timeline slice from the telemetry
  shards;
- ``holes.txt`` — the coverage-hole report at failure time;
- ``manifest.json`` — section index, per-file SHA-256, failure record
  and the replay contract ``repro.cli triage --replay`` checks.

Like telemetry, forensics is a **pure observer**: the capture pipeline
runs after a unit's record exists, writes only under the forensics
directory, and never feeds ``cache_key()`` or record bytes — campaign
records are byte-identical with ``--forensics`` on or off.  Capture
errors degrade to a breadcrumb file, never to a failed campaign.
"""

import contextlib
import hashlib
import json
import os
import time

#: Environment variable carrying the forensics directory to pool
#: workers, exactly like ``REPRO_TELEMETRY``/``REPRO_COMPILE_CACHE``.
FORENSICS_ENV = "REPRO_FORENSICS"

#: Bump when the bundle layout or manifest semantics change.
BUNDLE_SCHEMA_VERSION = 1

#: Sections a complete simulation-failure bundle must list (the
#: ci_smoke regression gate).
COMPLETE_SECTIONS = (
    "stimulus", "candidate_source", "golden_vcd", "candidate_vcd",
    "divergence", "spans", "holes",
)

_dir = None
_suppressed = 0


def forensics_dir():
    """The active forensics directory, or None when capture is off."""
    return _dir


def enabled():
    """Whether failure capture is active (scope open, not suppressed)."""
    return _dir is not None and _suppressed == 0


@contextlib.contextmanager
def scope(path):
    """Enable failure capture for the duration of a block.

    Creates ``path``, exports it to child processes, and restores the
    prior state on exit (scopes may nest, e.g. ci_smoke wrapping a
    campaign).  ``None`` is a no-op pass-through.
    """
    global _dir
    if path is None:
        yield None
        return
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    prev_dir = _dir
    prev_env = os.environ.get(FORENSICS_ENV)
    _dir = path
    os.environ[FORENSICS_ENV] = path
    try:
        yield path
    finally:
        _dir = prev_dir
        if prev_env is None:
            os.environ.pop(FORENSICS_ENV, None)
        else:
            os.environ[FORENSICS_ENV] = prev_env


@contextlib.contextmanager
def suppress():
    """Temporarily disable capture (shrinker loops, replay runs, and
    the capture pipeline's own simulations must not spawn bundles)."""
    global _suppressed
    _suppressed += 1
    try:
        yield
    finally:
        _suppressed -= 1


def maybe_init_worker():
    """Adopt the forensics directory exported by the campaign parent
    (pool-worker hook; cheap no-op when capture is off)."""
    global _dir
    path = os.environ.get(FORENSICS_ENV)
    if not path:
        return False
    _dir = path
    return True


def _sha(data):
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def _breadcrumb(message):
    """Record a capture failure without disturbing the run."""
    if _dir is None:
        return
    with contextlib.suppress(Exception):
        path = os.path.join(_dir, "capture-errors-%d.log" % os.getpid())
        with open(path, "a") as handle:
            handle.write(message.rstrip() + "\n")


def _json_bytes(payload):
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode()


def write_bundle(kind, label, sections, failure, replay, out_dir=None,
                 extra=None):
    """Write one bundle directory; returns its path.

    ``sections`` maps logical section names to ``(filename, bytes)``
    pairs.  The bundle id is the content hash of the section bytes
    (plus kind), so identical failures land in identical directories —
    an existing bundle is left untouched (first writer wins, and
    re-captures of the same failure dedupe for free).  The manifest is
    deterministic except for the ``created`` timestamp.
    """
    directory = out_dir or _dir
    if directory is None:
        return None
    files = {}
    for section, (filename, data) in sorted(sections.items()):
        if data is None:
            continue
        if isinstance(data, str):
            data = data.encode("utf-8")
        files[section] = (filename, data)
    digest_input = {"schema": BUNDLE_SCHEMA_VERSION, "kind": kind}
    digest_input["sections"] = {
        section: _sha(data) for section, (_, data) in files.items()
    }
    bundle_id = _sha(json.dumps(digest_input, sort_keys=True))[:16]
    bundle_dir = os.path.join(directory, "%s-%s" % (kind, bundle_id))
    manifest_path = os.path.join(bundle_dir, "manifest.json")
    if os.path.exists(manifest_path):
        return bundle_dir
    manifest = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "kind": kind,
        "bundle": bundle_id,
        "label": label,
        "failure": failure,
        "replay": replay,
        "sections": {
            section: filename for section, (filename, _) in files.items()
        },
        "sha256": {
            filename: _sha(data) for _, (filename, data) in files.items()
        },
        "created": time.time(),
    }
    if extra:
        manifest.update(extra)
    tmp_dir = bundle_dir + ".tmp-%d" % os.getpid()
    os.makedirs(tmp_dir, exist_ok=True)
    for _, (filename, data) in files.items():
        with open(os.path.join(tmp_dir, filename), "wb") as handle:
            handle.write(data)
    with open(os.path.join(tmp_dir, "manifest.json"), "wb") as handle:
        handle.write(_json_bytes(manifest))
    try:
        os.replace(tmp_dir, bundle_dir)
    except OSError:
        # A concurrent writer landed the same content-addressed
        # bundle; ours is redundant.
        with contextlib.suppress(Exception):
            import shutil

            shutil.rmtree(tmp_dir)
    return bundle_dir


def _telemetry_sibling():
    if _dir is None:
        return None
    parent = os.path.dirname(os.path.abspath(_dir))
    path = os.path.join(parent, "telemetry")
    return path if os.path.isdir(path) else None


def _slice_spans(label):
    """This unit's span subtree from the telemetry shards (JSON-pure),
    or None when telemetry is off / the unit span is not found."""
    telemetry_dir = _telemetry_sibling()
    if telemetry_dir is None:
        return None
    from repro.obs import sink

    sink.flush_spans()
    spans, _ = sink.read_shards(telemetry_dir)
    roots = [
        item for item in spans
        if item.get("name") in ("unit", "unit-group")
        and (item.get("attrs") or {}).get("label") == label
    ]
    if not roots:
        return None
    root = max(roots, key=lambda item: item.get("ts", 0.0))
    children = {}
    for item in spans:
        key = (item.get("pid", 0), item.get("parent", 0))
        children.setdefault(key, []).append(item)
    out, stack = [], [root]
    while stack:
        current = stack.pop()
        out.append(current)
        stack.extend(children.get(
            (current.get("pid", 0), current.get("sid", 0)), ()))
    out.sort(key=lambda item: (item.get("ts", 0.0), item.get("sid", 0)))
    return out


def _holes_text(coverage_fragment):
    """Coverage-hole report text from a record's coverage fragment."""
    functional = (coverage_fragment or {}).get("functional") or {}
    if not functional:
        return None
    from repro.cover.holes import format_holes, holes_of
    from repro.cover.model import model_from_counters

    pieces = []
    for group in sorted(functional):
        try:
            model = model_from_counters(group, functional[group])
            holes = holes_of(model)
        except Exception as exc:
            pieces.append("== %s: hole report failed (%s)" % (group, exc))
            continue
        pieces.append("== %s: %d hole(s)" % (group, len(holes)))
        if holes:
            pieces.append(format_holes(holes, limit=50))
    return "\n".join(pieces) + "\n" if pieces else None


def _divergence_payload(golden_trace, candidate_trace, source, top=None):
    """divergence.json body: first split + fan-in cone."""
    from repro.forensics.diverge import fanin_cone, first_divergence

    report = first_divergence(golden_trace or {}, candidate_trace or {})
    cone = None
    if report.get("diverged"):
        cone = fanin_cone(source, report["signal"], top=top)
    return {"first_divergence": report, "cone": cone}


def _vcd_text(simulator, abort_note=None):
    if simulator is None:
        return None
    from repro.sim.vcd import dump_simulator

    try:
        return dump_simulator(simulator, abort_note=abort_note)
    except Exception as exc:
        _breadcrumb("vcd dump failed: %s" % exc)
        return None


# -- capture points -----------------------------------------------------------

def capture_unit_failure(unit, record):
    """Scoreboard-mismatch capture for a failing campaign work unit.

    Called by the scheduler after a unit's record lands (the record is
    already final — capture only reads it).  A unit "fails" when its
    repair never hit; the bundle archives the *initial verification*
    failure on the buggy source: the mismatching UVM run re-executed
    scalar on the reference interpreter with a recording simulator
    (this is also the lane-demotion path: a unit that originally ran
    inside a packed lane batch gets its waveform from this dedicated
    traced scalar re-run).
    """
    if not enabled():
        return None
    if isinstance(record, dict):
        return None  # fuzz verdicts are captured by the fuzz campaign
    if getattr(record, "failure_kind", None):
        # A quarantined ("poisoned") record has no verdict to archive,
        # and re-running the unit here could crash or hang the parent;
        # its light bundle was written at quarantine time.
        return capture_poisoned(unit, getattr(record, "failure_detail",
                                              None) or
                                {"kind": record.failure_kind})
    if getattr(record, "hit", True):
        return None
    instance = getattr(unit, "instance", None)
    if instance is None:
        return None
    try:
        return _capture_scoreboard(unit, record, instance)
    except Exception as exc:
        _breadcrumb("capture_unit_failure(%s) failed: %r"
                    % (getattr(unit, "unit_id", "?"), exc))
        return None


def _capture_scoreboard(unit, record, instance):
    from repro.bench.registry import get_module, make_hr_sequence
    from repro.core.config import UVLLMConfig
    from repro.uvm.test import run_uvm_test

    bench = get_module(instance.module_name)
    overrides = dict(getattr(unit, "config_overrides", ()) or ())
    hr_seed = overrides.get("hr_seed", 0)
    stimulus = overrides.get("stimulus", UVLLMConfig.stimulus)
    sequence = make_hr_sequence(bench, seed=hr_seed, stimulus=stimulus)
    with suppress():
        result = run_uvm_test(
            instance.buggy_source, sequence, bench.protocol, bench.model(),
            bench.compare_signals, top=bench.top, backend="interp",
            record_ops=True,
        )
        golden_sim = None
        if result.ops:
            from repro.forensics.replay import traced_run

            try:
                golden_sim = traced_run(instance.golden_source, result.ops,
                                        dialect="uvm", top=bench.top)
            except Exception as exc:
                _breadcrumb("golden replay failed: %r" % exc)
    candidate_trace = getattr(result.simulator, "trace", None) or {}
    golden_trace = getattr(golden_sim, "trace", None) or {}
    divergence = _divergence_payload(
        golden_trace, candidate_trace, instance.buggy_source, top=bench.top)
    first = None
    if result.mismatches:
        mismatch = result.mismatches[0]
        first = {
            "time": getattr(mismatch, "time", None),
            "signal": getattr(mismatch, "signal", None),
            "expected": str(getattr(mismatch, "expected", "")),
            "actual": str(getattr(mismatch, "actual", "")),
        }
    stimulus_doc = {
        "format": "repro-stimulus-v1",
        "dialect": "uvm",
        "top": bench.top,
        "ops": [list(op) for op in result.ops],
    }
    failure = {
        "type": "scoreboard",
        "unit": getattr(unit, "unit_id", None),
        "method": getattr(unit, "method", None),
        "module": instance.module_name,
        "instance": instance.instance_id,
        "pass_rate": result.pass_rate,
        "checked": result.checked,
        "mismatch_count": len(result.mismatches),
        "first_mismatch": first,
        "error": result.error or None,
    }
    replay = {
        "mode": "uvm-compare",
        "dialect": "uvm",
        "top": bench.top,
        "expect": {
            "diverged": divergence["first_divergence"].get("diverged"),
            "signal": divergence["first_divergence"].get("signal"),
            "time": divergence["first_divergence"].get("time"),
            # Mutants that never elaborate have no ops/waveforms; the
            # replay contract is then "candidate still fails to run".
            "run_error": bool(result.error) and not result.ops,
        },
    }
    sections = {
        "stimulus": ("stimulus.json", _json_bytes(stimulus_doc)),
        "candidate_source": ("candidate.v", instance.buggy_source),
        "golden_source": ("golden.v", instance.golden_source),
        "golden_vcd": ("golden.vcd", _vcd_text(golden_sim)),
        "candidate_vcd": ("candidate.vcd", _vcd_text(result.simulator)),
        "divergence": ("divergence.json", _json_bytes(divergence)),
        "holes": ("holes.txt", _holes_text(getattr(record, "coverage",
                                                   None))),
    }
    spans = _slice_spans(getattr(unit, "unit_id", None))
    if spans is not None:
        sections["spans"] = ("spans.json", _json_bytes(spans))
    return write_bundle("scoreboard", getattr(unit, "unit_id", None),
                        sections, failure, replay)


def capture_poisoned(unit, failure):
    """Light bundle for a quarantined unit.

    Unlike scoreboard capture this must NOT re-run the unit — a
    poisoned unit kills or wedges whatever executes it, and the
    capture runs in the campaign parent.  The bundle archives the
    structured failure (kind, error, traceback, strikes), the unit's
    identity, and the candidate source when available; ``replay`` mode
    ``"none"`` tells triage there is nothing mechanical to re-check.
    """
    if not enabled():
        return None
    try:
        return _capture_poisoned(unit, failure)
    except Exception as exc:
        _breadcrumb("capture_poisoned(%s) failed: %r"
                    % (getattr(unit, "unit_id", "?"), exc))
        return None


def _capture_poisoned(unit, failure):
    label = getattr(unit, "unit_id", None) or type(unit).__name__
    instance = getattr(unit, "instance", None)
    identity = {
        "unit": label,
        "method": getattr(unit, "method", None),
        "backend": getattr(unit, "backend", None),
        "module": getattr(instance, "module_name", None),
        "instance": getattr(instance, "instance_id", None),
    }
    failure_doc = dict(failure or {})
    failure_doc.setdefault("type", "poisoned")
    sections = {
        "failure": ("failure.json", _json_bytes(failure_doc)),
        "unit": ("unit.json", _json_bytes(identity)),
    }
    source = getattr(instance, "buggy_source", None)
    if source:
        sections["candidate_source"] = ("candidate.v", source)
    replay = {"mode": "none",
              "reason": "poisoned unit: executing it is what failed"}
    return write_bundle("poisoned", label, sections, failure_doc, replay)


def capture_xcheck(xsim, context, signal, ref_value, dut_value, message):
    """Bundle an :class:`XCheckDivergence` at the raise site.

    ``xsim`` is the diverged :class:`XCheckSimulator` — both sides'
    traces are still live, and the op recorder (active only when
    forensics is on) holds the exact driving script.
    """
    if not enabled():
        return None
    try:
        return _capture_xcheck(xsim, context, signal, ref_value,
                               dut_value, message)
    except Exception as exc:
        _breadcrumb("capture_xcheck failed: %r" % exc)
        return None


def _capture_xcheck(xsim, context, signal, ref_value, dut_value, message):
    source = getattr(xsim, "_source", None)
    ops = list(getattr(xsim, "_forensic_ops", None) or ())
    with suppress():
        golden_vcd = _vcd_text(xsim.ref)
        candidate_vcd = _vcd_text(xsim.dut)
        divergence = _divergence_payload(
            getattr(xsim.ref, "trace", None),
            getattr(xsim.dut, "trace", None),
            source or "",
        )
    # The lockstep comparison sees non-traced state too (memory
    # words); when the traces agree, the exception's own signal/time
    # is the authoritative divergence point.
    report = divergence["first_divergence"]
    if not report.get("diverged") and signal:
        report.update({
            "diverged": True,
            "time": int(xsim.ref.time),
            "cycle": int(xsim.ref.time) // 10,
            "signal": signal,
            "untraced_state": True,
        })
    label = "xcheck::%s@t%d" % (
        getattr(xsim.design, "top_name", "?"), int(xsim.ref.time))
    failure = {
        "type": "xcheck",
        "context": context,
        "signal": signal,
        "time": int(xsim.ref.time),
        "interp": repr(ref_value),
        "compiled": repr(dut_value),
        "message": message,
    }
    stimulus_doc = {
        "format": "repro-stimulus-v1",
        "dialect": "uvm",
        "top": getattr(xsim.design, "top_name", None),
        "ops": [list(op) for op in ops],
    }
    replay = {
        "mode": "xcheck",
        "dialect": "uvm",
        "expect": {"signal": signal, "time": int(xsim.ref.time)},
    }
    sections = {
        "stimulus": ("stimulus.json", _json_bytes(stimulus_doc)),
        "candidate_source": ("candidate.v", source),
        "golden_vcd": ("golden.vcd", golden_vcd),
        "candidate_vcd": ("candidate.vcd", candidate_vcd),
        "divergence": ("divergence.json", _json_bytes(divergence)),
    }
    spans = _slice_spans(label) or _recent_spans()
    if spans is not None:
        sections["spans"] = ("spans.json", _json_bytes(spans))
    return write_bundle("xcheck", label, sections, failure, replay)


def _recent_spans():
    """Fallback span slice for mid-run captures (no closed unit span
    yet): this process's buffered + sharded spans."""
    telemetry_dir = _telemetry_sibling()
    if telemetry_dir is None:
        return None
    from repro.obs import sink, trace

    spans = trace.finished()
    pid = os.getpid()
    sharded, _ = sink.read_shards(telemetry_dir)
    spans = [s for s in sharded if s.get("pid") == pid] + spans
    return spans or None


def capture_fuzz_failure(verdict):
    """Bundle one failing fuzz verdict (the dict
    :func:`repro.fuzz.campaign.execute_fuzz_unit` produces; failing
    verdicts embed the generated source and stimulus, so capture works
    for cached verdicts too)."""
    if not enabled():
        return None
    try:
        return _capture_fuzz(verdict)
    except Exception as exc:
        _breadcrumb("capture_fuzz_failure failed: %r" % exc)
        return None


def _capture_fuzz(verdict):
    source = verdict.get("source")
    ops = [tuple(op) for op in verdict.get("ops") or ()]
    if source is None:
        return None
    kind = (verdict.get("failure") or {}).get("kind", "unknown")
    label = "fuzz::d%s::s%s::c%s" % (
        verdict.get("design_seed"), verdict.get("stim_seed"),
        verdict.get("cycles"))
    golden_sim = candidate_sim = None
    with suppress():
        from repro.forensics.replay import apply_recorded_ops

        try:
            from repro.sim.elaborate import elaborate
            from repro.sim.engine import Simulator

            golden_sim = Simulator(elaborate(source), trace=True)
            apply_recorded_ops(golden_sim, ops, dialect="fuzz")
        except Exception as exc:
            golden_sim = None
            _breadcrumb("fuzz interp replay failed: %r" % exc)
        try:
            from repro.sim.compile.engine import CompiledSimulator
            from repro.sim.elaborate import elaborate

            candidate_sim = CompiledSimulator(elaborate(source), trace=True)
            apply_recorded_ops(candidate_sim, ops, dialect="fuzz")
        except Exception as exc:
            candidate_sim = None
            _breadcrumb("fuzz compiled replay failed: %r" % exc)
        divergence = _divergence_payload(
            getattr(golden_sim, "trace", None),
            getattr(candidate_sim, "trace", None), source)
        golden_vcd = _vcd_text(golden_sim)
        candidate_vcd = _vcd_text(candidate_sim)
    stimulus_doc = {
        "format": "repro-stimulus-v1",
        "dialect": "fuzz",
        "top": None,
        "ops": [list(op) for op in ops],
    }
    failure = dict(verdict.get("failure") or {})
    failure.update({
        "type": "fuzz",
        "design_seed": verdict.get("design_seed"),
        "stim_seed": verdict.get("stim_seed"),
        "cycles": verdict.get("cycles"),
    })
    replay = {
        "mode": "fuzz",
        "dialect": "fuzz",
        "expect": {"kind": kind},
    }
    sections = {
        "stimulus": ("stimulus.json", _json_bytes(stimulus_doc)),
        "candidate_source": ("candidate.v", source),
        "golden_vcd": ("golden.vcd", golden_vcd),
        "candidate_vcd": ("candidate.vcd", candidate_vcd),
        "divergence": ("divergence.json", _json_bytes(divergence)),
    }
    spans = _slice_spans(label)
    if spans is not None:
        sections["spans"] = ("spans.json", _json_bytes(spans))
    return write_bundle("fuzz", label, sections, failure, replay)


def attach_shrunk(bundle_dir, source, ops):
    """Add the delta-debugged reproducer to an existing fuzz bundle
    (sections ``shrunk_source``/``shrunk_stimulus``; the bundle id is
    content-addressed over the *original* failure and stays put)."""
    if not bundle_dir:
        return None
    manifest_path = os.path.join(bundle_dir, "manifest.json")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        stimulus_doc = {
            "format": "repro-stimulus-v1",
            "dialect": "fuzz",
            "top": None,
            "ops": [list(op) for op in ops],
        }
        additions = {
            "shrunk_source": ("shrunk.v", source.encode("utf-8")),
            "shrunk_stimulus": ("shrunk-stimulus.json",
                                _json_bytes(stimulus_doc)),
        }
        for section, (filename, data) in additions.items():
            with open(os.path.join(bundle_dir, filename), "wb") as handle:
                handle.write(data)
            manifest["sections"][section] = filename
            manifest["sha256"][filename] = _sha(data)
        with open(manifest_path, "wb") as handle:
            handle.write(_json_bytes(manifest))
        return bundle_dir
    except Exception as exc:
        _breadcrumb("attach_shrunk(%s) failed: %r" % (bundle_dir, exc))
        return None

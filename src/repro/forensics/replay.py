"""Stimulus recording and replay for forensic debug bundles.

A bundle must reproduce a failure *from the bundle alone* — no
sequence generator, no bench registry state — so the stimulus is
archived as a flat JSON op list in the fuzz-corpus style.  Two
dialects share that shape:

- ``fuzz`` — the fuzz corpus format exactly
  (:mod:`repro.fuzz.oracle`): ``("poke", name, bits, xmask)`` /
  ``("tick",)`` / ``("settle",)`` where ``settle`` implies a
  10-unit time step;
- ``uvm`` — the pin-op trace a :class:`RecordingSimulator` captures
  from a live UVM run: ``("set", name, bits, xmask)`` /
  ``("poke", name, bits, xmask)`` / ``("settle",)`` (plain) /
  ``("step", amount)`` / ``("tick", clock, cycles, half_period)``.
  Replaying calls the same simulator methods in the same order, so
  the replayed trace is bit-identical to the recorded run.
"""

from repro.sim.values import Value


class RecordingSimulator:
    """Transparent proxy over any simulator that logs the pin-level
    driving script.  Reads (``get``/``trace``/...) pass straight
    through; every mutating call appends one ``uvm``-dialect op."""

    def __init__(self, simulator):
        self._sim = simulator
        self.ops = []

    def __getattr__(self, name):
        return getattr(self._sim, name)

    @staticmethod
    def _bits_of(value):
        if isinstance(value, Value):
            return int(value.bits), int(value.xmask)
        return int(value), 0

    def set(self, name, value):
        bits, xmask = self._bits_of(value)
        self.ops.append(("set", name, bits, xmask))
        self._sim.set(name, value)

    def poke(self, name, value):
        bits, xmask = self._bits_of(value)
        self.ops.append(("poke", name, bits, xmask))
        self._sim.poke(name, value)

    def settle(self):
        self.ops.append(("settle",))
        self._sim.settle()

    def step_time(self, amount=1):
        self.ops.append(("step", int(amount)))
        self._sim.step_time(amount)

    def tick(self, clock="clk", cycles=1, half_period=5):
        self.ops.append(("tick", clock, int(cycles), int(half_period)))
        self._sim.tick(clock, cycles=cycles, half_period=half_period)


def apply_recorded_ops(sim, ops, dialect="uvm"):
    """Drive ``sim`` through an archived op list.

    ``dialect="fuzz"`` delegates to the fuzz oracle's
    :func:`~repro.fuzz.oracle.apply_stimulus` (its ``settle`` op also
    advances time); ``dialect="uvm"`` replays a recorded pin-op trace
    verbatim.
    """
    if dialect == "fuzz":
        from repro.fuzz.oracle import apply_stimulus

        apply_stimulus(sim, [tuple(op) for op in ops])
        return sim
    for op in ops:
        op = tuple(op)
        kind = op[0]
        if kind == "set":
            _, name, bits, xmask = op
            sim.set(name, Value(bits, sim.signal_width(name), xmask))
        elif kind == "poke":
            _, name, bits, xmask = op
            sim.poke(name, Value(bits, sim.signal_width(name), xmask))
        elif kind == "settle":
            sim.settle()
        elif kind == "step":
            sim.step_time(op[1])
        elif kind == "tick":
            _, clock, cycles, half_period = op
            sim.tick(clock, cycles=cycles, half_period=half_period)
        else:
            raise ValueError(f"unknown recorded op {kind!r}")
    return sim


def traced_run(source, ops, dialect="uvm", top=None):
    """Replay an op list against ``source`` on the reference
    interpreter with tracing on; returns the simulator (its ``trace``
    is the canonical waveform).  Raises whatever the run raises."""
    from repro.sim.engine import Simulator
    from repro.sim.elaborate import elaborate

    sim = Simulator(elaborate(source, top=top), trace=True)
    apply_recorded_ops(sim, ops, dialect=dialect)
    return sim

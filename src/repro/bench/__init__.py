"""The benchmark design suite: 27 modules across ten representative types.

This package stands in for the RTLLM-derived dataset the paper evaluates
on.  Each :class:`~repro.bench.registry.BenchmarkModule` bundles the
golden Verilog, its natural-language specification, a cycle-accurate
reference model, and the UVM harness configuration (drive protocol,
stimulus ranges, compare signals).
"""

from repro.bench.registry import (
    BenchmarkModule,
    all_modules,
    get_module,
    module_names,
    modules_by_category,
    make_hr_sequence,
    make_fr_sequence,
    CATEGORIES,
)

__all__ = [
    "BenchmarkModule",
    "all_modules",
    "get_module",
    "module_names",
    "modules_by_category",
    "make_hr_sequence",
    "make_fr_sequence",
    "CATEGORIES",
]

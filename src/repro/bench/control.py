"""Control benchmark designs (counters and FSMs, Table II "Control")."""

from repro.bench.registry import BenchmarkModule, register
from repro.refmodel.base import ReferenceModel, mask
from repro.uvm.driver import DriveProtocol

# ---------------------------------------------------------------------------
# counter_12 — modulo-12 counter with enable
# ---------------------------------------------------------------------------

COUNTER12_SOURCE = """\
module counter_12(
    input clk,
    input rst_n,
    input valid_count,
    output reg [3:0] out
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            out <= 4'b0;
        end else if (valid_count) begin
            if (out == 4'd11)
                out <= 4'b0;
            else
                out <= out + 4'd1;
        end
    end
endmodule
"""

COUNTER12_SPEC = """\
Module name: counter_12
Function: Modulo-12 up counter. When valid_count is high at a clock
edge the counter increments, wrapping from 11 back to 0. When
valid_count is low the count holds. Asynchronous active-low reset
clears the count to 0.
Ports:
  input clk          - clock
  input rst_n        - asynchronous active-low reset
  input valid_count  - count enable
  output [3:0] out   - current count (0..11)
"""


class Counter12Model(ReferenceModel):
    """Golden model for ``counter_12``."""

    def reset(self):
        self.out = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("valid_count"):
            self.out = 0 if self.out == 11 else self.out + 1
        return {"out": self.out}


register(BenchmarkModule(
    name="counter_12",
    category="control",
    type_tag="counter",
    source=COUNTER12_SOURCE,
    spec=COUNTER12_SPEC,
    make_model=Counter12Model,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"valid_count": (0, 1)},
    compare_signals=["out"],
    hr_count=60,
    fr_count=240,
    complexity=0.8,
))

# ---------------------------------------------------------------------------
# jc_counter — 4-bit Johnson counter
# ---------------------------------------------------------------------------

JC_COUNTER_SOURCE = """\
module jc_counter(
    input clk,
    input rst_n,
    output reg [3:0] q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            q <= 4'b0;
        else
            q <= {~q[0], q[3:1]};
    end
endmodule
"""

JC_COUNTER_SPEC = """\
Module name: jc_counter
Function: 4-bit Johnson (twisted-ring) counter. Every clock cycle the
register shifts right by one and the complement of the old LSB enters
the MSB, producing the 8-state sequence 0000, 1000, 1100, 1110, 1111,
0111, 0011, 0001, 0000, ... Asynchronous active-low reset clears q.
Ports:
  input clk       - clock
  input rst_n     - asynchronous active-low reset
  output [3:0] q  - Johnson counter state
"""


class JcCounterModel(ReferenceModel):
    """Golden model for ``jc_counter``."""

    def reset(self):
        self.q = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            self.q = (((~self.q) & 1) << 3) | (self.q >> 1)
        return {"q": self.q}


register(BenchmarkModule(
    name="jc_counter",
    category="control",
    type_tag="counter",
    source=JC_COUNTER_SOURCE,
    spec=JC_COUNTER_SPEC,
    make_model=JcCounterModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={},
    compare_signals=["q"],
    hr_count=40,
    fr_count=160,
    complexity=0.7,
))

# ---------------------------------------------------------------------------
# freq_div — clock divider chain
# ---------------------------------------------------------------------------

FREQ_DIV_SOURCE = """\
module freq_div(
    input clk,
    input rst_n,
    input en,
    output clk_div2,
    output clk_div4,
    output clk_div8
);
    reg [2:0] cnt;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            cnt <= 3'b0;
        else if (en)
            cnt <= cnt + 3'd1;
    end
    assign clk_div2 = cnt[0];
    assign clk_div4 = cnt[1];
    assign clk_div8 = cnt[2];
endmodule
"""

FREQ_DIV_SPEC = """\
Module name: freq_div
Function: Frequency divider. A 3-bit counter increments on every
enabled clock; its bits expose divide-by-2, divide-by-4 and divide-by-8
versions of the clock (as level signals toggling at half/quarter/eighth
rate). When en is low the counter holds. Asynchronous active-low reset
clears the counter.
Ports:
  input clk        - clock
  input rst_n      - asynchronous active-low reset
  input en         - divider enable
  output clk_div2  - counter bit 0 (clk / 2)
  output clk_div4  - counter bit 1 (clk / 4)
  output clk_div8  - counter bit 2 (clk / 8)
"""


class FreqDivModel(ReferenceModel):
    """Golden model for ``freq_div``."""

    def reset(self):
        self.cnt = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("en"):
            self.cnt = (self.cnt + 1) & mask(3)
        return {
            "clk_div2": self.cnt & 1,
            "clk_div4": (self.cnt >> 1) & 1,
            "clk_div8": (self.cnt >> 2) & 1,
        }


register(BenchmarkModule(
    name="freq_div",
    category="control",
    type_tag="counter",
    source=FREQ_DIV_SOURCE,
    spec=FREQ_DIV_SPEC,
    make_model=FreqDivModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"en": (0, 1)},
    compare_signals=["clk_div2", "clk_div4", "clk_div8"],
    hr_count=48,
    fr_count=192,
    complexity=0.8,
))

# ---------------------------------------------------------------------------
# fsm_seq — overlapping "1011" sequence detector
# ---------------------------------------------------------------------------

FSM_SEQ_SOURCE = """\
module fsm_seq(
    input clk,
    input rst_n,
    input din,
    output reg hit
);
    localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;
    reg [1:0] state;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            state <= S0;
            hit <= 1'b0;
        end else begin
            case (state)
                S0: state <= din ? S1 : S0;
                S1: state <= din ? S1 : S2;
                S2: state <= din ? S3 : S0;
                S3: state <= din ? S1 : S2;
                default: state <= S0;
            endcase
            hit <= (state == S3) && din;
        end
    end
endmodule
"""

FSM_SEQ_SPEC = """\
Module name: fsm_seq
Function: Moore-style overlapping sequence detector for the bit pattern
1011 on the serial input din. One cycle after the final 1 of a match,
hit pulses high for exactly one clock. Matches may overlap (the trailing
1 of one match can start the next). States track the longest matched
prefix: S0 = none, S1 = "1", S2 = "10", S3 = "101". Asynchronous
active-low reset returns to S0 with hit low.
Ports:
  input clk    - clock
  input rst_n  - asynchronous active-low reset
  input din    - serial data in
  output hit   - one-cycle pulse on each detected "1011"
"""


class FsmSeqModel(ReferenceModel):
    """Golden model for ``fsm_seq``."""

    def reset(self):
        self.state = 0
        self.hit = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            din = inputs.get("din", 0) & 1
            old = self.state
            if old == 0:
                self.state = 1 if din else 0
            elif old == 1:
                self.state = 1 if din else 2
            elif old == 2:
                self.state = 3 if din else 0
            else:
                self.state = 1 if din else 2
            self.hit = 1 if (old == 3 and din) else 0
        return {"hit": self.hit}


register(BenchmarkModule(
    name="fsm_seq",
    category="control",
    type_tag="fsm",
    source=FSM_SEQ_SOURCE,
    spec=FSM_SEQ_SPEC,
    make_model=FsmSeqModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"din": (0, 1)},
    compare_signals=["hit"],
    hr_count=64,
    fr_count=256,
    complexity=2.0,
    # S0=idle, S1=saw 1, S2=saw 10, S3=saw 101 (the hit state).
    state_signal="state",
    state_arcs=((0, 0), (0, 1), (1, 1), (1, 2), (2, 3), (2, 0),
                (3, 1), (3, 2)),
))

# ---------------------------------------------------------------------------
# traffic_light — timed three-state FSM
# ---------------------------------------------------------------------------

TRAFFIC_LIGHT_SOURCE = """\
module traffic_light(
    input clk,
    input rst_n,
    input en,
    output reg red,
    output reg yellow,
    output reg green
);
    localparam S_RED = 2'd0, S_GREEN = 2'd1, S_YELLOW = 2'd2;
    localparam RED_T = 5'd8, GREEN_T = 5'd6, YELLOW_T = 5'd2;
    reg [1:0] state;
    reg [4:0] timer;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            state <= S_RED;
            timer <= 5'd0;
        end else if (en) begin
            case (state)
                S_RED:
                    if (timer == RED_T - 5'd1) begin
                        state <= S_GREEN;
                        timer <= 5'd0;
                    end else begin
                        timer <= timer + 5'd1;
                    end
                S_GREEN:
                    if (timer == GREEN_T - 5'd1) begin
                        state <= S_YELLOW;
                        timer <= 5'd0;
                    end else begin
                        timer <= timer + 5'd1;
                    end
                S_YELLOW:
                    if (timer == YELLOW_T - 5'd1) begin
                        state <= S_RED;
                        timer <= 5'd0;
                    end else begin
                        timer <= timer + 5'd1;
                    end
                default: begin
                    state <= S_RED;
                    timer <= 5'd0;
                end
            endcase
        end
    end
    always @(*) begin
        red = (state == S_RED);
        yellow = (state == S_YELLOW);
        green = (state == S_GREEN);
    end
endmodule
"""

TRAFFIC_LIGHT_SPEC = """\
Module name: traffic_light
Function: Traffic light controller cycling red (8 enabled cycles) ->
green (6 cycles) -> yellow (2 cycles) -> red ... A timer counts enabled
clock cycles within each state; en low freezes the controller. Exactly
one of red/yellow/green is high at any time (combinational decode of the
state). Asynchronous active-low reset returns to red with the timer
cleared.
Ports:
  input clk      - clock
  input rst_n    - asynchronous active-low reset
  input en       - advance enable
  output red     - red lamp
  output yellow  - yellow lamp
  output green   - green lamp
"""


class TrafficLightModel(ReferenceModel):
    """Golden model for ``traffic_light``."""

    DURATION = {0: 8, 1: 6, 2: 2}  # state -> cycles
    NEXT = {0: 1, 1: 2, 2: 0}

    def reset(self):
        self.state = 0
        self.timer = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("en"):
            if self.timer == self.DURATION[self.state] - 1:
                self.state = self.NEXT[self.state]
                self.timer = 0
            else:
                self.timer += 1
        return {
            "red": 1 if self.state == 0 else 0,
            "green": 1 if self.state == 1 else 0,
            "yellow": 1 if self.state == 2 else 0,
        }


register(BenchmarkModule(
    name="traffic_light",
    category="control",
    type_tag="fsm",
    source=TRAFFIC_LIGHT_SOURCE,
    spec=TRAFFIC_LIGHT_SPEC,
    make_model=TrafficLightModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"en": (0, 1)},
    compare_signals=["red", "yellow", "green"],
    hr_count=80,
    fr_count=320,
    complexity=1.8,
    # S_RED=0 -> S_GREEN=1 -> S_YELLOW=2 -> red again; self-arcs are
    # the timer holds.
    state_signal="state",
    state_arcs=((0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)),
))

# ---------------------------------------------------------------------------
# pulse_detect — exact 0-1-0 pulse detector
# ---------------------------------------------------------------------------

PULSE_DETECT_SOURCE = """\
module pulse_detect(
    input clk,
    input rst_n,
    input data_in,
    output reg data_out
);
    reg [1:0] state;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            state <= 2'd0;
            data_out <= 1'b0;
        end else begin
            case (state)
                2'd0: begin
                    data_out <= 1'b0;
                    if (data_in)
                        state <= 2'd1;
                end
                2'd1: begin
                    if (!data_in) begin
                        data_out <= 1'b1;
                        state <= 2'd0;
                    end else begin
                        data_out <= 1'b0;
                        state <= 2'd2;
                    end
                end
                2'd2: begin
                    data_out <= 1'b0;
                    if (!data_in)
                        state <= 2'd0;
                end
                default: begin
                    data_out <= 1'b0;
                    state <= 2'd0;
                end
            endcase
        end
    end
endmodule
"""

PULSE_DETECT_SPEC = """\
Module name: pulse_detect
Function: Detects a single-cycle pulse (the exact pattern 0, 1, 0) on
data_in. When the trailing 0 of such a pattern is sampled, data_out goes
high for one cycle. Runs of two or more consecutive 1s are not pulses
and produce no output. Asynchronous active-low reset returns to the
idle (last-saw-0) state with data_out low.
Ports:
  input clk        - clock
  input rst_n      - asynchronous active-low reset
  input data_in    - serial input
  output data_out  - one-cycle pulse per detected 0-1-0 pattern
"""


class PulseDetectModel(ReferenceModel):
    """Golden model for ``pulse_detect``."""

    def reset(self):
        self.state = 0
        self.data_out = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            din = inputs.get("data_in", 0) & 1
            if self.state == 0:
                self.data_out = 0
                if din:
                    self.state = 1
            elif self.state == 1:
                if not din:
                    self.data_out = 1
                    self.state = 0
                else:
                    self.data_out = 0
                    self.state = 2
            else:
                self.data_out = 0
                if not din:
                    self.state = 0
        return {"data_out": self.data_out}


register(BenchmarkModule(
    name="pulse_detect",
    category="control",
    type_tag="fsm",
    source=PULSE_DETECT_SOURCE,
    spec=PULSE_DETECT_SPEC,
    make_model=PulseDetectModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"data_in": (0, 1)},
    compare_signals=["data_out"],
    hr_count=64,
    fr_count=256,
    complexity=1.6,
    # 0=idle, 1=saw leading 1, 2=inside a long run of 1s.
    state_signal="state",
    state_arcs=((0, 0), (0, 1), (1, 0), (1, 2), (2, 2), (2, 0)),
))

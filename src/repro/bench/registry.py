"""Benchmark registry: design metadata and harness configuration.

Categories follow Table II's grouping (Arithmetic, Control, Memory,
Miscellaneous); ``type_tag`` is the finer ten-type taxonomy of Fig. 7.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.uvm.driver import DriveProtocol
from repro.uvm.sequence import (
    ConcatSequence,
    DirectedSequence,
    RandomSequence,
    ResetSequence,
)
from repro.uvm.transaction import Transaction

#: Table II module groups.
CATEGORIES = ("arithmetic", "control", "memory", "misc")


@dataclass
class BenchmarkModule:
    """One benchmark design plus everything needed to verify it."""

    name: str
    category: str
    type_tag: str
    source: str
    spec: str
    make_model: Callable
    protocol: DriveProtocol
    field_ranges: Dict[str, tuple]
    compare_signals: List[str]
    hold_cycles: int = 1
    hr_count: int = 40
    fr_count: int = 160
    directed: Optional[List[dict]] = None
    top: Optional[str] = None
    #: Relative structural complexity (drives the mock LLM difficulty
    #: model; FSMs and dividers are harder to repair than adders).
    complexity: float = 1.0
    #: DUT-internal FSM state register (functional transition
    #: coverage probes it through the monitor), plus the legal state
    #: arcs — the transition bins of the module's coverage model.
    state_signal: Optional[str] = None
    state_arcs: tuple = ()

    def model(self):
        instance = self.make_model()
        instance.reset()
        return instance


_REGISTRY: Dict[str, BenchmarkModule] = {}

#: name -> model factory; consumed by the reference-model generator.
MODEL_FACTORIES: Dict[str, Callable] = {}


def register(module):
    """Add a benchmark to the global registry (used by category files)."""
    if module.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark '{module.name}'")
    _REGISTRY[module.name] = module
    MODEL_FACTORIES[module.name] = module.make_model
    return module


def _ensure_loaded():
    # Import side effect: category modules register their benchmarks.
    from repro.bench import arithmetic, control, memory, misc  # noqa: F401


def all_modules():
    """All benchmarks, in registration (category) order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def module_names():
    _ensure_loaded()
    return list(_REGISTRY)


def get_module(name):
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark '{name}'; known: {sorted(_REGISTRY)}"
        ) from None


def modules_by_category():
    _ensure_loaded()
    grouped = {category: [] for category in CATEGORIES}
    for module in _REGISTRY.values():
        grouped[module.category].append(module)
    return grouped


def _directed_sequence(bench):
    if not bench.directed:
        return None
    return DirectedSequence(
        [
            Transaction(fields, hold_cycles=bench.hold_cycles)
            for fields in bench.directed
        ]
    )


def make_coverage_model(bench, bin_count=4):
    """The per-module functional coverage model.

    Points over every stimulus field, crosses over all field pairs,
    and — for modules that declare an FSM state register — transition
    bins over the legal state arcs, probed from inside the DUT.
    """
    from repro.cover.model import input_space_model

    model = input_space_model(bench.field_ranges, bin_count=bin_count,
                              name=bench.name)
    if bench.state_signal and bench.state_arcs:
        model.add_transitions(
            bench.state_signal,
            [tuple(arc) for arc in bench.state_arcs],
            name=f"{bench.state_signal}_arcs",
        )
        model.probes.append(bench.state_signal)
    return model


def make_coverage_evaluator(bench, backend=None):
    """A simulator-backed closure-loop evaluator over the golden DUT.

    Drives candidate transactions through a live golden simulation so
    probe signals (FSM state) feed the coverage model; DUT state (and
    transition history) persists across epochs, exactly like one
    continuous testbench run.  Settled values are backend-invariant,
    so the generated stimulus stream does not depend on ``backend``.
    """
    from repro.sim.backend import make_simulator
    from repro.uvm.driver import Driver

    simulator = make_simulator(bench.source, backend=backend,
                               trace=False, top=bench.top)
    driver = Driver(simulator, bench.protocol)
    driver.apply_reset()

    def evaluate(model, transactions):
        new_hits = []

        def hook(txn, cycle):
            values = dict(txn.fields)
            for probe in model.probes:
                values[probe] = simulator.get(probe)
            new_hits[-1] += model.sample(values)

        for txn in transactions:
            new_hits.append(0)
            driver.drive(txn, hook)
        return new_hits

    return evaluate


def _main_stimulus(bench, count, seed, stimulus):
    """The bulk constrained-random block of a suite, in the selected
    stimulus mode (``random`` or ``coverage``)."""
    if stimulus == "coverage":
        from repro.cover.closure import CoverageDrivenSequence

        return CoverageDrivenSequence(
            bench.field_ranges, count=count, seed=seed,
            model_factory=lambda: make_coverage_model(bench),
            evaluator=make_coverage_evaluator(bench),
            hold_cycles=bench.hold_cycles,
        )
    if stimulus != "random":
        raise ValueError(
            f"unknown stimulus mode {stimulus!r} "
            "(known: random, coverage)"
        )
    return RandomSequence(
        bench.field_ranges, count=count, seed=seed,
        hold_cycles=bench.hold_cycles,
    )


def make_hr_sequence(bench, seed=0, stimulus="random"):
    """The testbench stimulus used during repair (Hit Rate suite).

    ``stimulus`` selects how the bulk constrained-random block is
    generated: ``"random"`` (fixed-random, the default) or
    ``"coverage"`` (the closed-loop coverage-driven engine at the
    same transaction budget).  Reset bursts, directed vectors and the
    async-glitch tail are identical in both modes.
    """
    parts = []
    if bench.protocol.is_clocked and bench.protocol.reset is not None:
        parts.append(ResetSequence(cycles=2, fields=_idle_fields(bench)))
    directed = _directed_sequence(bench)
    if directed is not None:
        parts.append(directed)
    parts.append(
        _main_stimulus(bench, bench.hr_count, seed, stimulus)
    )
    if bench.protocol.is_clocked and bench.protocol.reset is not None:
        # Async-reset glitch (no clock edge) + a short tail: catches
        # wrong-sensitivity defects that plain cycles cannot trigger.
        parts.append(ResetSequence(cycles=1, fields=_idle_fields(bench),
                                   glitch=True))
        parts.append(
            RandomSequence(
                bench.field_ranges, count=max(4, bench.hr_count // 8),
                seed=seed + 3, hold_cycles=bench.hold_cycles,
            )
        )
    return ConcatSequence(*parts)


def make_fr_sequence(bench, seed=1000):
    """The held-out expert-validation stimulus (Fix Rate suite).

    Larger, differently seeded, and with an extra corner-biased batch —
    the mechanized stand-in for the paper's independent expert review.
    A repair that merely overfits the HR suite fails here, reproducing
    the HR > FR gap.
    """
    parts = []
    if bench.protocol.is_clocked and bench.protocol.reset is not None:
        parts.append(ResetSequence(cycles=2, fields=_idle_fields(bench)))
    directed = _directed_sequence(bench)
    if directed is not None:
        parts.append(directed)
    parts.append(
        RandomSequence(
            bench.field_ranges, count=bench.fr_count, seed=seed,
            hold_cycles=bench.hold_cycles,
        )
    )
    parts.append(
        RandomSequence(
            bench.field_ranges, count=bench.fr_count // 4, seed=seed + 7,
            corner_weight=0.6, hold_cycles=bench.hold_cycles,
        )
    )
    if bench.protocol.is_clocked and bench.protocol.reset is not None:
        # Mid-stream reset burst: catches repairs that break reset logic.
        parts.append(ResetSequence(cycles=2, fields=_idle_fields(bench)))
        parts.append(
            RandomSequence(
                bench.field_ranges, count=bench.fr_count // 4,
                seed=seed + 13, hold_cycles=bench.hold_cycles,
            )
        )
        parts.append(ResetSequence(cycles=1, fields=_idle_fields(bench),
                                   glitch=True))
        parts.append(
            RandomSequence(
                bench.field_ranges, count=max(4, bench.fr_count // 8),
                seed=seed + 17, hold_cycles=bench.hold_cycles,
            )
        )
    return ConcatSequence(*parts)


def _idle_fields(bench):
    """All-zero input fields for reset bursts."""
    return {name: 0 for name in bench.field_ranges}

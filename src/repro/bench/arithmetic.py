"""Arithmetic benchmark designs (Table II group "Arithmetic").

Nine designs: accumulator, ALU, three adders (combinational,
hierarchical, pipelined), two multipliers (Booth, sequential shift-add),
and two dividers (combinational restoring, sequential radix-2).
"""

from repro.bench.registry import BenchmarkModule, register
from repro.refmodel.base import CombModel, ReferenceModel, mask, to_signed
from repro.uvm.driver import DriveProtocol

# ---------------------------------------------------------------------------
# accu — serial accumulator
# ---------------------------------------------------------------------------

ACCU_SOURCE = """\
module accu(
    input clk,
    input rst_n,
    input [7:0] data_in,
    input valid_in,
    output reg valid_out,
    output reg [9:0] data_out
);
    reg [9:0] sum;
    reg [1:0] count;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sum <= 10'b0;
            count <= 2'b0;
            valid_out <= 1'b0;
            data_out <= 10'b0;
        end else begin
            if (valid_in) begin
                if (count == 2'd3) begin
                    data_out <= sum + data_in;
                    valid_out <= 1'b1;
                    sum <= 10'b0;
                    count <= 2'b0;
                end else begin
                    sum <= sum + data_in;
                    count <= count + 2'd1;
                    valid_out <= 1'b0;
                end
            end else begin
                valid_out <= 1'b0;
            end
        end
    end
endmodule
"""

ACCU_SPEC = """\
Module name: accu
Function: Serial input data accumulation. The module receives 8-bit
unsigned data on data_in qualified by valid_in. After every fourth valid
input, the module outputs the 10-bit sum of the last four inputs on
data_out and pulses valid_out high for exactly one clock cycle. Between
groups, valid_out stays low and data_out holds its previous value.
An active-low asynchronous reset rst_n clears all state.
Ports:
  input clk            - clock
  input rst_n          - asynchronous active-low reset
  input [7:0] data_in  - input operand
  input valid_in       - input qualifier
  output valid_out     - one-cycle pulse when a group sum is produced
  output [9:0] data_out - accumulated sum of 4 inputs
"""


class AccuModel(ReferenceModel):
    """Golden model for ``accu``."""

    def reset(self):
        self.sum = 0
        self.count = 0
        self.valid_out = 0
        self.data_out = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("valid_in"):
            if self.count == 3:
                self.data_out = (self.sum + inputs.get("data_in", 0)) & mask(10)
                self.valid_out = 1
                self.sum = 0
                self.count = 0
            else:
                self.sum = (self.sum + inputs.get("data_in", 0)) & mask(10)
                self.count += 1
                self.valid_out = 0
        else:
            self.valid_out = 0
        return {"valid_out": self.valid_out, "data_out": self.data_out}


register(BenchmarkModule(
    name="accu",
    category="arithmetic",
    type_tag="accumulator",
    source=ACCU_SOURCE,
    spec=ACCU_SPEC,
    make_model=AccuModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"data_in": (0, 255), "valid_in": (0, 1)},
    compare_signals=["valid_out", "data_out"],
    hr_count=48,
    fr_count=192,
    complexity=1.3,
))

# ---------------------------------------------------------------------------
# adder_8bit — combinational ripple adder
# ---------------------------------------------------------------------------

ADDER8_SOURCE = """\
module adder_8bit(
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b + cin;
endmodule
"""

ADDER8_SPEC = """\
Module name: adder_8bit
Function: 8-bit combinational adder with carry-in and carry-out.
sum = (a + b + cin) mod 256, cout is the carry out of bit 7.
Ports:
  input [7:0] a     - first operand
  input [7:0] b     - second operand
  input cin         - carry in
  output [7:0] sum  - sum
  output cout       - carry out
"""


class Adder8Model(CombModel):
    """Golden model for ``adder_8bit``."""

    def compute(self, inputs):
        total = inputs.get("a", 0) + inputs.get("b", 0) + inputs.get("cin", 0)
        return {"sum": total & mask(8), "cout": (total >> 8) & 1}


register(BenchmarkModule(
    name="adder_8bit",
    category="arithmetic",
    type_tag="adder",
    source=ADDER8_SOURCE,
    spec=ADDER8_SPEC,
    make_model=Adder8Model,
    protocol=DriveProtocol(clock=None, reset=None),
    field_ranges={"a": (0, 255), "b": (0, 255), "cin": (0, 1)},
    compare_signals=["sum", "cout"],
    directed=[
        {"a": 255, "b": 255, "cin": 1},
        {"a": 255, "b": 1, "cin": 0},
        {"a": 0, "b": 0, "cin": 0},
        {"a": 128, "b": 128, "cin": 0},
    ],
    hr_count=32,
    fr_count=128,
    complexity=0.7,
))

# ---------------------------------------------------------------------------
# adder_16bit — hierarchical adder built from two 8-bit slices
# ---------------------------------------------------------------------------

ADDER16_SOURCE = """\
module adder_slice(
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b + cin;
endmodule

module adder_16bit(
    input [15:0] a,
    input [15:0] b,
    input cin,
    output [15:0] sum,
    output cout
);
    wire carry_mid;
    adder_slice u_lo(
        .a(a[7:0]), .b(b[7:0]), .cin(cin),
        .sum(sum[7:0]), .cout(carry_mid)
    );
    adder_slice u_hi(
        .a(a[15:8]), .b(b[15:8]), .cin(carry_mid),
        .sum(sum[15:8]), .cout(cout)
    );
endmodule
"""

ADDER16_SPEC = """\
Module name: adder_16bit
Function: 16-bit adder with carry-in and carry-out, implemented
hierarchically from two 8-bit adder_slice instances chained through an
intermediate carry. sum = (a + b + cin) mod 65536, cout is the carry out
of bit 15.
Ports:
  input [15:0] a     - first operand
  input [15:0] b     - second operand
  input cin          - carry in
  output [15:0] sum  - sum
  output cout        - carry out
"""


class Adder16Model(CombModel):
    """Golden model for ``adder_16bit``."""

    def compute(self, inputs):
        total = inputs.get("a", 0) + inputs.get("b", 0) + inputs.get("cin", 0)
        return {"sum": total & mask(16), "cout": (total >> 16) & 1}


register(BenchmarkModule(
    name="adder_16bit",
    category="arithmetic",
    type_tag="adder",
    source=ADDER16_SOURCE,
    spec=ADDER16_SPEC,
    make_model=Adder16Model,
    protocol=DriveProtocol(clock=None, reset=None),
    field_ranges={"a": (0, 65535), "b": (0, 65535), "cin": (0, 1)},
    compare_signals=["sum", "cout"],
    directed=[
        {"a": 0xFFFF, "b": 0xFFFF, "cin": 1},
        {"a": 0x00FF, "b": 0x0001, "cin": 0},
        {"a": 0xFF00, "b": 0x0100, "cin": 0},
    ],
    top="adder_16bit",
    hr_count=32,
    fr_count=128,
    complexity=1.0,
))

# ---------------------------------------------------------------------------
# adder_pipe — two-stage pipelined adder
# ---------------------------------------------------------------------------

ADDER_PIPE_SOURCE = """\
module adder_pipe(
    input clk,
    input rst_n,
    input en,
    input [15:0] a,
    input [15:0] b,
    output reg [16:0] sum,
    output reg valid
);
    reg [8:0] lo_r;
    reg [7:0] a_hi_r;
    reg [7:0] b_hi_r;
    reg en_r;
    wire [8:0] hi_sum;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            lo_r <= 9'b0;
            a_hi_r <= 8'b0;
            b_hi_r <= 8'b0;
            en_r <= 1'b0;
        end else begin
            lo_r <= a[7:0] + b[7:0];
            a_hi_r <= a[15:8];
            b_hi_r <= b[15:8];
            en_r <= en;
        end
    end
    assign hi_sum = a_hi_r + b_hi_r + lo_r[8];
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sum <= 17'b0;
            valid <= 1'b0;
        end else begin
            sum <= {hi_sum, lo_r[7:0]};
            valid <= en_r;
        end
    end
endmodule
"""

ADDER_PIPE_SPEC = """\
Module name: adder_pipe
Function: Two-stage pipelined 16-bit adder. Stage 1 registers the low
byte sum (with carry) and the high operand bytes; stage 2 combines them
into a 17-bit result. The result for inputs applied in cycle N appears
on sum in cycle N+2; valid delays en by two cycles. Asynchronous
active-low reset clears the pipeline.
Ports:
  input clk          - clock
  input rst_n        - asynchronous active-low reset
  input en           - input valid
  input [15:0] a     - first operand
  input [15:0] b     - second operand
  output [16:0] sum  - pipelined sum (2-cycle latency)
  output valid       - en delayed by 2 cycles
"""


class AdderPipeModel(ReferenceModel):
    """Golden model for ``adder_pipe`` (explicit 2-stage pipeline)."""

    def reset(self):
        self.lo_r = 0
        self.a_hi_r = 0
        self.b_hi_r = 0
        self.en_r = 0
        self.sum = 0
        self.valid = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
            return {"sum": self.sum, "valid": self.valid}
        hi_sum = (self.a_hi_r + self.b_hi_r + (self.lo_r >> 8)) & mask(9)
        new_sum = ((hi_sum << 8) | (self.lo_r & mask(8))) & mask(17)
        new_valid = self.en_r
        a = inputs.get("a", 0)
        b = inputs.get("b", 0)
        self.lo_r = ((a & mask(8)) + (b & mask(8))) & mask(9)
        self.a_hi_r = (a >> 8) & mask(8)
        self.b_hi_r = (b >> 8) & mask(8)
        self.en_r = inputs.get("en", 0) & 1
        self.sum = new_sum
        self.valid = new_valid
        return {"sum": self.sum, "valid": self.valid}


register(BenchmarkModule(
    name="adder_pipe",
    category="arithmetic",
    type_tag="adder",
    source=ADDER_PIPE_SOURCE,
    spec=ADDER_PIPE_SPEC,
    make_model=AdderPipeModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"a": (0, 65535), "b": (0, 65535), "en": (0, 1)},
    compare_signals=["sum", "valid"],
    hr_count=48,
    fr_count=192,
    complexity=1.2,
))

# ---------------------------------------------------------------------------
# multi_booth — combinational radix-2 Booth multiplier (signed 8x8)
# ---------------------------------------------------------------------------

MULTI_BOOTH_SOURCE = """\
module multi_booth(
    input [7:0] a,
    input [7:0] b,
    output [15:0] p
);
    reg signed [15:0] acc;
    reg prev;
    integer i;
    always @(*) begin
        acc = 16'b0;
        prev = 1'b0;
        for (i = 0; i < 8; i = i + 1) begin
            case ({b[i], prev})
                2'b01: acc = acc + ($signed(a) <<< i);
                2'b10: acc = acc - ($signed(a) <<< i);
                default: acc = acc;
            endcase
            prev = b[i];
        end
    end
    assign p = acc;
endmodule
"""

MULTI_BOOTH_SPEC = """\
Module name: multi_booth
Function: Combinational radix-2 Booth-recoded multiplier for two 8-bit
signed (two's complement) operands. p = (signed(a) * signed(b)) mod 2^16.
The implementation scans multiplier bits LSB-first, adding or
subtracting the sign-extended, shifted multiplicand according to the
Booth encoding of adjacent bit pairs.
Ports:
  input [7:0] a   - signed multiplicand
  input [7:0] b   - signed multiplier
  output [15:0] p - signed product (two's complement, low 16 bits)
"""


class MultiBoothModel(CombModel):
    """Golden model for ``multi_booth``."""

    def compute(self, inputs):
        a = to_signed(inputs.get("a", 0), 8)
        b = to_signed(inputs.get("b", 0), 8)
        return {"p": (a * b) & mask(16)}


register(BenchmarkModule(
    name="multi_booth",
    category="arithmetic",
    type_tag="multiplier",
    source=MULTI_BOOTH_SOURCE,
    spec=MULTI_BOOTH_SPEC,
    make_model=MultiBoothModel,
    protocol=DriveProtocol(clock=None, reset=None),
    field_ranges={"a": (0, 255), "b": (0, 255)},
    compare_signals=["p"],
    directed=[
        {"a": 0x80, "b": 0x80},   # -128 * -128
        {"a": 0xFF, "b": 0x01},   # -1 * 1
        {"a": 0x7F, "b": 0x7F},   # 127 * 127
        {"a": 0x00, "b": 0xAB},
    ],
    hr_count=40,
    fr_count=160,
    complexity=1.5,
))

# ---------------------------------------------------------------------------
# multi_pipe — sequential shift-add multiplier with start/done
# ---------------------------------------------------------------------------

MULTI_PIPE_SOURCE = """\
module multi_pipe(
    input clk,
    input rst_n,
    input start,
    input [7:0] mc,
    input [7:0] mp,
    output reg [15:0] product,
    output reg done
);
    reg [15:0] acc;
    reg [15:0] mcand;
    reg [7:0] mplier;
    reg [3:0] count;
    reg busy;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            acc <= 16'b0;
            mcand <= 16'b0;
            mplier <= 8'b0;
            count <= 4'b0;
            busy <= 1'b0;
            done <= 1'b0;
            product <= 16'b0;
        end else begin
            if (!busy) begin
                done <= 1'b0;
                if (start) begin
                    acc <= 16'b0;
                    mcand <= {8'b0, mc};
                    mplier <= mp;
                    count <= 4'd0;
                    busy <= 1'b1;
                end
            end else begin
                if (count == 4'd8) begin
                    product <= acc;
                    done <= 1'b1;
                    busy <= 1'b0;
                end else begin
                    if (mplier[0])
                        acc <= acc + mcand;
                    mplier <= mplier >> 1;
                    mcand <= mcand << 1;
                    count <= count + 4'd1;
                end
            end
        end
    end
endmodule
"""

MULTI_PIPE_SPEC = """\
Module name: multi_pipe
Function: Sequential shift-add multiplier for 8-bit unsigned operands.
A start pulse (sampled while idle) captures mc and mp; the machine then
iterates 8 shift-add steps and asserts done for one cycle with the
16-bit product. While busy, start is ignored. done drops when a new
operation starts or the cycle after idle resumes with start low.
Asynchronous active-low reset clears all state.
Ports:
  input clk             - clock
  input rst_n           - asynchronous active-low reset
  input start           - start command (idle only)
  input [7:0] mc        - multiplicand
  input [7:0] mp        - multiplier
  output [15:0] product - result, valid with done
  output done           - one-cycle completion strobe
"""


class MultiPipeModel(ReferenceModel):
    """Golden model for ``multi_pipe`` (cycle-accurate FSM mirror)."""

    def reset(self):
        self.acc = 0
        self.mcand = 0
        self.mplier = 0
        self.count = 0
        self.busy = 0
        self.done = 0
        self.product = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
            return {"product": self.product, "done": self.done}
        if not self.busy:
            self.done = 0
            if inputs.get("start"):
                self.acc = 0
                self.mcand = inputs.get("mc", 0) & mask(8)
                self.mplier = inputs.get("mp", 0) & mask(8)
                self.count = 0
                self.busy = 1
        else:
            if self.count == 8:
                self.product = self.acc
                self.done = 1
                self.busy = 0
            else:
                if self.mplier & 1:
                    self.acc = (self.acc + self.mcand) & mask(16)
                self.mplier >>= 1
                self.mcand = (self.mcand << 1) & mask(16)
                self.count += 1
        return {"product": self.product, "done": self.done}


register(BenchmarkModule(
    name="multi_pipe",
    category="arithmetic",
    type_tag="multiplier",
    source=MULTI_PIPE_SOURCE,
    spec=MULTI_PIPE_SPEC,
    make_model=MultiPipeModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"start": (0, 1), "mc": (0, 255), "mp": (0, 255)},
    compare_signals=["product", "done"],
    hold_cycles=11,
    hr_count=8,
    fr_count=32,
    complexity=1.7,
))

# ---------------------------------------------------------------------------
# div_16bit — combinational restoring divider
# ---------------------------------------------------------------------------

DIV16_SOURCE = """\
module div_16bit(
    input [15:0] dividend,
    input [7:0] divisor,
    output reg [15:0] quotient,
    output reg [15:0] remainder
);
    reg [23:0] rem;
    integer i;
    always @(*) begin
        if (divisor == 8'd0) begin
            quotient = 16'hffff;
            remainder = 16'hffff;
        end else begin
            rem = 24'b0;
            quotient = 16'b0;
            for (i = 0; i < 16; i = i + 1) begin
                rem = {rem[22:0], dividend[15 - i]};
                if (rem >= {16'b0, divisor}) begin
                    rem = rem - {16'b0, divisor};
                    quotient[15 - i] = 1'b1;
                end
            end
            remainder = rem[15:0];
        end
    end
endmodule
"""

DIV16_SPEC = """\
Module name: div_16bit
Function: Combinational restoring divider. quotient = dividend / divisor
and remainder = dividend % divisor for a 16-bit dividend and an 8-bit
divisor, computed by 16 shift-subtract iterations. When divisor is zero
both outputs are driven to 16'hffff.
Ports:
  input [15:0] dividend   - numerator
  input [7:0] divisor     - denominator
  output [15:0] quotient  - dividend / divisor (all-ones on divide by 0)
  output [15:0] remainder - dividend % divisor (all-ones on divide by 0)
"""


class Div16Model(CombModel):
    """Golden model for ``div_16bit``."""

    def compute(self, inputs):
        dividend = inputs.get("dividend", 0) & mask(16)
        divisor = inputs.get("divisor", 0) & mask(8)
        if divisor == 0:
            return {"quotient": mask(16), "remainder": mask(16)}
        return {
            "quotient": dividend // divisor,
            "remainder": dividend % divisor,
        }


register(BenchmarkModule(
    name="div_16bit",
    category="arithmetic",
    type_tag="divider",
    source=DIV16_SOURCE,
    spec=DIV16_SPEC,
    make_model=Div16Model,
    protocol=DriveProtocol(clock=None, reset=None),
    field_ranges={"dividend": (0, 65535), "divisor": (0, 255)},
    compare_signals=["quotient", "remainder"],
    directed=[
        {"dividend": 65535, "divisor": 1},
        {"dividend": 65535, "divisor": 255},
        {"dividend": 0, "divisor": 7},
        {"dividend": 1234, "divisor": 0},
    ],
    hr_count=32,
    fr_count=128,
    complexity=1.6,
))

# ---------------------------------------------------------------------------
# radix2_div — sequential radix-2 divider with start/done
# ---------------------------------------------------------------------------

RADIX2_DIV_SOURCE = """\
module radix2_div(
    input clk,
    input rst_n,
    input start,
    input [7:0] dividend,
    input [7:0] divisor,
    output reg [7:0] quotient,
    output reg [7:0] remainder,
    output reg done,
    output reg dbz
);
    reg [7:0] quo;
    reg [8:0] rem;
    reg [7:0] dvd;
    reg [3:0] count;
    reg busy;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            quotient <= 8'b0;
            remainder <= 8'b0;
            done <= 1'b0;
            dbz <= 1'b0;
            quo <= 8'b0;
            rem <= 9'b0;
            dvd <= 8'b0;
            count <= 4'b0;
            busy <= 1'b0;
        end else begin
            if (!busy) begin
                done <= 1'b0;
                if (start) begin
                    if (divisor == 8'b0) begin
                        dbz <= 1'b1;
                        done <= 1'b1;
                        quotient <= 8'hff;
                        remainder <= 8'hff;
                    end else begin
                        dbz <= 1'b0;
                        rem <= 9'b0;
                        dvd <= dividend;
                        quo <= 8'b0;
                        count <= 4'b0;
                        busy <= 1'b1;
                    end
                end
            end else begin
                if (count == 4'd8) begin
                    quotient <= quo;
                    remainder <= rem[7:0];
                    done <= 1'b1;
                    busy <= 1'b0;
                end else begin
                    if ({rem[7:0], dvd[7]} >= {1'b0, divisor}) begin
                        rem <= {rem[7:0], dvd[7]} - {1'b0, divisor};
                        quo <= {quo[6:0], 1'b1};
                    end else begin
                        rem <= {rem[7:0], dvd[7]};
                        quo <= {quo[6:0], 1'b0};
                    end
                    dvd <= {dvd[6:0], 1'b0};
                    count <= count + 4'd1;
                end
            end
        end
    end
endmodule
"""

RADIX2_DIV_SPEC = """\
Module name: radix2_div
Function: Sequential radix-2 restoring divider for 8-bit unsigned
operands. A start pulse while idle captures the operands; after 8
shift-subtract iterations done pulses for one cycle with quotient and
remainder. A start with divisor == 0 responds in one cycle with
done and dbz asserted and all-ones outputs. start is ignored while busy.
Asynchronous active-low reset clears all state.
Ports:
  input clk              - clock
  input rst_n            - asynchronous active-low reset
  input start            - start command (idle only)
  input [7:0] dividend   - numerator
  input [7:0] divisor    - denominator
  output [7:0] quotient  - result, valid with done
  output [7:0] remainder - result, valid with done
  output done            - one-cycle completion strobe
  output dbz             - divide-by-zero flag
"""


class Radix2DivModel(ReferenceModel):
    """Golden model for ``radix2_div`` (cycle-accurate FSM mirror)."""

    def reset(self):
        self.quotient = 0
        self.remainder = 0
        self.done = 0
        self.dbz = 0
        self.quo = 0
        self.rem = 0
        self.dvd = 0
        self.count = 0
        self.busy = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
            return self._outputs()
        if not self.busy:
            self.done = 0
            if inputs.get("start"):
                if (inputs.get("divisor", 0) & mask(8)) == 0:
                    self.dbz = 1
                    self.done = 1
                    self.quotient = mask(8)
                    self.remainder = mask(8)
                else:
                    self.dbz = 0
                    self.rem = 0
                    self.dvd = inputs.get("dividend", 0) & mask(8)
                    self.quo = 0
                    self.count = 0
                    self.busy = 1
        else:
            if self.count == 8:
                self.quotient = self.quo
                self.remainder = self.rem & mask(8)
                self.done = 1
                self.busy = 0
            else:
                divisor = inputs.get("divisor", 0) & mask(8)
                trial = (((self.rem & mask(8)) << 1) | (self.dvd >> 7)) & mask(9)
                if trial >= divisor:
                    self.rem = (trial - divisor) & mask(9)
                    self.quo = ((self.quo << 1) | 1) & mask(8)
                else:
                    self.rem = trial
                    self.quo = (self.quo << 1) & mask(8)
                self.dvd = (self.dvd << 1) & mask(8)
                self.count += 1
        return self._outputs()

    def _outputs(self):
        return {
            "quotient": self.quotient,
            "remainder": self.remainder,
            "done": self.done,
            "dbz": self.dbz,
        }


register(BenchmarkModule(
    name="radix2_div",
    category="arithmetic",
    type_tag="divider",
    source=RADIX2_DIV_SOURCE,
    spec=RADIX2_DIV_SPEC,
    make_model=Radix2DivModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"start": (0, 1), "dividend": (0, 255), "divisor": (0, 255)},
    compare_signals=["quotient", "remainder", "done", "dbz"],
    hold_cycles=11,
    hr_count=8,
    fr_count=32,
    complexity=1.9,
))

# ---------------------------------------------------------------------------
# alu — combinational 8-bit ALU
# ---------------------------------------------------------------------------

ALU_SOURCE = """\
module alu(
    input [7:0] a,
    input [7:0] b,
    input [2:0] op,
    output reg [7:0] result,
    output zero
);
    always @(*) begin
        case (op)
            3'b000: result = a + b;
            3'b001: result = a - b;
            3'b010: result = a & b;
            3'b011: result = a | b;
            3'b100: result = a ^ b;
            3'b101: result = a << b[2:0];
            3'b110: result = a >> b[2:0];
            default: result = (a < b) ? 8'd1 : 8'd0;
        endcase
    end
    assign zero = (result == 8'b0);
endmodule
"""

ALU_SPEC = """\
Module name: alu
Function: Combinational 8-bit ALU. op selects: 000 add, 001 subtract,
010 and, 011 or, 100 xor, 101 logical shift left by b[2:0], 110 logical
shift right by b[2:0], 111 set-less-than (unsigned, result 1 or 0).
zero is high when result is zero.
Ports:
  input [7:0] a        - first operand
  input [7:0] b        - second operand
  input [2:0] op       - operation select
  output [7:0] result  - operation result (mod 256)
  output zero          - result == 0 flag
"""


class AluModel(CombModel):
    """Golden model for ``alu``."""

    def compute(self, inputs):
        a = inputs.get("a", 0) & mask(8)
        b = inputs.get("b", 0) & mask(8)
        op = inputs.get("op", 0) & mask(3)
        shift = b & 7
        if op == 0:
            result = a + b
        elif op == 1:
            result = a - b
        elif op == 2:
            result = a & b
        elif op == 3:
            result = a | b
        elif op == 4:
            result = a ^ b
        elif op == 5:
            result = a << shift
        elif op == 6:
            result = a >> shift
        else:
            result = 1 if a < b else 0
        result &= mask(8)
        return {"result": result, "zero": 1 if result == 0 else 0}


register(BenchmarkModule(
    name="alu",
    category="arithmetic",
    type_tag="accumulator",
    source=ALU_SOURCE,
    spec=ALU_SPEC,
    make_model=AluModel,
    protocol=DriveProtocol(clock=None, reset=None),
    field_ranges={"a": (0, 255), "b": (0, 255), "op": (0, 7)},
    compare_signals=["result", "zero"],
    directed=[
        {"a": 0, "b": 0, "op": 0},
        {"a": 255, "b": 1, "op": 0},
        {"a": 5, "b": 9, "op": 1},
        {"a": 1, "b": 7, "op": 5},
        {"a": 3, "b": 200, "op": 7},
    ],
    hr_count=48,
    fr_count=192,
    complexity=1.1,
))

"""Miscellaneous benchmark designs (Table II "Miscellaneous"):
serializers, width converters, shifters, synchronizers, generators and
a scaled-down calendar.
"""

from repro.bench.registry import BenchmarkModule, register
from repro.refmodel.base import ReferenceModel, mask
from repro.uvm.driver import DriveProtocol

# ---------------------------------------------------------------------------
# edge_detect — rising/falling edge detector
# ---------------------------------------------------------------------------

EDGE_DETECT_SOURCE = """\
module edge_detect(
    input clk,
    input rst_n,
    input a,
    output reg rise,
    output reg down
);
    reg a_prev;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            a_prev <= 1'b0;
            rise <= 1'b0;
            down <= 1'b0;
        end else begin
            rise <= a && !a_prev;
            down <= !a && a_prev;
            a_prev <= a;
        end
    end
endmodule
"""

EDGE_DETECT_SPEC = """\
Module name: edge_detect
Function: Synchronous edge detector for the slowly-changing input a.
One cycle after a 0->1 transition of a, rise pulses high for one clock;
one cycle after a 1->0 transition, down pulses. Both outputs are
otherwise low. Asynchronous active-low reset clears the history (a is
treated as having been 0).
Ports:
  input clk    - clock
  input rst_n  - asynchronous active-low reset
  input a      - input signal
  output rise  - one-cycle pulse on rising edge of a
  output down  - one-cycle pulse on falling edge of a
"""


class EdgeDetectModel(ReferenceModel):
    """Golden model for ``edge_detect``."""

    def reset(self):
        self.a_prev = 0
        self.rise = 0
        self.down = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            a = inputs.get("a", 0) & 1
            self.rise = 1 if (a and not self.a_prev) else 0
            self.down = 1 if (not a and self.a_prev) else 0
            self.a_prev = a
        return {"rise": self.rise, "down": self.down}


register(BenchmarkModule(
    name="edge_detect",
    category="misc",
    type_tag="shifter",
    source=EDGE_DETECT_SOURCE,
    spec=EDGE_DETECT_SPEC,
    make_model=EdgeDetectModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"a": (0, 1)},
    compare_signals=["rise", "down"],
    hr_count=48,
    fr_count=192,
    complexity=0.9,
))

# ---------------------------------------------------------------------------
# parallel2serial — 4-bit parallel-to-serial converter
# ---------------------------------------------------------------------------

P2S_SOURCE = """\
module parallel2serial(
    input clk,
    input rst_n,
    input [3:0] d,
    output reg valid_out,
    output reg dout
);
    reg [3:0] data;
    reg [1:0] cnt;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            cnt <= 2'b0;
            data <= 4'b0;
            valid_out <= 1'b0;
            dout <= 1'b0;
        end else begin
            if (cnt == 2'd0) begin
                data <= d;
                dout <= d[3];
                valid_out <= 1'b1;
                cnt <= 2'd1;
            end else begin
                dout <= data[2'd3 - cnt];
                valid_out <= 1'b1;
                cnt <= cnt + 2'd1;
            end
        end
    end
endmodule
"""

P2S_SPEC = """\
Module name: parallel2serial
Function: Converts 4-bit parallel words to a serial bit stream, MSB
first. Every fourth cycle (cnt == 0) a new word is loaded from d and
its MSB appears on dout; the following three cycles shift out bits 2,
1, 0. valid_out is high whenever serial data is valid (always, once
running). Asynchronous active-low reset clears the shift state and
drops valid_out.
Ports:
  input clk         - clock
  input rst_n       - asynchronous active-low reset
  input [3:0] d     - parallel data (sampled when cnt wraps to 0)
  output valid_out  - serial bit valid
  output dout       - serial data, MSB first
"""


class P2sModel(ReferenceModel):
    """Golden model for ``parallel2serial``."""

    def reset(self):
        self.cnt = 0
        self.data = 0
        self.valid_out = 0
        self.dout = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            if self.cnt == 0:
                d = inputs.get("d", 0) & mask(4)
                self.data = d
                self.dout = (d >> 3) & 1
                self.valid_out = 1
                self.cnt = 1
            else:
                self.dout = (self.data >> (3 - self.cnt)) & 1
                self.valid_out = 1
                self.cnt = (self.cnt + 1) & 3
        return {"valid_out": self.valid_out, "dout": self.dout}


register(BenchmarkModule(
    name="parallel2serial",
    category="misc",
    type_tag="serdes",
    source=P2S_SOURCE,
    spec=P2S_SPEC,
    make_model=P2sModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"d": (0, 15)},
    compare_signals=["valid_out", "dout"],
    hr_count=48,
    fr_count=192,
    complexity=1.2,
))

# ---------------------------------------------------------------------------
# serial2parallel — 8-bit serial-to-parallel converter
# ---------------------------------------------------------------------------

S2P_SOURCE = """\
module serial2parallel(
    input clk,
    input rst_n,
    input din_serial,
    input din_valid,
    output reg [7:0] dout_parallel,
    output reg dout_valid
);
    reg [2:0] cnt;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            cnt <= 3'b0;
            dout_parallel <= 8'b0;
            dout_valid <= 1'b0;
        end else if (din_valid) begin
            dout_parallel <= {dout_parallel[6:0], din_serial};
            if (cnt == 3'd7) begin
                dout_valid <= 1'b1;
                cnt <= 3'b0;
            end else begin
                dout_valid <= 1'b0;
                cnt <= cnt + 3'd1;
            end
        end else begin
            dout_valid <= 1'b0;
        end
    end
endmodule
"""

S2P_SPEC = """\
Module name: serial2parallel
Function: Collects 8 serial bits (MSB first) qualified by din_valid into
dout_parallel. When the 8th bit of a group is sampled, dout_valid goes
high for one cycle and dout_parallel holds the completed byte. Cycles
without din_valid do not advance the bit counter. Asynchronous
active-low reset clears everything.
Ports:
  input clk              - clock
  input rst_n            - asynchronous active-low reset
  input din_serial       - serial data in
  input din_valid        - serial bit qualifier
  output [7:0] dout_parallel - assembled byte (shift register)
  output dout_valid      - one-cycle pulse per completed byte
"""


class S2pModel(ReferenceModel):
    """Golden model for ``serial2parallel``."""

    def reset(self):
        self.cnt = 0
        self.dout_parallel = 0
        self.dout_valid = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("din_valid"):
            bit = inputs.get("din_serial", 0) & 1
            self.dout_parallel = ((self.dout_parallel << 1) | bit) & mask(8)
            if self.cnt == 7:
                self.dout_valid = 1
                self.cnt = 0
            else:
                self.dout_valid = 0
                self.cnt += 1
        else:
            self.dout_valid = 0
        return {
            "dout_parallel": self.dout_parallel,
            "dout_valid": self.dout_valid,
        }


register(BenchmarkModule(
    name="serial2parallel",
    category="misc",
    type_tag="serdes",
    source=S2P_SOURCE,
    spec=S2P_SPEC,
    make_model=S2pModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"din_serial": (0, 1), "din_valid": (0, 1)},
    compare_signals=["dout_parallel", "dout_valid"],
    hr_count=64,
    fr_count=256,
    complexity=1.2,
))

# ---------------------------------------------------------------------------
# width_8to16 — width upconverter
# ---------------------------------------------------------------------------

W8TO16_SOURCE = """\
module width_8to16(
    input clk,
    input rst_n,
    input valid_in,
    input [7:0] data_in,
    output reg valid_out,
    output reg [15:0] data_out
);
    reg [7:0] data_lock;
    reg flag;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            data_lock <= 8'b0;
            flag <= 1'b0;
            valid_out <= 1'b0;
            data_out <= 16'b0;
        end else begin
            if (valid_in) begin
                if (!flag) begin
                    data_lock <= data_in;
                    flag <= 1'b1;
                    valid_out <= 1'b0;
                end else begin
                    data_out <= {data_lock, data_in};
                    valid_out <= 1'b1;
                    flag <= 1'b0;
                end
            end else begin
                valid_out <= 1'b0;
            end
        end
    end
endmodule
"""

W8TO16_SPEC = """\
Module name: width_8to16
Function: Pairs consecutive valid 8-bit inputs into one 16-bit output.
The first valid byte of a pair is latched; when the second arrives,
data_out presents {first, second} and valid_out pulses for one cycle.
Invalid cycles do not disturb a half-collected pair. Asynchronous
active-low reset clears the pairing state.
Ports:
  input clk            - clock
  input rst_n          - asynchronous active-low reset
  input valid_in       - input byte qualifier
  input [7:0] data_in  - input byte
  output valid_out     - one-cycle pulse per completed pair
  output [15:0] data_out - {first byte, second byte}
"""


class W8to16Model(ReferenceModel):
    """Golden model for ``width_8to16``."""

    def reset(self):
        self.data_lock = 0
        self.flag = 0
        self.valid_out = 0
        self.data_out = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("valid_in"):
            byte = inputs.get("data_in", 0) & mask(8)
            if not self.flag:
                self.data_lock = byte
                self.flag = 1
                self.valid_out = 0
            else:
                self.data_out = (self.data_lock << 8) | byte
                self.valid_out = 1
                self.flag = 0
        else:
            self.valid_out = 0
        return {"valid_out": self.valid_out, "data_out": self.data_out}


register(BenchmarkModule(
    name="width_8to16",
    category="misc",
    type_tag="serdes",
    source=W8TO16_SOURCE,
    spec=W8TO16_SPEC,
    make_model=W8to16Model,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"valid_in": (0, 1), "data_in": (0, 255)},
    compare_signals=["valid_out", "data_out"],
    hr_count=48,
    fr_count=192,
    complexity=1.1,
))

# ---------------------------------------------------------------------------
# right_shifter — serial-in shift register
# ---------------------------------------------------------------------------

RIGHT_SHIFTER_SOURCE = """\
module right_shifter(
    input clk,
    input rst_n,
    input d,
    output reg [7:0] q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            q <= 8'b0;
        else
            q <= {d, q[7:1]};
    end
endmodule
"""

RIGHT_SHIFTER_SPEC = """\
Module name: right_shifter
Function: 8-bit right shift register. Every clock cycle q shifts right
by one position; the serial input d enters at the MSB (bit 7) and bit 0
is discarded. Asynchronous active-low reset clears q.
Ports:
  input clk       - clock
  input rst_n     - asynchronous active-low reset
  input d         - serial input (enters at MSB)
  output [7:0] q  - shift register contents
"""


class RightShifterModel(ReferenceModel):
    """Golden model for ``right_shifter``."""

    def reset(self):
        self.q = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            d = inputs.get("d", 0) & 1
            self.q = ((d << 7) | (self.q >> 1)) & mask(8)
        return {"q": self.q}


register(BenchmarkModule(
    name="right_shifter",
    category="misc",
    type_tag="shifter",
    source=RIGHT_SHIFTER_SOURCE,
    spec=RIGHT_SHIFTER_SPEC,
    make_model=RightShifterModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"d": (0, 1)},
    compare_signals=["q"],
    hr_count=40,
    fr_count=160,
    complexity=0.7,
))

# ---------------------------------------------------------------------------
# synchronizer — two-stage mux synchronizer
# ---------------------------------------------------------------------------

SYNCHRONIZER_SOURCE = """\
module synchronizer(
    input clk,
    input rst_n,
    input [3:0] data_in,
    input data_en,
    output reg [3:0] dataout
);
    reg [3:0] data_stage1;
    reg en_stage1;
    reg en_stage2;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            data_stage1 <= 4'b0;
            en_stage1 <= 1'b0;
            en_stage2 <= 1'b0;
            dataout <= 4'b0;
        end else begin
            data_stage1 <= data_in;
            en_stage1 <= data_en;
            en_stage2 <= en_stage1;
            if (en_stage2)
                dataout <= data_stage1;
        end
    end
endmodule
"""

SYNCHRONIZER_SPEC = """\
Module name: synchronizer
Function: Mux-style data synchronizer. data_in and data_en are staged
through registers; when the twice-delayed enable (en_stage2) is high,
dataout captures the once-delayed data (data_stage1), otherwise dataout
holds. The enable condition uses the pre-edge value of en_stage2.
Asynchronous active-low reset clears all stages.
Ports:
  input clk            - clock
  input rst_n          - asynchronous active-low reset
  input [3:0] data_in  - asynchronous data
  input data_en        - data enable
  output [3:0] dataout - synchronized data
"""


class SynchronizerModel(ReferenceModel):
    """Golden model for ``synchronizer``."""

    def reset(self):
        self.data_stage1 = 0
        self.en_stage1 = 0
        self.en_stage2 = 0
        self.dataout = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            if self.en_stage2:
                new_out = self.data_stage1
            else:
                new_out = self.dataout
            self.en_stage2 = self.en_stage1
            self.en_stage1 = inputs.get("data_en", 0) & 1
            self.data_stage1 = inputs.get("data_in", 0) & mask(4)
            self.dataout = new_out
        return {"dataout": self.dataout}


register(BenchmarkModule(
    name="synchronizer",
    category="misc",
    type_tag="shifter",
    source=SYNCHRONIZER_SOURCE,
    spec=SYNCHRONIZER_SPEC,
    make_model=SynchronizerModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"data_in": (0, 15), "data_en": (0, 1)},
    compare_signals=["dataout"],
    hr_count=48,
    fr_count=192,
    complexity=1.0,
))

# ---------------------------------------------------------------------------
# signal_generator — multi-mode waveform generator
# ---------------------------------------------------------------------------

SIGNAL_GEN_SOURCE = """\
module signal_generator(
    input clk,
    input rst_n,
    input [1:0] mode,
    output reg [4:0] wave
);
    reg dir;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            wave <= 5'b0;
            dir <= 1'b0;
        end else begin
            case (mode)
                2'd0: begin
                    if (!dir) begin
                        if (wave == 5'd31) begin
                            dir <= 1'b1;
                            wave <= 5'd30;
                        end else begin
                            wave <= wave + 5'd1;
                        end
                    end else begin
                        if (wave == 5'd0) begin
                            dir <= 1'b0;
                            wave <= 5'd1;
                        end else begin
                            wave <= wave - 5'd1;
                        end
                    end
                end
                2'd1: begin
                    wave <= wave + 5'd1;
                    dir <= 1'b0;
                end
                2'd2: begin
                    dir <= ~dir;
                    wave <= dir ? 5'd0 : 5'd31;
                end
                default: begin
                    wave <= 5'b0;
                    dir <= 1'b0;
                end
            endcase
        end
    end
endmodule
"""

SIGNAL_GEN_SPEC = """\
Module name: signal_generator
Function: Waveform generator with mode select. mode 0: triangle wave
ramping 0..31..0 (dir tracks the ramp direction); mode 1: sawtooth
(free-running increment, dir forced 0); mode 2: square wave alternating
31 and 0 each cycle (wave gets 31 when the pre-edge dir is 0, 0 when it
is 1, while dir toggles); mode 3: output held at 0. Asynchronous
active-low reset clears wave and dir.
Ports:
  input clk         - clock
  input rst_n       - asynchronous active-low reset
  input [1:0] mode  - waveform select
  output [4:0] wave - generated waveform
"""


class SignalGeneratorModel(ReferenceModel):
    """Golden model for ``signal_generator``."""

    def reset(self):
        self.wave = 0
        self.dir = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            mode = inputs.get("mode", 0) & 3
            if mode == 0:
                if not self.dir:
                    if self.wave == 31:
                        self.dir = 1
                        self.wave = 30
                    else:
                        self.wave += 1
                else:
                    if self.wave == 0:
                        self.dir = 0
                        self.wave = 1
                    else:
                        self.wave -= 1
            elif mode == 1:
                self.wave = (self.wave + 1) & mask(5)
                self.dir = 0
            elif mode == 2:
                old_dir = self.dir
                self.dir = old_dir ^ 1
                self.wave = 0 if old_dir else 31
            else:
                self.wave = 0
                self.dir = 0
        return {"wave": self.wave}


register(BenchmarkModule(
    name="signal_generator",
    category="misc",
    type_tag="generator",
    source=SIGNAL_GEN_SOURCE,
    spec=SIGNAL_GEN_SPEC,
    make_model=SignalGeneratorModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"mode": [0, 0, 0, 1, 2, 3]},
    compare_signals=["wave"],
    hr_count=80,
    fr_count=320,
    complexity=1.4,
))

# ---------------------------------------------------------------------------
# calendar — scaled-down seconds/minutes/hours cascade
# ---------------------------------------------------------------------------

CALENDAR_SOURCE = """\
module calendar(
    input clk,
    input rst_n,
    output reg [2:0] secs,
    output reg [2:0] mins,
    output reg [1:0] hours
);
    localparam SEC_MAX = 3'd5;
    localparam MIN_MAX = 3'd5;
    localparam HOUR_MAX = 2'd3;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            secs <= 3'd0;
        else if (secs == SEC_MAX)
            secs <= 3'd0;
        else
            secs <= secs + 3'd1;
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            mins <= 3'd0;
        else if (secs == SEC_MAX) begin
            if (mins == MIN_MAX)
                mins <= 3'd0;
            else
                mins <= mins + 3'd1;
        end
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            hours <= 2'd0;
        else if (secs == SEC_MAX && mins == MIN_MAX) begin
            if (hours == HOUR_MAX)
                hours <= 2'd0;
            else
                hours <= hours + 2'd1;
        end
    end
endmodule
"""

CALENDAR_SPEC = """\
Module name: calendar
Function: Scaled-down calendar (perpetual counter cascade). secs counts
0..5 every clock; when secs is at its maximum (5) the next edge wraps it
and increments mins (0..5); when both secs and mins are at maximum,
hours increments (0..3, wrapping). Each field wraps independently at
its maximum. Asynchronous active-low reset clears all three fields.
Ports:
  input clk          - clock
  input rst_n        - asynchronous active-low reset
  output [2:0] secs  - seconds field (0..5)
  output [2:0] mins  - minutes field (0..5)
  output [1:0] hours - hours field (0..3)
"""


class CalendarModel(ReferenceModel):
    """Golden model for ``calendar``."""

    SEC_MAX = 5
    MIN_MAX = 5
    HOUR_MAX = 3

    def reset(self):
        self.secs = 0
        self.mins = 0
        self.hours = 0

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        else:
            sec_wrap = self.secs == self.SEC_MAX
            min_wrap = self.mins == self.MIN_MAX
            if sec_wrap and min_wrap:
                self.hours = 0 if self.hours == self.HOUR_MAX else self.hours + 1
            if sec_wrap:
                self.mins = 0 if min_wrap else self.mins + 1
            self.secs = 0 if sec_wrap else self.secs + 1
        return {"secs": self.secs, "mins": self.mins, "hours": self.hours}


register(BenchmarkModule(
    name="calendar",
    category="misc",
    type_tag="generator",
    source=CALENDAR_SOURCE,
    spec=CALENDAR_SPEC,
    make_model=CalendarModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={},
    compare_signals=["secs", "mins", "hours"],
    hr_count=160,
    fr_count=400,
    complexity=1.3,
))

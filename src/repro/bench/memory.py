"""Memory benchmark designs (Table II "Memory")."""

from repro.bench.registry import BenchmarkModule, register
from repro.refmodel.base import ReferenceModel, mask
from repro.uvm.driver import DriveProtocol

# ---------------------------------------------------------------------------
# ram_sp — single-port synchronous RAM
# ---------------------------------------------------------------------------

RAM_SP_SOURCE = """\
module ram_sp(
    input clk,
    input we,
    input [3:0] addr,
    input [7:0] wdata,
    output reg [7:0] rdata
);
    reg [7:0] mem [0:15];
    always @(posedge clk) begin
        if (we)
            mem[addr] <= wdata;
        rdata <= mem[addr];
    end
endmodule
"""

RAM_SP_SPEC = """\
Module name: ram_sp
Function: 16x8 single-port synchronous RAM with read-before-write
behaviour: on every clock edge rdata captures the old content of
mem[addr], and if we is high the location is then updated with wdata.
Unwritten locations are undefined. No reset.
Ports:
  input clk          - clock
  input we           - write enable
  input [3:0] addr   - shared read/write address
  input [7:0] wdata  - write data
  output [7:0] rdata - registered read data (old value on write)
"""


class RamSpModel(ReferenceModel):
    """Golden model for ``ram_sp``.

    Unwritten locations return ``None`` (don't-care), matching the
    undefined contents of a real RAM.
    """

    def reset(self):
        self.mem = {}
        self.rdata = None

    def step(self, inputs, reset=False):
        addr = inputs.get("addr", 0) & mask(4)
        self.rdata = self.mem.get(addr)
        if inputs.get("we"):
            self.mem[addr] = inputs.get("wdata", 0) & mask(8)
        return {"rdata": self.rdata}


register(BenchmarkModule(
    name="ram_sp",
    category="memory",
    type_tag="memory",
    source=RAM_SP_SOURCE,
    spec=RAM_SP_SPEC,
    make_model=RamSpModel,
    protocol=DriveProtocol(clock="clk", reset=None),
    field_ranges={"we": (0, 1), "addr": (0, 15), "wdata": (0, 255)},
    compare_signals=["rdata"],
    hr_count=64,
    fr_count=256,
    complexity=1.2,
))

# ---------------------------------------------------------------------------
# ram_dp — simple dual-port RAM
# ---------------------------------------------------------------------------

RAM_DP_SOURCE = """\
module ram_dp(
    input clk,
    input we,
    input [3:0] waddr,
    input [7:0] wdata,
    input [3:0] raddr,
    output reg [7:0] rdata
);
    reg [7:0] mem [0:15];
    always @(posedge clk) begin
        if (we)
            mem[waddr] <= wdata;
    end
    always @(posedge clk) begin
        rdata <= mem[raddr];
    end
endmodule
"""

RAM_DP_SPEC = """\
Module name: ram_dp
Function: 16x8 simple dual-port synchronous RAM: one write port, one
read port, independent addresses. The read port registers the old
content of mem[raddr] on every edge (write-first is NOT used: a
simultaneous write to the same address is not visible until the next
read). Unwritten locations are undefined. No reset.
Ports:
  input clk          - clock
  input we           - write enable
  input [3:0] waddr  - write address
  input [7:0] wdata  - write data
  input [3:0] raddr  - read address
  output [7:0] rdata - registered read data
"""


class RamDpModel(ReferenceModel):
    """Golden model for ``ram_dp``."""

    def reset(self):
        self.mem = {}
        self.rdata = None

    def step(self, inputs, reset=False):
        raddr = inputs.get("raddr", 0) & mask(4)
        self.rdata = self.mem.get(raddr)
        if inputs.get("we"):
            waddr = inputs.get("waddr", 0) & mask(4)
            self.mem[waddr] = inputs.get("wdata", 0) & mask(8)
        return {"rdata": self.rdata}


register(BenchmarkModule(
    name="ram_dp",
    category="memory",
    type_tag="memory",
    source=RAM_DP_SOURCE,
    spec=RAM_DP_SPEC,
    make_model=RamDpModel,
    protocol=DriveProtocol(clock="clk", reset=None),
    field_ranges={
        "we": (0, 1), "waddr": (0, 15), "wdata": (0, 255), "raddr": (0, 15),
    },
    compare_signals=["rdata"],
    hr_count=64,
    fr_count=256,
    complexity=1.2,
))

# ---------------------------------------------------------------------------
# sync_fifo — depth-8 synchronous FIFO
# ---------------------------------------------------------------------------

SYNC_FIFO_SOURCE = """\
module sync_fifo(
    input clk,
    input rst_n,
    input wr_en,
    input rd_en,
    input [7:0] din,
    output [7:0] dout,
    output full,
    output empty,
    output reg [3:0] count
);
    reg [7:0] mem [0:7];
    reg [2:0] wptr;
    reg [2:0] rptr;
    assign full = (count == 4'd8);
    assign empty = (count == 4'd0);
    assign dout = mem[rptr];
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            wptr <= 3'b0;
            rptr <= 3'b0;
            count <= 4'b0;
        end else begin
            if (wr_en && !full) begin
                mem[wptr] <= din;
                wptr <= wptr + 3'd1;
            end
            if (rd_en && !empty) begin
                rptr <= rptr + 3'd1;
            end
            case ({wr_en && !full, rd_en && !empty})
                2'b10: count <= count + 4'd1;
                2'b01: count <= count - 4'd1;
                default: count <= count;
            endcase
        end
    end
endmodule
"""

SYNC_FIFO_SPEC = """\
Module name: sync_fifo
Function: Depth-8, 8-bit-wide synchronous show-ahead FIFO. dout always
presents the word at the read pointer. A write (wr_en with not full)
stores din and advances the write pointer; a read (rd_en with not
empty) advances the read pointer. Simultaneous read+write keeps count
unchanged. full = (count == 8), empty = (count == 0). Writes to a full
FIFO and reads from an empty FIFO are ignored. Asynchronous active-low
reset clears the pointers and count (memory contents are unspecified).
Ports:
  input clk          - clock
  input rst_n        - asynchronous active-low reset
  input wr_en        - write request
  input rd_en        - read request
  input [7:0] din    - write data
  output [7:0] dout  - word at the head of the FIFO (show-ahead)
  output full        - FIFO full flag
  output empty       - FIFO empty flag
  output [3:0] count - number of stored words (0..8)
"""


class SyncFifoModel(ReferenceModel):
    """Golden model for ``sync_fifo`` (pointer-accurate, don't-care dout
    for never-written slots)."""

    def reset(self):
        self.mem = [None] * 8
        self.wptr = 0
        self.rptr = 0
        self.count = 0

    def step(self, inputs, reset=False):
        if reset:
            self.wptr = 0
            self.rptr = 0
            self.count = 0
        else:
            full = self.count == 8
            empty = self.count == 0
            do_write = bool(inputs.get("wr_en")) and not full
            do_read = bool(inputs.get("rd_en")) and not empty
            if do_write:
                self.mem[self.wptr] = inputs.get("din", 0) & mask(8)
                self.wptr = (self.wptr + 1) & mask(3)
            if do_read:
                self.rptr = (self.rptr + 1) & mask(3)
            if do_write and not do_read:
                self.count += 1
            elif do_read and not do_write:
                self.count -= 1
        return {
            "dout": self.mem[self.rptr],
            "full": 1 if self.count == 8 else 0,
            "empty": 1 if self.count == 0 else 0,
            "count": self.count,
        }


register(BenchmarkModule(
    name="sync_fifo",
    category="memory",
    type_tag="memory",
    source=SYNC_FIFO_SOURCE,
    spec=SYNC_FIFO_SPEC,
    make_model=SyncFifoModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={"wr_en": (0, 1), "rd_en": (0, 1), "din": (0, 255)},
    compare_signals=["dout", "full", "empty", "count"],
    hr_count=64,
    fr_count=256,
    complexity=1.6,
))

# ---------------------------------------------------------------------------
# regfile — 8x8 register file with hardwired zero register
# ---------------------------------------------------------------------------

REGFILE_SOURCE = """\
module regfile(
    input clk,
    input rst_n,
    input we,
    input [2:0] waddr,
    input [7:0] wdata,
    input [2:0] raddr1,
    input [2:0] raddr2,
    output [7:0] rdata1,
    output [7:0] rdata2
);
    reg [7:0] regs [0:7];
    integer i;
    assign rdata1 = (raddr1 == 3'b0) ? 8'b0 : regs[raddr1];
    assign rdata2 = (raddr2 == 3'b0) ? 8'b0 : regs[raddr2];
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            for (i = 0; i < 8; i = i + 1)
                regs[i] <= 8'b0;
        end else if (we && (waddr != 3'b0)) begin
            regs[waddr] <= wdata;
        end
    end
endmodule
"""

REGFILE_SPEC = """\
Module name: regfile
Function: 8-entry, 8-bit register file with two combinational read
ports and one synchronous write port. Register 0 is hardwired to zero:
reads of address 0 return 0 and writes to address 0 are ignored.
Asynchronous active-low reset clears all registers.
Ports:
  input clk           - clock
  input rst_n         - asynchronous active-low reset
  input we            - write enable
  input [2:0] waddr   - write address
  input [7:0] wdata   - write data
  input [2:0] raddr1  - read address 1
  input [2:0] raddr2  - read address 2
  output [7:0] rdata1 - read data 1 (combinational)
  output [7:0] rdata2 - read data 2 (combinational)
"""


class RegfileModel(ReferenceModel):
    """Golden model for ``regfile``."""

    def reset(self):
        self.regs = [0] * 8

    def step(self, inputs, reset=False):
        if reset:
            self.reset()
        elif inputs.get("we"):
            waddr = inputs.get("waddr", 0) & mask(3)
            if waddr != 0:
                self.regs[waddr] = inputs.get("wdata", 0) & mask(8)
        r1 = inputs.get("raddr1", 0) & mask(3)
        r2 = inputs.get("raddr2", 0) & mask(3)
        return {
            "rdata1": 0 if r1 == 0 else self.regs[r1],
            "rdata2": 0 if r2 == 0 else self.regs[r2],
        }


register(BenchmarkModule(
    name="regfile",
    category="memory",
    type_tag="memory",
    source=REGFILE_SOURCE,
    spec=REGFILE_SPEC,
    make_model=RegfileModel,
    protocol=DriveProtocol(clock="clk", reset="rst_n"),
    field_ranges={
        "we": (0, 1), "waddr": (0, 7), "wdata": (0, 255),
        "raddr1": (0, 7), "raddr2": (0, 7),
    },
    compare_signals=["rdata1", "rdata2"],
    hr_count=64,
    fr_count=256,
    complexity=1.3,
))

"""Benchmark dataset generation with triggered-error validation.

Every candidate mutation is checked before admission:

- *syntax* instances must actually fail the linter (an error, not just
  a warning);
- *functional* instances must lint clean of errors, elaborate, AND fail
  the UVM testbench (the error is genuinely triggered by the stimulus).

Candidates that slip through compilation or pass all tests are
discarded — this is the paper's answer to MEIC-style datasets where
~10% of instances bypassed the testbench unrepaired.
"""

import hashlib
import random
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.bench.registry import all_modules, get_module, make_hr_sequence
from repro.errgen.mutations import (
    ALL_OPERATORS,
    FUNCTIONAL_OPERATORS,
    SYNTAX_OPERATORS,
)
from repro.lint.linter import Linter
from repro.uvm.test import run_uvm_test

#: The paper's dataset has 331 instances; the generator aims for the
#: same scale (exact count depends on applicable sites per module).
DATASET_TARGET_SIZE = 331


@dataclass
class ErrorInstance:
    """One buggy-code instance of the evaluation dataset."""

    instance_id: str
    module_name: str
    category: str          # Table II group of the module
    operator: str
    kind: str              # "syntax" | "functional"
    paper_class: str       # Fig. 5 / Fig. 6 class
    description: str
    buggy_source: str
    golden_source: str


_linter = Linter()
_dataset_cache = {}


def _validate(bench, site, sequence):
    """Is this mutation a *triggered* error of its declared kind?"""
    report = _linter.lint(site.mutated_source)
    if site.kind == "syntax":
        return bool(report.errors)
    if report.errors:
        return False
    result = run_uvm_test(
        site.mutated_source, sequence, bench.protocol, bench.model(),
        bench.compare_signals, top=bench.top,
    )
    if not result.ok:
        return True  # elaborates per lint but dies in simulation: triggered
    return result.checked > 0 and len(result.mismatches) > 0


def generate_for_module(bench, operators=None, per_operator=2, seed=0,
                        validate=True, max_tries_factor=4):
    """Validated error instances for one benchmark module.

    At most ``per_operator * max_tries_factor`` candidate sites are
    validated per operator — each validation is a full UVM run, so the
    budget keeps generation tractable on large designs.
    """
    digest = hashlib.sha256(f"{seed}|{bench.name}".encode()).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    operators = operators if operators is not None else ALL_OPERATORS
    sequence = make_hr_sequence(bench, seed=seed) if validate else None
    instances = []
    for operator in operators:
        sites = operator.sites(bench.source)
        rng.shuffle(sites)
        sites = sites[: per_operator * max_tries_factor]
        taken = 0
        for site in sites:
            if taken >= per_operator:
                break
            if site.mutated_source == bench.source:
                continue
            if validate and not _validate(
                bench, site, make_hr_sequence(bench, seed=seed)
            ):
                continue
            taken += 1
            instances.append(
                ErrorInstance(
                    instance_id=f"{bench.name}:{operator.name}:{taken}",
                    module_name=bench.name,
                    category=bench.category,
                    operator=operator.name,
                    kind=site.kind,
                    paper_class=site.paper_class,
                    description=site.description,
                    buggy_source=site.mutated_source,
                    golden_source=bench.source,
                )
            )
    return instances


def generate_dataset(seed=0, per_operator=2, target=DATASET_TARGET_SIZE,
                     modules=None, operators=None, validate=True,
                     cache_dir=None):
    """The full evaluation dataset (approximately ``target`` instances).

    Deterministic for a given seed.  Results are cached in-process per
    (seed, per_operator, target) because validation simulates every
    functional candidate; ``cache_dir`` additionally persists instances
    on disk *per module* (keyed by the generation parameters and a hash
    of that module's golden source, so edited benchmarks invalidate),
    which lets any module or operator subset reuse the warm entries of
    a previous, differently-shaped campaign.  Stale or corrupt disk
    entries degrade to regeneration, never to an error.
    """
    key = (seed, per_operator, target,
           tuple(modules) if modules else None,
           tuple(op.name for op in operators) if operators else None,
           validate)
    if key in _dataset_cache:
        return _dataset_cache[key]
    selected = (
        [get_module(name) for name in modules] if modules else all_modules()
    )
    disk_cache = None
    if cache_dir is not None:
        from repro.runner.cache import DatasetCache

        disk_cache = DatasetCache(cache_dir)
    operator_names = tuple(
        op.name for op in (operators if operators is not None
                           else ALL_OPERATORS)
    )
    instances = []
    for bench in selected:
        module_key = None
        if disk_cache is not None:
            source_sha = hashlib.sha256(
                bench.source.encode("utf-8")
            ).hexdigest()
            module_key = hashlib.sha256(
                f"{seed}|{per_operator}|{validate}|{bench.name}|"
                f"{source_sha}|{operator_names}".encode("utf-8")
            ).hexdigest()
            cached = disk_cache.get(module_key)
            if cached is not None:
                try:
                    revived = [ErrorInstance(**data) for data in cached]
                except TypeError:
                    revived = None  # stale field shape: regenerate
                if revived is not None:
                    instances.extend(revived)
                    continue
        generated = generate_for_module(
            bench, operators=operators, per_operator=per_operator,
            seed=seed, validate=validate,
        )
        if disk_cache is not None:
            disk_cache.put(module_key, [asdict(i) for i in generated])
        instances.extend(generated)
    if target is not None and len(instances) > target:
        # Deterministic thinning that preserves per-module balance.
        rng = random.Random(seed)
        indexed = list(enumerate(instances))
        rng.shuffle(indexed)
        keep = sorted(index for index, _ in indexed[:target])
        instances = [instances[index] for index in keep]
    _dataset_cache[key] = instances
    return instances


def dataset_summary(instances):
    """Counts by kind / class / module category (for reports)."""
    summary = {
        "total": len(instances),
        "by_kind": {},
        "by_class": {},
        "by_category": {},
    }
    for instance in instances:
        summary["by_kind"][instance.kind] = (
            summary["by_kind"].get(instance.kind, 0) + 1
        )
        summary["by_class"][instance.paper_class] = (
            summary["by_class"].get(instance.paper_class, 0) + 1
        )
        summary["by_category"][instance.category] = (
            summary["by_category"].get(instance.category, 0) + 1
        )
    return summary

"""Paradigm error generator (paper Section III-E).

Injects the human-made error patterns of Table I into verified golden
designs, producing the evaluation dataset.  Every instance is validated:
syntax mutations must actually fail the linter, functional mutations
must compile but fail the UVM testbench — the paper's "all errors are
triggered during verification" guarantee.
"""

from repro.errgen.mutations import (
    ALL_OPERATORS,
    FUNCTIONAL_OPERATORS,
    SYNTAX_OPERATORS,
    MutationOperator,
    MutationSite,
)
from repro.errgen.generator import (
    ErrorInstance,
    generate_dataset,
    generate_for_module,
    DATASET_TARGET_SIZE,
)

__all__ = [
    "ALL_OPERATORS",
    "FUNCTIONAL_OPERATORS",
    "SYNTAX_OPERATORS",
    "MutationOperator",
    "MutationSite",
    "ErrorInstance",
    "generate_dataset",
    "generate_for_module",
    "DATASET_TARGET_SIZE",
]

"""Mutation operators implementing Table I's error symptoms.

Each operator scans the golden source for applicable *sites* and
produces concrete mutations.  Operators carry their paper
classification: the Fig. 5 syntax class or Fig. 6 functional class.
"""

import re
from dataclasses import dataclass
from typing import List


@dataclass
class MutationSite:
    """One concrete applicable mutation."""

    operator: str
    kind: str              # "syntax" | "functional"
    paper_class: str       # Fig. 5 / Fig. 6 category
    description: str
    mutated_source: str


class MutationOperator:
    """Base class: subclasses implement :meth:`sites`."""

    name = ""
    kind = "functional"
    paper_class = ""

    def sites(self, source) -> List[MutationSite]:
        raise NotImplementedError

    def _site(self, mutated, description):
        return MutationSite(
            operator=self.name,
            kind=self.kind,
            paper_class=self.paper_class,
            description=description,
            mutated_source=mutated,
        )


def _splice_lines(source, index, replacement):
    """Replace (or delete when None) line ``index`` (0-based)."""
    lines = source.splitlines()
    if replacement is None:
        del lines[index]
    else:
        lines[index] = replacement
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Syntax operators (Fig. 5 classes)
# ---------------------------------------------------------------------------

class PrematureTermination(MutationOperator):
    """Delete ``endmodule`` (or the file tail) — truncated copy/paste."""

    name = "premature_termination"
    kind = "syntax"
    paper_class = "premature_termination"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for index in range(len(lines) - 1, -1, -1):
            if lines[index].strip() == "endmodule":
                results.append(
                    self._site(
                        _splice_lines(source, index, None),
                        f"deleted 'endmodule' at line {index + 1}",
                    )
                )
                # Harsher variant: drop the last statement too.
                if index >= 2 and lines[index - 1].strip():
                    truncated = "\n".join(lines[: index - 1]) + "\n"
                    results.append(
                        self._site(
                            truncated,
                            f"truncated file at line {index - 1}",
                        )
                    )
                break
        return results


class ScopeIssue(MutationOperator):
    """Delete a standalone ``begin`` or ``end`` — broken block scope."""

    name = "scope_issue"
    kind = "syntax"
    paper_class = "scope_issues"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if stripped == "end":
                results.append(
                    self._site(
                        _splice_lines(source, index, None),
                        f"deleted 'end' at line {index + 1}",
                    )
                )
            elif stripped.endswith("begin") and "if" not in stripped and \
                    "else" not in stripped:
                without = line[: line.rfind("begin")].rstrip()
                replacement = without if without.strip() else None
                results.append(
                    self._site(
                        _splice_lines(source, index, replacement),
                        f"deleted 'begin' at line {index + 1}",
                    )
                )
        return results


class OperatorSyntax(MutationOperator):
    """Corrupt an operator into an illegal token sequence (``=+`` etc.)."""

    name = "operator_syntax"
    kind = "syntax"
    paper_class = "operator_misuses"

    _CORRUPTIONS = [
        (re.compile(r"<="), "=<"),
        (re.compile(r"&&"), "&&&"),
        (re.compile(r"(?<![<>=!+\-*/&|^])=(?!=)"), "=+"),
        (re.compile(r"\|\|"), "|||"),
    ]

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for index, line in enumerate(lines):
            if line.strip().startswith("//"):
                continue
            for pattern, bad in self._CORRUPTIONS:
                match = pattern.search(line)
                if match:
                    corrupted = line[: match.start()] + bad + line[match.end():]
                    results.append(
                        self._site(
                            _splice_lines(source, index, corrupted),
                            f"corrupted operator on line {index + 1}: "
                            f"{match.group(0)!r} -> {bad!r}",
                        )
                    )
                    break
        return results


class KeywordTypo(MutationOperator):
    """Misspell a structural keyword — classic incorrect coding."""

    name = "keyword_typo"
    kind = "syntax"
    paper_class = "incorrect_coding"

    _TYPOS = [
        ("always", "alway"),
        ("assign", "asign"),
        ("endcase", "endcas"),
        ("begin", "begi"),
        ("posedge", "posege"),
        ("module", "modul"),
    ]

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for keyword, typo in self._TYPOS:
            pattern = re.compile(rf"\b{keyword}\b")
            for index, line in enumerate(lines):
                match = pattern.search(line)
                if match:
                    corrupted = (
                        line[: match.start()] + typo + line[match.end():]
                    )
                    results.append(
                        self._site(
                            _splice_lines(source, index, corrupted),
                            f"misspelled '{keyword}' on line {index + 1}",
                        )
                    )
                    break  # one site per keyword
        return results


class UndeclaredUse(MutationOperator):
    """Delete an internal declaration (data-handling error)."""

    name = "undeclared_use"
    kind = "syntax"
    paper_class = "data_handling"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for index, line in enumerate(lines):
            if re.match(r"\s*(reg|integer)\s+(\[[^\]]*\]\s*)?\w+\s*;",
                        line):
                results.append(
                    self._site(
                        _splice_lines(source, index, None),
                        f"deleted declaration at line {index + 1}: "
                        f"{line.strip()}",
                    )
                )
        return results


# ---------------------------------------------------------------------------
# Functional operators (Fig. 6 classes)
# ---------------------------------------------------------------------------

class OperatorMisuse(MutationOperator):
    """Swap an arithmetic/bitwise operator (a+b -> a-b)."""

    name = "operator_misuse"
    kind = "functional"
    paper_class = "logic_errors"

    _SWAPS = [("+", "-"), ("-", "+"), ("&", "|"), ("|", "&"),
              ("^", "&"), ("<<", ">>"), (">>", "<<")]

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for index, line in enumerate(lines):
            if line.strip().startswith("//"):
                continue
            assign = re.search(r"(<=|(?<![<>=!])=(?!=))", line)
            if not assign:
                continue
            rhs_at = assign.end()
            for old, new in self._SWAPS:
                position = line.find(old, rhs_at)
                while position >= 0:
                    before = line[position - 1] if position else ""
                    after_at = position + len(old)
                    after = line[after_at] if after_at < len(line) else ""
                    ok = True
                    if old in ("+", "-") and (before == old or after == old):
                        ok = False
                    if old in ("<<", ">>") and (before in "<>" or
                                                after in "<>"):
                        ok = False
                    if old in ("&", "|") and (before == old or after == old):
                        ok = False
                    if ok:
                        mutated = line[:position] + new + line[after_at:]
                        results.append(
                            self._site(
                                _splice_lines(source, index, mutated),
                                f"swapped '{old}'->'{new}' on line "
                                f"{index + 1}",
                            )
                        )
                        break
                    position = line.find(old, position + 1)
        return results


class ValueMisuse(MutationOperator):
    """Change an assigned constant (32'b0 -> 32'b1 style)."""

    name = "value_misuse"
    kind = "functional"
    paper_class = "logic_errors"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        pattern = re.compile(r"(\d+)'([bdh])([0-9a-fA-F_]+)")
        for index, line in enumerate(lines):
            assign = re.search(r"(<=|(?<![<>=!])=(?!=))", line)
            if not assign or "==" in line[assign.start():assign.start() + 2]:
                continue
            if re.search(r"\b(if|while|case)\b", line):
                continue  # condition literals belong to ConditionValue
            for match in pattern.finditer(line, assign.end()):
                width = int(match.group(1))
                base = match.group(2)
                digits = match.group(3).replace("_", "")
                radix = {"b": 2, "d": 10, "h": 16}[base]
                try:
                    value = int(digits, radix)
                except ValueError:
                    continue
                new_value = 1 if value == 0 else 0
                if width == 1 and value > 1:
                    continue
                rendered = {
                    "b": f"{width}'b{new_value:b}",
                    "d": f"{width}'d{new_value}",
                    "h": f"{width}'h{new_value:x}",
                }[base]
                mutated = (
                    line[: match.start()] + rendered + line[match.end():]
                )
                results.append(
                    self._site(
                        _splice_lines(source, index, mutated),
                        f"changed constant {match.group(0)} -> {rendered} "
                        f"on line {index + 1}",
                    )
                )
        return results


class ConditionValue(MutationOperator):
    """Wrong judgment value in a comparison (i < 7 -> i < 15)."""

    name = "condition_value"
    kind = "functional"
    paper_class = "flawed_conditions"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        pattern = re.compile(
            r"(==|!=|<=|>=|<|>)\s*((\d+)'([bdh]))?([0-9a-fA-F_]+)\b"
        )
        for index, line in enumerate(lines):
            if not re.search(r"\b(if|while|for|case)\b", line) and \
                    "?" not in line:
                continue
            for match in pattern.finditer(line):
                digits = match.group(5).replace("_", "")
                radix = {"b": 2, "d": 10, "h": 16}.get(match.group(4), 10)
                try:
                    value = int(digits, radix)
                except ValueError:
                    continue
                width = int(match.group(3)) if match.group(3) else None
                for new_value in (value * 2 + 1, max(0, value - 1),
                                  value + 1):
                    if new_value == value:
                        continue
                    if width is not None and new_value >= (1 << width):
                        continue
                    if width:
                        base = match.group(4)
                        rendered = {
                            "b": f"{width}'b{new_value:b}",
                            "d": f"{width}'d{new_value}",
                            "h": f"{width}'h{new_value:x}",
                        }[base]
                        literal = match.group(1) + " " + rendered
                    else:
                        literal = f"{match.group(1)} {new_value}"
                    mutated = (
                        line[: match.start()] + literal + line[match.end():]
                    )
                    results.append(
                        self._site(
                            _splice_lines(source, index, mutated),
                            f"changed judgment value {value} -> {new_value} "
                            f"on line {index + 1}",
                        )
                    )
                    break
        return results


class BitwidthMisuse(MutationOperator):
    """Narrow a declaration's packed range (reg[8:0] -> reg[7:0])."""

    name = "bitwidth_misuse"
    kind = "functional"
    paper_class = "incorrect_bitwidth"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        for index, line in enumerate(lines):
            if not re.match(r"\s*(input|output|inout|wire|reg)\b", line):
                continue
            match = re.search(r"\[(\d+)\s*:\s*(\d+)\]", line)
            if not match:
                continue
            msb = int(match.group(1))
            lsb = int(match.group(2))
            if msb <= lsb:
                continue
            mutated = (
                line[: match.start()] + f"[{msb - 1}:{lsb}]"
                + line[match.end():]
            )
            results.append(
                self._site(
                    _splice_lines(source, index, mutated),
                    f"narrowed range [{msb}:{lsb}] -> [{msb - 1}:{lsb}] "
                    f"on line {index + 1}",
                )
            )
        return results


class SensitivityMisuse(MutationOperator):
    """Drop the reset edge from a sensitivity list (Table I: wrong
    sensitivity)."""

    name = "sensitivity_misuse"
    kind = "functional"
    paper_class = "flawed_conditions"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        pattern = re.compile(r"\s*or\s+negedge\s+\w+")
        for index, line in enumerate(lines):
            if "always" not in line:
                continue
            match = pattern.search(line)
            if match:
                mutated = line[: match.start()] + line[match.end():]
                results.append(
                    self._site(
                        _splice_lines(source, index, mutated),
                        f"dropped reset edge from sensitivity on line "
                        f"{index + 1}",
                    )
                )
        return results


class VariableMisuse(MutationOperator):
    """Replace an identifier read with a similarly named signal."""

    name = "variable_misuse"
    kind = "functional"
    paper_class = "logic_errors"

    def sites(self, source):
        declared = {}
        for match in re.finditer(
            r"\b(?:input|output|inout)?\s*(?:wire|reg|integer)\s*"
            r"(?:signed\s*)?(\[[^\]]*\])?\s*(\w+)\s*[;,\[]", source,
        ):
            declared[match.group(2)] = match.group(1) or ""
        results = []
        lines = source.splitlines()
        names = sorted(declared)
        for index, line in enumerate(lines):
            assign = re.search(r"(<=|(?<![<>=!])=(?!=))", line)
            if not assign:
                continue
            for match in re.finditer(r"[A-Za-z_][A-Za-z0-9_]*", line):
                if match.start() < assign.end():
                    continue
                name = match.group(0)
                if name not in declared:
                    continue
                for other in names:
                    if other == name or declared[other] != declared[name]:
                        continue
                    mutated = (
                        line[: match.start()] + other + line[match.end():]
                    )
                    results.append(
                        self._site(
                            _splice_lines(source, index, mutated),
                            f"replaced '{name}' with '{other}' on line "
                            f"{index + 1}",
                        )
                    )
                    break
                else:
                    continue
                break  # one site per line
        return results


class AssignmentTiming(MutationOperator):
    """Blocking/non-blocking assignment misuse (Table I: operator
    misuse in the Assignment group; the "timing-related" class the
    paper's pre-processing templates target)."""

    name = "assignment_timing"
    kind = "functional"
    paper_class = "flawed_conditions"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        in_clocked = False
        for index, line in enumerate(lines):
            if "always" in line:
                in_clocked = "posedge" in line or "negedge" in line
                continue
            if not in_clocked:
                continue
            match = re.search(r"<=", line)
            if match and not re.search(r"\b(if|while|for)\b", line):
                mutated = line[: match.start()] + "=" + line[match.end():]
                results.append(
                    self._site(
                        _splice_lines(source, index, mutated),
                        f"non-blocking -> blocking on line {index + 1}",
                    )
                )
        return results


class SensitivityDrop(MutationOperator):
    """Drop the reset edge, leaving an async-reset body behind a
    synchronous sensitivity list (fixable by the SYNCASYNC template)."""

    # NOTE: this shares Table I's "wrong sensitivity" symptom with
    # SensitivityMisuse but is registered separately so experiments can
    # attribute its (pre-processing) fixes distinctly.
    name = "sensitivity_drop"
    kind = "functional"
    paper_class = "flawed_conditions"

    def sites(self, source):
        return []  # folded into SensitivityMisuse; kept for API compat


class PortMismatch(MutationOperator):
    """Corrupt an instance connection (Table I: port mismatch)."""

    name = "port_mismatch"
    kind = "functional"
    paper_class = "logic_errors"

    def sites(self, source):
        results = []
        lines = source.splitlines()
        pattern = re.compile(r"\.(\w+)\(([^)]*)\)")
        for index, line in enumerate(lines):
            if not pattern.search(line) or "module" in line:
                continue
            connections = list(pattern.finditer(line))
            if len(connections) >= 2:
                a, b = connections[0], connections[1]
                swapped = (
                    line[: a.start()]
                    + f".{a.group(1)}({b.group(2)})"
                    + line[a.end(): b.start()]
                    + f".{b.group(1)}({a.group(2)})"
                    + line[b.end():]
                )
                results.append(
                    self._site(
                        _splice_lines(source, index, swapped),
                        f"swapped connections on line {index + 1}",
                    )
                )
            conn = connections[0]
            if conn.group(2).strip() not in ("1'b0", ""):
                tied = (
                    line[: conn.start()] + f".{conn.group(1)}(1'b0)"
                    + line[conn.end():]
                )
                results.append(
                    self._site(
                        _splice_lines(source, index, tied),
                        f"tied port '{conn.group(1)}' to 1'b0 on line "
                        f"{index + 1}",
                    )
                )
        return results


#: The operator sets (9 core operators of Fig. 7 plus extensions).
SYNTAX_OPERATORS = [
    PrematureTermination(),
    ScopeIssue(),
    OperatorSyntax(),
    KeywordTypo(),
    UndeclaredUse(),
]

FUNCTIONAL_OPERATORS = [
    OperatorMisuse(),
    ValueMisuse(),
    ConditionValue(),
    BitwidthMisuse(),
    SensitivityMisuse(),
    AssignmentTiming(),
    VariableMisuse(),
    PortMismatch(),
]

ALL_OPERATORS = SYNTAX_OPERATORS + FUNCTIONAL_OPERATORS

"""Telemetry exporters: Chrome trace-event JSON and run summaries.

Two consumers of merged telemetry shards:

- :func:`chrome_trace` emits the Chrome trace-event format ("X"
  complete events), directly loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev — one track per process, spans nested by
  wall-clock containment.
- :func:`summarize` computes the run report that ``repro.cli report``
  prints: per-phase wall-time breakdown (total and self time), cache
  hit rates, per-module simulated cycles/sec, the top-N slowest units,
  and the lane-demotion histogram.
"""

import json

from .metrics import DEMOTION_CATEGORIES


def chrome_trace(spans):
    """Spans → Chrome trace-event JSON object (``json.dump`` ready)."""
    events = []
    for item in spans:
        events.append({
            "name": item.get("name", "?"),
            "cat": item.get("cat", "phase"),
            "ph": "X",
            "ts": item.get("ts", 0.0) * 1e6,
            "dur": item.get("dur", 0.0) * 1e6,
            "pid": item.get("pid", 0),
            "tid": item.get("pid", 0),
            "args": item.get("attrs", {}) or {},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _self_times(spans):
    """Per-span self time: duration minus direct children's durations.

    Parent links are (pid, sid) pairs — sids are only unique within a
    process.
    """
    child_totals = {}
    for item in spans:
        parent = item.get("parent", 0)
        if parent:
            key = (item.get("pid", 0), parent)
            child_totals[key] = child_totals.get(key, 0.0) + item.get("dur", 0.0)
    out = []
    for item in spans:
        key = (item.get("pid", 0), item.get("sid", 0))
        self_time = item.get("dur", 0.0) - child_totals.get(key, 0.0)
        out.append(max(0.0, self_time))
    return out


def _rate(hits, misses):
    total = hits + misses
    return (hits / total) if total else None


def _incomplete_units(spans, opens):
    """Open markers with no matching finished ``unit`` span.

    Spans buffer only on close, so a worker that died mid-unit leaves
    an open marker and nothing else.  Matching is by (pid, label)
    *count* — the same label may legitimately run several times across
    a session, each run writing one marker and (normally) one span.
    Elapsed time is bounded below by the youngest observed shard
    timestamp; the unit may have run longer before the crash.
    """
    if not opens:
        return []
    finished = {}
    latest_ts = 0.0
    for item in spans:
        latest_ts = max(latest_ts, item.get("ts", 0.0)
                        + item.get("dur", 0.0))
        if item.get("name") not in ("unit", "fuzz-unit"):
            continue
        key = (item.get("pid", 0), (item.get("attrs") or {}).get("label"))
        finished[key] = finished.get(key, 0) + 1
    rows = []
    for marker in opens:
        latest_ts = max(latest_ts, marker.get("ts", 0.0))
        key = (marker.get("pid", 0), marker.get("label"))
        if finished.get(key, 0) > 0:
            finished[key] -= 1
            continue
        rows.append({
            "label": marker.get("label", "?"),
            "seconds": max(0.0, latest_ts - marker.get("ts", 0.0)),
            "incomplete": True,
        })
    rows.sort(key=lambda row: (-row["seconds"], row["label"]))
    return rows


def summarize(spans, metrics, top=10, opens=None):
    """Aggregate merged telemetry into a JSON-pure report dict.

    ``opens`` (from :func:`repro.obs.sink.read_opens`) enables
    incomplete-unit detection: units whose span never closed are
    surfaced as explicit rows instead of silently vanishing.
    """
    phases = {}
    selfs = _self_times(spans)
    for item, self_time in zip(spans, selfs):
        name = item.get("name", "?")
        row = phases.get(name)
        if row is None:
            row = phases[name] = {"count": 0, "total": 0.0, "self": 0.0, "max": 0.0}
        row["count"] += 1
        row["total"] += item.get("dur", 0.0)
        row["self"] += self_time
        row["max"] = max(row["max"], item.get("dur", 0.0))

    # Top-N slowest unit spans (campaign work units and fuzz units).
    units = [item for item in spans if item.get("name") in ("unit", "fuzz-unit")]
    units.sort(key=lambda item: (-item.get("dur", 0.0),
                                 item.get("pid", 0), item.get("sid", 0)))
    slowest = [{
        "label": (item.get("attrs") or {}).get("label", "?"),
        "seconds": item.get("dur", 0.0),
        "cached": bool((item.get("attrs") or {}).get("cached")),
    } for item in units[:top]]

    # Per-module simulated throughput, from simulate-span attributes.
    modules = {}
    for item in spans:
        if item.get("name") != "simulate":
            continue
        attrs = item.get("attrs") or {}
        module = attrs.get("module", "?")
        row = modules.get(module)
        if row is None:
            row = modules[module] = {"runs": 0, "seconds": 0.0, "cycles": 0, "events": 0}
        row["runs"] += 1
        row["seconds"] += item.get("dur", 0.0)
        row["cycles"] += int(attrs.get("cycles", 0))
        row["events"] += int(attrs.get("events", 0))
    for row in modules.values():
        row["cycles_per_sec"] = row["cycles"] / row["seconds"] if row["seconds"] else 0.0

    counters = metrics.counters if metrics is not None else {}
    caches = {
        "unit_cache": _rate(counters.get("unit_cache.hits", 0),
                            counters.get("unit_cache.misses", 0)),
        "kernel_memo": _rate(counters.get("kernel.memo_hits", 0),
                             counters.get("kernel.compiled", 0)),
        "kernel_disk": _rate(counters.get("kernel.disk_hits", 0),
                             counters.get("kernel.compiled", 0)
                             - counters.get("kernel.disk_hits", 0)),
    }

    demotions = {}
    for cat in DEMOTION_CATEGORIES:
        n = counters.get("lanes.demotion." + cat, 0)
        if n:
            demotions[cat] = n

    faults = {
        key: counters.get("faults." + key, 0)
        for key in ("retries", "quarantined", "pool_respawns",
                    "timeouts", "worker_deaths", "group_resplits",
                    "cache_write_errors")
        if counters.get("faults." + key, 0)
    }
    if counters.get("unit_cache.corrupt", 0):
        faults["cache_corrupt"] = counters["unit_cache.corrupt"]

    return {
        "phases": {name: phases[name] for name in sorted(phases)},
        "slowest_units": slowest,
        "incomplete_units": _incomplete_units(spans, opens or []),
        "modules": {name: modules[name] for name in sorted(modules)},
        "caches": caches,
        "demotions": demotions,
        "faults": faults,
        "counters": dict(sorted(counters.items())),
        "span_count": len(spans),
    }


def _fmt_seconds(value):
    if value >= 60:
        return "%.1fm" % (value / 60)
    if value >= 1:
        return "%.2fs" % value
    return "%.1fms" % (value * 1e3)


def render_summary(report, markdown=False):
    """Summary dict → human-readable text (or GitHub-flavoured md)."""
    lines = []
    bold = (lambda text: "**%s**" % text) if markdown else (lambda text: text)

    phases = report.get("phases", {})
    if phases:
        lines.append(bold("Per-phase wall time"))
        if markdown:
            lines.append("| phase | count | total | self | max |")
            lines.append("|---|---:|---:|---:|---:|")
        order = sorted(phases.items(), key=lambda kv: -kv[1]["total"])
        for name, row in order:
            cells = (name, str(row["count"]), _fmt_seconds(row["total"]),
                     _fmt_seconds(row["self"]), _fmt_seconds(row["max"]))
            if markdown:
                lines.append("| %s | %s | %s | %s | %s |" % cells)
            else:
                lines.append("  %-14s %6s runs  total %8s  self %8s  max %8s" % cells)
        lines.append("")

    caches = report.get("caches", {})
    cache_bits = []
    for name, rate in sorted(caches.items()):
        if rate is not None:
            cache_bits.append("%s %.0f%%" % (name, rate * 100))
    if cache_bits:
        lines.append(bold("Cache hit rates") + ": " + ", ".join(cache_bits))
        lines.append("")

    modules = report.get("modules", {})
    if modules:
        lines.append(bold("Per-module simulation throughput"))
        if markdown:
            lines.append("| module | runs | sim time | cycles/sec |")
            lines.append("|---|---:|---:|---:|")
        order = sorted(modules.items(), key=lambda kv: -kv[1]["seconds"])
        for name, row in order:
            cells = (name, str(row["runs"]), _fmt_seconds(row["seconds"]),
                     "%.0f" % row["cycles_per_sec"])
            if markdown:
                lines.append("| %s | %s | %s | %s |" % cells)
            else:
                lines.append("  %-24s %5s runs  %8s  %10s cyc/s" % cells)
        lines.append("")

    slowest = report.get("slowest_units", [])
    if slowest:
        lines.append(bold("Slowest units"))
        for row in slowest:
            suffix = " (cached)" if row.get("cached") else ""
            lines.append("  %8s  %s%s" % (_fmt_seconds(row["seconds"]),
                                          row["label"], suffix))
        lines.append("")

    incomplete = report.get("incomplete_units", [])
    if incomplete:
        lines.append(bold("Incomplete units") + " (span never closed — "
                     "worker crashed or was killed mid-unit)")
        for row in incomplete:
            lines.append("  %8s+ %s INCOMPLETE"
                         % (_fmt_seconds(row["seconds"]), row["label"]))
        lines.append("")

    demotions = report.get("demotions", {})
    if demotions:
        lines.append(bold("Lane demotions"))
        for cat, n in sorted(demotions.items(), key=lambda kv: -kv[1]):
            lines.append("  %-22s %d" % (cat, n))
        lines.append("")

    faults = report.get("faults", {})
    if faults:
        lines.append(bold("Fault tolerance") + " (infra retries and "
                     "quarantines; verdicts are never retried)")
        for name, n in sorted(faults.items(), key=lambda kv: -kv[1]):
            lines.append("  %-22s %d" % (name, n))
        lines.append("")

    if not lines:
        lines.append("no telemetry recorded")
    return "\n".join(lines).rstrip() + "\n"


def write_chrome_trace(spans, out_path):
    """Write the Chrome trace JSON for a span list."""
    with open(out_path, "w") as handle:
        json.dump(chrome_trace(spans), handle)
    return out_path

"""Campaign observability: spans, metrics, telemetry shards, reports.

- :mod:`repro.obs.trace` — contextvar-scoped span tracer (no-op when
  disabled)
- :mod:`repro.obs.metrics` — mergeable counter/histogram registry (the
  one ``StatsDelta`` shape workers ship to the scheduler)
- :mod:`repro.obs.sink` — atomic per-worker JSONL shards under
  ``<cache-dir>/telemetry/`` plus commutative merge
- :mod:`repro.obs.export` — Chrome trace-event / Perfetto exporter and
  the ``repro.cli report`` summary aggregator

Telemetry is sidecar-only: nothing here may influence
``WorkUnit.cache_key()`` or the bytes of cached records/coverage DBs.
"""

from . import export, metrics, sink, trace
from .metrics import GLOBAL, MetricsRegistry, classify_demotion
from .trace import span

__all__ = [
    "export",
    "metrics",
    "sink",
    "trace",
    "span",
    "GLOBAL",
    "MetricsRegistry",
    "classify_demotion",
]

"""Unified metrics registry: counters and histograms with delta/merge.

This replaces the ad-hoc stat plumbing that grew organically across
the runner (``kernel_stats`` dicts shipped back from pool workers, the
lane packed/demoted tallies, cache hit counters): every layer now
increments named counters or observes named histograms in a registry,
and workers ship one :func:`MetricsRegistry.delta` snapshot — a plain
JSON-pure dict — back to the scheduler, which :func:`absorb`\\ s it.

Merging is commutative and associative (counters add; histograms add
bucket-wise and take min/max), the same discipline as the coverage DB,
so telemetry shards from any number of workers fold into the same
totals regardless of arrival order — the property the shard-merge
tests pin down.

Histograms use log2 buckets over seconds, which is plenty for "which
phase is slow" questions, and additionally keep a small process-local
rolling window of recent raw samples.  The rolling window is what the
scheduler's ETA uses (satellite: a rolling per-unit estimate instead
of the global average, so one pathological unit early in a campaign
stops inflating the ETA for the rest of it).  The window is local-only
state: it rides along ``absorb()`` via the delta's sum/count but is
never part of the mergeable snapshot bytes.
"""

import math
from collections import deque

#: Rolling-window size for recent histogram samples (ETA smoothing).
ROLLING_WINDOW = 32

#: Canonical lane-demotion categories (satellite: free-text
#: ``ScalarLaneBatch.demotion`` reasons become structured counters
#: ``lanes.demotion.<category>``).
DEMOTION_CATEGORIES = (
    "memories",
    "system-functions",
    "comb-cycle",
    "per-process-shim",
    "stimulus-misaligned",
    "empty-sequence",
    "construction-failed",
    "packed-run-failed",
    "other",
)


def classify_demotion(reason):
    """Map a free-text lane-demotion reason to a stable category."""
    text = (reason or "").lower()
    if not text:
        return "other"
    if "memor" in text:
        return "memories"
    if "$time" in text or "$stime" in text or "$random" in text:
        return "system-functions"
    if "levelizable" in text or "comb" in text:
        return "comb-cycle"
    if "shim would regress" in text:
        return "per-process-shim"
    if "not shape-aligned" in text or "sequences" in text:
        return "stimulus-misaligned"
    if "empty sequence" in text:
        return "empty-sequence"
    if "construction failed" in text:
        return "construction-failed"
    if "packed run failed" in text:
        return "packed-run-failed"
    return "other"


def _bucket(value):
    """Log2 bucket index for a non-negative sample (seconds-ish)."""
    if value <= 0:
        return 0
    # Bucket k covers (2**(k-1-32), 2**(k-32)] seconds: sub-microsecond
    # samples land in bucket 0, ~1s lands around bucket 32.
    return max(0, min(63, int(math.ceil(math.log2(value))) + 32))


class Histogram:
    """Mergeable log2 histogram plus a local rolling sample window."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets", "recent")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self.buckets = {}
        self.recent = deque(maxlen=ROLLING_WINDOW)

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        key = _bucket(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1
        self.recent.append(value)

    def merge(self, snap):
        """Fold a snapshot dict (from :meth:`snapshot`) into this one."""
        if not snap or not snap.get("count"):
            return
        self.count += snap["count"]
        self.total += snap["sum"]
        if snap.get("min") is not None:
            self.minimum = snap["min"] if self.minimum is None else min(self.minimum, snap["min"])
        if snap.get("max") is not None:
            self.maximum = snap["max"] if self.maximum is None else max(self.maximum, snap["max"])
        for key, n in snap.get("buckets", {}).items():
            key = int(key)
            self.buckets[key] = self.buckets.get(key, 0) + n
        # Feed the merged mass into the rolling window as its mean so a
        # parent absorbing per-unit worker deltas (count == 1 each) sees
        # the actual sample stream.
        if snap["count"]:
            mean = snap["sum"] / snap["count"]
            for _ in range(min(snap["count"], ROLLING_WINDOW)):
                self.recent.append(mean)

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {str(key): n for key, n in sorted(self.buckets.items())},
        }

    def mean(self):
        return self.total / self.count if self.count else 0.0

    def rolling_median(self):
        """Median of the recent sample window (None when empty)."""
        if not self.recent:
            return None
        ordered = sorted(self.recent)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


class MetricsRegistry:
    """Named counters and histograms with snapshot/delta/absorb."""

    def __init__(self):
        self.counters = {}
        self.histograms = {}

    # -- recording ----------------------------------------------------
    def inc(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name, value):
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def counter(self, name):
        return self.counters.get(name, 0)

    def histogram(self, name):
        return self.histograms.get(name)

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self):
        """JSON-pure snapshot of everything recorded so far."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def delta(self, before):
        """The JSON-pure difference between now and a prior snapshot.

        This is the one ``StatsDelta`` shape workers ship back to the
        scheduler (replacing the bespoke kernel/lane stat dicts).
        """
        before_counters = before.get("counters", {})
        counters = {}
        for name, value in self.counters.items():
            diff = value - before_counters.get(name, 0)
            if diff:
                counters[name] = diff
        before_hists = before.get("histograms", {})
        histograms = {}
        for name, hist in self.histograms.items():
            prior = before_hists.get(name)
            snap = hist.snapshot()
            if prior is None or not prior.get("count"):
                if snap["count"]:
                    histograms[name] = snap
                continue
            count = snap["count"] - prior["count"]
            if not count:
                continue
            buckets = {}
            prior_buckets = prior.get("buckets", {})
            for key, n in snap["buckets"].items():
                diff = n - prior_buckets.get(key, 0)
                if diff:
                    buckets[key] = diff
            histograms[name] = {
                "count": count,
                "sum": snap["sum"] - prior["sum"],
                # min/max are not subtractable; the delta's extrema are
                # conservatively the current ones (merge keeps min/max
                # correct as a bound, which is all the summary needs).
                "min": snap["min"],
                "max": snap["max"],
                "buckets": buckets,
            }
        return {"counters": counters, "histograms": histograms}

    def absorb(self, delta):
        """Fold a snapshot/delta dict in (commutative, associative)."""
        if not delta:
            return
        for name, value in delta.get("counters", {}).items():
            self.inc(name, value)
        for name, snap in delta.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(snap)

    def reset(self):
        self.counters = {}
        self.histograms = {}


#: Process-global registry: layers that have no runner handle (the
#: kernel compile cache, the result cache) record here; the scheduler
#: snapshots/deltas it around each work unit.
GLOBAL = MetricsRegistry()

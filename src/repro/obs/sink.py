"""Telemetry shard I/O: atomic per-worker JSONL shards plus merge.

Layout mirrors the coverage DB's sharding discipline: every process
writes its own files under ``<cache-dir>/telemetry/`` (no file is ever
shared between writers), each write is a whole-file atomic
tmp-then-rename, and the merge is commutative/associative with
deterministic output bytes — so ``--jobs N`` and ``--jobs 1`` runs
merge to the same report modulo wall-clock values.

Shard lines are JSON objects tagged by ``kind``:

- ``{"kind": "span", ...}`` — one finished span (see
  :meth:`repro.obs.trace.Span.to_dict`)
- ``{"kind": "metrics", "data": {...}}`` — one registry snapshot/delta

The parent process enables a run with :func:`telemetry_scope`, which
exports ``REPRO_TELEMETRY`` so pool workers (fork or spawn start
method) pick the directory up via :func:`maybe_init_worker`, exactly
the pattern the kernel disk cache uses with ``REPRO_COMPILE_CACHE``.
"""

import contextlib
import json
import os
import tempfile

from . import trace
from .metrics import GLOBAL, MetricsRegistry

_dir = None
_seq = 0


def telemetry_dir():
    """The active telemetry directory, or None when telemetry is off."""
    return _dir


@contextlib.contextmanager
def telemetry_scope(path):
    """Enable telemetry for the duration of a block.

    Creates ``path``, turns the tracer on, and exports the directory to
    child processes.  On exit the remaining buffered spans and the
    process-global metrics registry are flushed, and prior state is
    restored (scopes may nest, e.g. ci_smoke wrapping a campaign).
    """
    global _dir
    if path is None:
        yield None
        return
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    prev_dir = _dir
    prev_env = os.environ.get(trace.TELEMETRY_ENV)
    prev_enabled = trace.enabled()
    _dir = path
    os.environ[trace.TELEMETRY_ENV] = path
    trace.enable(True)
    # The process-global registry is cumulative across a process's
    # lifetime; a scope's metrics shard must carry only the movement
    # that happened inside it (several scopes can run per process,
    # e.g. back-to-back campaigns in one test session).
    entry_snapshot = GLOBAL.snapshot()
    try:
        yield path
    finally:
        flush_spans()
        flush_metrics(GLOBAL.delta(entry_snapshot))
        _dir = prev_dir
        if prev_env is None:
            os.environ.pop(trace.TELEMETRY_ENV, None)
        else:
            os.environ[trace.TELEMETRY_ENV] = prev_env
        trace.enable(prev_enabled)


def maybe_init_worker():
    """Adopt the telemetry directory exported by the campaign parent.

    Called at the top of every pool-worker work item; a cheap no-op
    when telemetry is off.  Handles both start methods: under spawn the
    module state is fresh, under fork it is inherited but the tracer's
    pid check discards the parent's buffered spans.
    """
    global _dir
    path = os.environ.get(trace.TELEMETRY_ENV)
    if not path:
        return False
    _dir = path
    trace.maybe_enable_from_env()
    return True


def _write_shard(lines, stem):
    """Atomically write one new shard file; never appends."""
    global _seq
    if _dir is None or not lines:
        return None
    _seq += 1
    name = "%s-%d-%06d.jsonl" % (stem, os.getpid(), _seq)
    payload = "".join(
        json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"
        for line in lines
    )
    fd, tmp = tempfile.mkstemp(dir=_dir, prefix=".tmp-" + stem)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        target = os.path.join(_dir, name)
        os.replace(tmp, target)
        return target
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def mark_open(name, label):
    """Immediately shard an *open marker* for a span that is about to
    start.

    Spans only land in the buffer when they close, so a worker that
    crashes (or is killed) mid-unit leaves no trace of the unit at
    all.  The scheduler writes one open marker per unit *before*
    execution; the report matches markers against finished ``unit``
    spans and surfaces the unmatched ones as explicit ``incomplete``
    rows instead of silently dropping them.
    """
    if _dir is None:
        return None
    import time

    return _write_shard(
        [{"kind": "open", "name": name, "label": label,
          "ts": time.time(), "pid": os.getpid()}],
        "opens",
    )


def read_opens(path):
    """All open markers under a telemetry directory, in deterministic
    order (``read_shards`` skips them; this is the dedicated reader)."""
    opens = []
    path = os.fspath(path)
    try:
        names = sorted(os.listdir(path))
    except FileNotFoundError:
        return opens
    for name in names:
        if not name.endswith(".jsonl") or name.startswith("."):
            continue
        with open(os.path.join(path, name)) as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                line = json.loads(raw)
                if line.get("kind") == "open":
                    opens.append(line)
    opens.sort(key=_span_order)
    return opens


def flush_spans():
    """Drain the tracer's buffer into a fresh span shard."""
    if _dir is None:
        return None
    spans = trace.drain()
    if not spans:
        return None
    for item in spans:
        item["kind"] = "span"
    return _write_shard(spans, "spans")


def flush_metrics(registry):
    """Write one registry snapshot (or delta dict) as a metrics shard."""
    if _dir is None:
        return None
    snap = registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    if not snap.get("counters") and not snap.get("histograms"):
        return None
    return _write_shard([{"kind": "metrics", "data": snap}], "metrics")


def read_shards(path):
    """Load every shard under a telemetry directory.

    Returns ``(spans, metrics)`` where spans is a list of span dicts in
    deterministic order and metrics is one merged
    :class:`MetricsRegistry` — shard file order never affects either.
    """
    spans = []
    metrics = MetricsRegistry()
    path = os.fspath(path)
    try:
        names = sorted(os.listdir(path))
    except FileNotFoundError:
        return spans, metrics
    for name in names:
        if not name.endswith(".jsonl") or name.startswith("."):
            continue
        with open(os.path.join(path, name)) as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                line = json.loads(raw)
                kind = line.get("kind")
                if kind == "span":
                    line.pop("kind", None)
                    spans.append(line)
                elif kind == "metrics":
                    metrics.absorb(line.get("data", {}))
    spans.sort(key=_span_order)
    return spans, metrics


def _span_order(item):
    """Total order over spans making merged output deterministic."""
    return (item.get("ts", 0.0), item.get("pid", 0), item.get("sid", 0))


def merged_bytes(path):
    """The merged telemetry as deterministic JSONL bytes.

    Reading shards in any order yields identical bytes, the property
    the merge tests pin (same discipline as ``CoverageDB.dumps``).
    """
    spans, metrics = read_shards(path)
    lines = [
        json.dumps({"kind": "span", **item}, sort_keys=True, separators=(",", ":"))
        for item in spans
    ]
    snap = metrics.snapshot()
    if snap["counters"] or snap["histograms"]:
        lines.append(json.dumps({"kind": "metrics", "data": snap},
                                sort_keys=True, separators=(",", ":")))
    return ("\n".join(lines) + "\n").encode() if lines else b""


def write_merged(path, out_path):
    """Merge all shards under ``path`` into one JSONL file (atomic)."""
    payload = merged_bytes(path)
    out_path = os.fspath(out_path)
    out_dir = os.path.dirname(out_path) or "."
    os.makedirs(out_dir, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out_dir, prefix=".tmp-merged")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, out_path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return out_path

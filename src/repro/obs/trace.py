"""Structured span tracing for campaign execution.

One process-local tracer records *spans* — named, nested wall-time
intervals — into a bounded ring buffer.  The execution layers wrap
their phases (``campaign`` → ``unit`` → ``attempt`` → ``parse`` /
``elaborate`` / ``compile`` / ``simulate`` / ``repair-llm`` /
``cache-read`` / ``cache-write``; fuzz units wrap ``generate`` /
``oracle-check`` / ``shrink``), so a telemetry-enabled run can answer
"where did the wall time actually go" per work unit and per phase.

Design constraints, in order:

- **Strictly zero-cost when disabled.**  ``span()`` is one module
  attribute test returning a shared no-op context manager; no objects
  are allocated, no clocks are read.  Tracing is therefore safe to
  leave wired through every hot-ish layer (one span per UVM run, per
  compile, per cache access — never per simulation delta).
- **Process-local and fork-safe.**  Each worker process owns its own
  ring buffer; a forked child detects the pid change and drops the
  spans it inherited from the parent so nothing is double-flushed.
- **Sidecar-only.**  Span data never reaches ``cache_key()`` or cached
  records — timing lives exclusively in telemetry shards (see
  :mod:`repro.obs.sink`), so cached campaign records are bit-identical
  with telemetry on or off.

Nesting is tracked through a :mod:`contextvars` variable, so spans
stay correctly parented under asyncio or thread-switching callers.
"""

import contextvars
import os
import time

#: Environment variable carrying the telemetry shard directory to pool
#: workers (the scheduler exports it before the pool spawns, exactly
#: like ``REPRO_COMPILE_CACHE``).  A non-empty value also means
#: "tracing on" in worker processes.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Ring-buffer bound: oldest spans are dropped past this (a campaign
#: flushes per executed unit, so the bound only matters for pathological
#: single-unit span storms).
RING_LIMIT = 65536

_enabled = False
_buffer = []
_owner_pid = os.getpid()
_next_sid = 1
#: Wall-clock anchor: ``ts = _base_wall + (perf_counter - _base_perf)``
#: gives cross-process-alignable timestamps without a syscall per span.
_base_wall = time.time()
_base_perf = time.perf_counter()

_current = contextvars.ContextVar("repro-obs-current-span", default=None)


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


_NOOP = _NoopSpan()


class Span:
    """One live (or finished) span."""

    __slots__ = ("name", "cat", "sid", "parent", "start", "duration",
                 "attrs", "_token")

    def __init__(self, name, cat, attrs):
        self.name = name
        self.cat = cat
        self.sid = 0
        self.parent = 0
        self.start = 0.0
        self.duration = 0.0
        self.attrs = attrs
        self._token = None

    def set(self, **attrs):
        """Attach/overwrite attributes on the live span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        global _next_sid
        _fork_check()
        self.sid = _next_sid
        _next_sid += 1
        parent = _current.get()
        self.parent = parent.sid if parent is not None else 0
        self._token = _current.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = time.perf_counter() - self.start
        if self._token is not None:
            _current.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if len(_buffer) < RING_LIMIT:
            _buffer.append(self)
        else:
            _buffer[:RING_LIMIT // 2] = []
            _buffer.append(self)
        return False

    def to_dict(self):
        """JSON-pure shard line for :mod:`repro.obs.sink`."""
        return {
            "name": self.name,
            "cat": self.cat,
            "sid": self.sid,
            "parent": self.parent,
            "pid": _owner_pid,
            "ts": _base_wall + (self.start - _base_perf),
            "dur": self.duration,
            "attrs": self.attrs,
        }


def span(name, cat="phase", **attrs):
    """A context manager timing one named phase.

    The disabled path returns a shared no-op object — callers never
    branch on :func:`enabled` themselves.
    """
    if not _enabled:
        return _NOOP
    return Span(name, cat, attrs)


def enabled():
    return _enabled


def enable(on=True):
    """Turn span recording on (or off with ``on=False``)."""
    global _enabled
    _fork_check()
    _enabled = bool(on)
    return _enabled


def disable():
    enable(False)


def maybe_enable_from_env():
    """Worker-process hook: turn tracing on when the campaign parent
    exported a telemetry directory (no-op otherwise, and cheap enough
    to call per work unit)."""
    if not _enabled and os.environ.get(TELEMETRY_ENV):
        enable(True)
    return _enabled


def drain():
    """Pop and return every finished span recorded so far (dicts)."""
    global _buffer
    _fork_check()
    spans, _buffer = _buffer, []
    return [item.to_dict() for item in spans]


def finished():
    """A non-destructive view of the buffered spans (tests use this)."""
    _fork_check()
    return [item.to_dict() for item in _buffer]


def reset():
    """Drop all buffered spans and disable tracing (tests use this)."""
    global _enabled, _buffer, _next_sid
    _enabled = False
    _buffer = []
    _next_sid = 1
    _current.set(None)


def _fork_check():
    """Drop state inherited through ``fork()``: a pool worker must not
    re-flush spans its parent recorded before the pool spawned."""
    global _owner_pid, _buffer, _base_wall, _base_perf
    pid = os.getpid()
    if pid != _owner_pid:
        _owner_pid = pid
        _buffer = []
        _current.set(None)
        _base_wall = time.time()
        _base_perf = time.perf_counter()

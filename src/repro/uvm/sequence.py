"""Sequences: transaction generators.

The paper's "flexible test modes" come from composing these: a reset
burst, directed corner cases, then constrained-random traffic.  All
randomness is seeded so every UVLLM run is reproducible.
"""

import random

from repro.uvm.transaction import Transaction


class Sequence:
    """Base sequence: iterable of :class:`Transaction`."""

    name = "sequence"

    def items(self):
        """Yield transactions.  Subclasses override."""
        raise NotImplementedError

    def __iter__(self):
        return iter(self.items())


class DirectedSequence(Sequence):
    """A fixed, hand-written list of transactions (directed test)."""

    name = "directed"

    def __init__(self, transactions):
        self.transactions = list(transactions)

    def items(self):
        for txn in self.transactions:
            yield txn.copy()


class RandomSequence(Sequence):
    """Constrained-random stimulus.

    ``field_ranges`` maps input names to ``(lo, hi)`` inclusive integer
    range *tuples*, or a *list* of explicit choices.

    ``corner_weight`` contract: per field, per transaction, with
    probability ``corner_weight`` the draw is a *corner* draw instead
    of a uniform one.  For a ``(lo, hi)`` range the corners are ``lo``
    and ``hi``; for an explicit choice list they are its first and
    last element (list order is the author's corner ordering, so e.g.
    a mode list can place its rare modes at the ends).  Single-element
    choice lists have no corner roll.  Real verification environments
    bias toward corners because that is where off-by-one and
    saturation defects live.
    """

    name = "random"

    def __init__(self, field_ranges, count, seed=0, corner_weight=0.15,
                 hold_cycles=1):
        self.field_ranges = dict(field_ranges)
        self.count = count
        self.seed = seed
        self.corner_weight = corner_weight
        self.hold_cycles = hold_cycles

    def items(self):
        rng = random.Random(self.seed)
        for _ in range(self.count):
            fields = {}
            for name, spec in self.field_ranges.items():
                if isinstance(spec, tuple) and len(spec) == 2 and \
                        all(isinstance(v, int) for v in spec):
                    lo, hi = spec
                    if rng.random() < self.corner_weight:
                        fields[name] = rng.choice([lo, hi])
                    else:
                        fields[name] = rng.randint(lo, hi)
                else:
                    choices = list(spec)
                    if len(choices) > 1 and \
                            rng.random() < self.corner_weight:
                        fields[name] = rng.choice(
                            [choices[0], choices[-1]]
                        )
                    else:
                        fields[name] = rng.choice(choices)
            yield Transaction(fields, hold_cycles=self.hold_cycles)


class ResetSequence(Sequence):
    """Holds reset asserted for ``cycles`` transactions.

    The driver recognises the ``reset`` meta flag and asserts the DUT's
    reset pin; the scoreboard still checks outputs so reset-polarity
    bugs (a classic "value misuse") are caught.
    """

    name = "reset"

    def __init__(self, cycles=2, fields=None, glitch=False):
        self.cycles = cycles
        self.fields = dict(fields or {})
        self.glitch = glitch

    def items(self):
        for _ in range(self.cycles):
            meta = {"reset": True}
            if self.glitch:
                meta["reset_glitch"] = True
            yield Transaction(self.fields, meta=meta)


class ConcatSequence(Sequence):
    """Runs several sequences back to back."""

    name = "concat"

    def __init__(self, *sequences):
        self.sequences = list(sequences)

    def items(self):
        for sequence in self.sequences:
            yield from sequence.items()

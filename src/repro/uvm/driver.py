"""The driver: pin-level stimulus application."""

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class DriveProtocol:
    """How transactions map onto DUT pins.

    - ``clock`` — clock pin name, or ``None`` for pure combinational DUTs;
    - ``reset`` — reset pin name (``None`` if the DUT has no reset);
    - ``reset_active_low`` — polarity of the reset pin;
    - ``sample_after_edge`` — sample outputs after the clock edge
      (registered outputs) vs after input settle (combinational);
    - ``default_inputs`` — values for pins a transaction leaves unset.
    """

    clock: Optional[str] = "clk"
    reset: Optional[str] = "rst_n"
    reset_active_low: bool = True
    sample_after_edge: bool = True
    default_inputs: dict = field(default_factory=dict)

    @property
    def is_clocked(self):
        return self.clock is not None

    def reset_assert_value(self):
        return 0 if self.reset_active_low else 1

    def reset_release_value(self):
        return 1 if self.reset_active_low else 0


class Driver:
    """Translates transactions into simulator pin activity.

    For clocked DUTs each transaction occupies ``hold_cycles`` clock
    cycles: inputs are applied, the clock rises, and the monitor samples
    after the edge.  For combinational DUTs inputs are applied and the
    design settles before sampling.
    """

    def __init__(self, simulator, protocol):
        self.sim = simulator
        self.protocol = protocol
        self.driven = 0

    def apply_reset(self, cycles=2):
        """Pulse reset before a test (and settle the DUT)."""
        protocol = self.protocol
        if protocol.reset is None:
            return
        for name, value in protocol.default_inputs.items():
            self.sim.poke(name, value)
        if protocol.is_clocked:
            self.sim.poke(protocol.clock, 0)
        self.sim.set(protocol.reset, protocol.reset_assert_value())
        if protocol.is_clocked:
            self.sim.tick(protocol.clock, cycles=cycles)
        else:
            self.sim.step_time(10 * cycles)
        self.sim.set(protocol.reset, protocol.reset_release_value())

    def drive(self, txn, sample_hook):
        """Drive one transaction; call ``sample_hook(txn, cycle)`` at each
        sample point."""
        protocol = self.protocol
        if txn.meta.get("reset_glitch") and protocol.reset is not None:
            # Asynchronous reset pulse with NO clock edge: only a true
            # async reset reacts — this is what exposes wrong-sensitivity
            # defects (a synchronous-ified reset never sees the pulse).
            self.sim.set(protocol.reset, protocol.reset_assert_value())
            self.sim.step_time(10)
            sample_hook(txn, 0)
            self.sim.set(protocol.reset, protocol.reset_release_value())
            self.driven += 1
            return
        in_reset = bool(txn.meta.get("reset"))
        if protocol.reset is not None:
            value = (
                protocol.reset_assert_value() if in_reset
                else protocol.reset_release_value()
            )
            self.sim.poke(protocol.reset, value)
        for name, value in protocol.default_inputs.items():
            if name not in txn:
                self.sim.poke(name, value)
        for name, value in txn.items():
            self.sim.poke(name, value)
        self.sim.settle()
        self.driven += 1

        if not protocol.is_clocked:
            self.sim.step_time(10)
            sample_hook(txn, 0)
            return

        for cycle in range(txn.hold_cycles):
            self.sim.set(protocol.clock, 1)
            self.sim.step_time(5)
            if protocol.sample_after_edge:
                sample_hook(txn, cycle)
            self.sim.set(protocol.clock, 0)
            self.sim.step_time(5)
            if not protocol.sample_after_edge:
                sample_hook(txn, cycle)

"""Functional coverage collection.

A light covergroup model: each :class:`CoverPoint` defines bins over one
signal; the :class:`Coverage` collector samples alongside the monitor.
The paper leans on UVM's "efficient coverage collection" to claim that
*all* injected errors are actually triggered — the experiments assert
near-100% coverage of the stimulus bins before trusting a pass.
"""

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class CoverPoint:
    """Bins over one signal's sampled values."""

    signal: str
    bins: List[Tuple[int, int]]  # inclusive (lo, hi) ranges
    hits: dict = field(default_factory=dict)

    @staticmethod
    def auto(signal, width, bin_count=4):
        """Quartile bins over the signal's value range + corner bins."""
        top = (1 << width) - 1
        if top < bin_count:
            bins = [(v, v) for v in range(top + 1)]
        else:
            step = (top + 1) // bin_count
            bins = [
                (i * step, (top if i == bin_count - 1 else (i + 1) * step - 1))
                for i in range(bin_count)
            ]
            bins.append((0, 0))
            bins.append((top, top))
        return CoverPoint(signal=signal, bins=bins)

    def sample(self, value):
        for index, (lo, hi) in enumerate(self.bins):
            if lo <= value <= hi:
                self.hits[index] = self.hits.get(index, 0) + 1

    @property
    def covered(self):
        return len(self.hits)

    @property
    def total(self):
        return len(self.bins)

    @property
    def coverage(self):
        if not self.bins:
            return 1.0
        return self.covered / self.total


class Coverage:
    """A covergroup: a set of coverpoints sampled together."""

    def __init__(self, points=None):
        self.points = list(points or [])

    def add_point(self, point):
        self.points.append(point)

    def sample(self, values):
        """Sample all points from a {signal: int-or-Value} dict."""
        for point in self.points:
            value = values.get(point.signal)
            if value is None:
                continue
            if hasattr(value, "has_x"):
                if value.has_x:
                    continue
                value = value.to_int()
            point.sample(value)

    @property
    def coverage(self):
        """Aggregate coverage in [0, 1]."""
        if not self.points:
            return 1.0
        return sum(p.coverage for p in self.points) / len(self.points)

    def report(self):
        lines = []
        for point in self.points:
            lines.append(
                f"coverpoint {point.signal}: {point.covered}/{point.total} "
                f"bins ({100.0 * point.coverage:.1f}%)"
            )
        lines.append(f"TOTAL: {100.0 * self.coverage:.1f}%")
        return "\n".join(lines)

"""Functional coverage collection.

A light covergroup model: each :class:`CoverPoint` defines bins over one
signal; the :class:`Coverage` collector samples alongside the monitor.
The paper leans on UVM's "efficient coverage collection" to claim that
*all* injected errors are actually triggered — the experiments assert
near-100% coverage of the stimulus bins before trusting a pass.
"""

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class CoverPoint:
    """Bins over one signal's sampled values."""

    signal: str
    bins: List[Tuple[int, int]]  # inclusive (lo, hi) ranges
    hits: dict = field(default_factory=dict)

    @staticmethod
    def auto(signal, width, bin_count=4):
        """Quartile bins over the signal's value range + corner bins.

        Bins are pairwise disjoint: the first/last quartiles are
        trimmed so the dedicated ``(0, 0)`` / ``(top, top)`` corner
        bins never overlap them (an overlapping sample used to
        increment several bins at once and inflate ``covered``).
        Corner bins are still added whenever ``top >= bin_count``;
        below that every value already gets its own bin.
        """
        top = (1 << width) - 1
        if top < bin_count:
            bins = [(v, v) for v in range(top + 1)]
        else:
            bins = CoverPoint.range_bins(0, top, bin_count)
        return CoverPoint(signal=signal, bins=bins)

    @staticmethod
    def range_bins(lo, hi, bin_count=4):
        """Disjoint equal-ish bins over ``[lo, hi]`` plus corner bins.

        The interior bins are trimmed by one value at each end so the
        single-value corner bins stay disjoint; degenerate (empty)
        interior bins are dropped.
        """
        if hi <= lo:
            return [(lo, lo)]
        span = hi - lo + 1
        if span <= bin_count + 2:
            return [(v, v) for v in range(lo, hi + 1)]
        step = span // bin_count
        bins = []
        for i in range(bin_count):
            b_lo = lo + i * step
            b_hi = hi if i == bin_count - 1 else lo + (i + 1) * step - 1
            if i == 0:
                b_lo = max(b_lo, lo + 1)
            if i == bin_count - 1:
                b_hi = min(b_hi, hi - 1)
            if b_lo <= b_hi:
                bins.append((b_lo, b_hi))
        return [(lo, lo)] + bins + [(hi, hi)]

    def sample(self, value):
        index = self.bin_index(value)
        if index is not None:
            self.hits[index] = self.hits.get(index, 0) + 1
        return index

    def bin_index(self, value):
        """Index of the (first) bin containing ``value``, or ``None``."""
        for index, (lo, hi) in enumerate(self.bins):
            if lo <= value <= hi:
                return index
        return None

    @property
    def covered(self):
        return len(self.hits)

    @property
    def total(self):
        return len(self.bins)

    @property
    def coverage(self):
        if not self.bins:
            return 1.0
        return self.covered / self.total


class Coverage:
    """A covergroup: a set of coverpoints sampled together."""

    def __init__(self, points=None):
        self.points = list(points or [])

    def add_point(self, point):
        self.points.append(point)

    def sample(self, values):
        """Sample all points from a {signal: int-or-Value} dict."""
        for point in self.points:
            value = values.get(point.signal)
            if value is None:
                continue
            if hasattr(value, "has_x"):
                if value.has_x:
                    continue
                value = value.to_int()
            point.sample(value)

    @property
    def coverage(self):
        """Aggregate coverage in [0, 1]."""
        if not self.points:
            return 1.0
        return sum(p.coverage for p in self.points) / len(self.points)

    def report(self):
        lines = []
        for point in self.points:
            lines.append(
                f"coverpoint {point.signal}: {point.covered}/{point.total} "
                f"bins ({100.0 * point.coverage:.1f}%)"
            )
        lines.append(f"TOTAL: {100.0 * self.coverage:.1f}%")
        return "\n".join(lines)

"""The scoreboard: reference-vs-DUT comparison and the pass-rate score.

The pass rate this component computes is the quantity UVLLM's rollback
mechanism registers after every iteration ("Score Reg." in Fig. 2): a
candidate repair that lowers the score is reverted and recorded as a
damage repair.
"""

from dataclasses import dataclass
from typing import Optional

from repro.sim.values import Value
from repro.uvm.log import UVMLog


@dataclass
class MismatchRecord:
    """One signal-level mismatch (feeds Algorithm 2)."""

    time: int
    txn_id: int
    signal: str
    expected: Value
    actual: Value
    inputs: dict


class Scoreboard:
    """Compares monitored outputs against the reference model.

    ``compare_signals`` restricts checking to specific outputs (some
    modules expose debug outputs the spec doesn't constrain).  x-valued
    expectations (``None`` from the reference model) are don't-cares.
    """

    def __init__(self, reference_model, compare_signals, log=None):
        self.model = reference_model
        self.compare_signals = list(compare_signals)
        self.log = log if log is not None else UVMLog()
        self.checked = 0
        self.passed = 0
        self.mismatches = []

    def reset(self):
        if hasattr(self.model, "reset"):
            self.model.reset()

    def check(self, txn, cycle, time, observed):
        """Score one sample point.

        The reference model's ``step(inputs, cycle)`` returns the
        expected output dict for this cycle; ``None`` values (or missing
        keys) are don't-cares, matching how UVM scoreboards skip
        unpredicted fields.
        """
        in_reset = bool(txn.meta.get("reset"))
        expected = self.model.step(dict(txn.fields), reset=in_reset)
        self.checked += 1
        txn_pass = True
        for signal in self.compare_signals:
            want = expected.get(signal)
            if want is None:
                continue
            got = observed.get(signal)
            if got is None:
                continue
            if isinstance(want, Value):
                want_value = want
            else:
                # Keep the model's full-precision expectation: a DUT
                # whose output port was narrowed by a width bug still
                # logs the untruncated expected value, which is what
                # lets the localization engine spot truncation.
                want_width = max(got.width, max(1, int(want).bit_length()))
                want_value = Value(int(want), want_width)
            # Compare zero-extended at the wider width: an expected
            # value that does not fit the DUT's (possibly narrowed)
            # port IS a mismatch, not a don't-care.
            if got.has_x or got.bits != want_value.bits:
                txn_pass = False
                self.mismatches.append(
                    MismatchRecord(
                        time=time,
                        txn_id=txn.txn_id,
                        signal=signal,
                        expected=want_value,
                        actual=got,
                        inputs=dict(txn.fields),
                    )
                )
                self.log.error(
                    time, "SCOREBOARD",
                    f"mismatch signal '{signal}' expected "
                    f"{want_value.to_display()} actual "
                    f"{got.to_display()}",
                    signal=signal,
                    expected=want_value.to_display(),
                    actual=got.to_display(),
                    txn_id=txn.txn_id,
                )
        if txn_pass:
            self.passed += 1
            self.log.info(
                time, "SCOREBOARD", f"txn {txn.txn_id} PASS",
                txn_id=txn.txn_id,
            )

    @property
    def pass_rate(self):
        """Fraction of sample points with all signals matching."""
        if self.checked == 0:
            return 0.0
        return self.passed / self.checked

    @property
    def mismatch_signals(self):
        """Distinct mismatching signal names, in first-seen order."""
        seen = []
        for record in self.mismatches:
            if record.signal not in seen:
                seen.append(record.signal)
        return seen

"""The environment: agent + scoreboard + coverage wiring."""

from repro.uvm.agent import Agent
from repro.uvm.coverage import Coverage, CoverPoint
from repro.uvm.scoreboard import Scoreboard


class Environment:
    """Builds and connects all verification components for one DUT run."""

    def __init__(self, simulator, sequence, protocol, reference_model,
                 compare_signals, coverage=None, log=None):
        self.sim = simulator
        self.agent = Agent(simulator, sequence, protocol, compare_signals)
        self.scoreboard = Scoreboard(reference_model, compare_signals, log)
        if coverage is None:
            coverage = Coverage()
            for name in simulator.input_names():
                if protocol.clock == name or protocol.reset == name:
                    continue
                coverage.add_point(
                    CoverPoint.auto(name, simulator.signal_width(name))
                )
        self.coverage = coverage

    def run(self):
        """Execute the sequence; returns the scoreboard."""
        self.scoreboard.reset()

        def per_sample(txn, cycle, time, observed):
            self.scoreboard.check(txn, cycle, time, observed)
            sample_values = dict(txn.fields)
            self.coverage.sample(sample_values)

        self.agent.run(per_sample)
        return self.scoreboard

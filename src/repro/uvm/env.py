"""The environment: agent + scoreboard + coverage wiring."""

from repro.uvm.agent import Agent
from repro.uvm.coverage import Coverage, CoverPoint
from repro.uvm.scoreboard import Scoreboard


class Environment:
    """Builds and connects all verification components for one DUT run.

    ``coverage`` accepts the flat :class:`~repro.uvm.coverage.Coverage`
    collector or a rich :class:`~repro.cover.model.CoverModel`; both
    expose the same ``sample``/``coverage`` surface.  A model that
    declares ``probes`` (DUT-internal signals such as an FSM state
    register) gets them monitored and folded into every sample, which
    is how transition coverage observes state the transaction fields
    never carry.  If the simulator carries a code-coverage collector
    (``make_simulator(code_coverage=True)``), each monitor sample also
    triggers its stable-point comb replay.
    """

    def __init__(self, simulator, sequence, protocol, reference_model,
                 compare_signals, coverage=None, log=None):
        self.sim = simulator
        self.agent = Agent(simulator, sequence, protocol, compare_signals)
        self.scoreboard = Scoreboard(reference_model, compare_signals, log)
        if coverage is None:
            coverage = Coverage()
            for name in simulator.input_names():
                if protocol.clock == name or protocol.reset == name:
                    continue
                coverage.add_point(
                    CoverPoint.auto(name, simulator.signal_width(name))
                )
        self.coverage = coverage
        self.agent.monitor.probes = list(
            getattr(coverage, "probes", ())
        )

    def run(self):
        """Execute the sequence; returns the scoreboard."""
        self.scoreboard.reset()
        if hasattr(self.coverage, "reset_trackers"):
            self.coverage.reset_trackers()
        code_coverage = getattr(self.sim, "code_coverage", None)

        def per_sample(txn, cycle, time, observed):
            self.scoreboard.check(txn, cycle, time, observed)
            sample_values = dict(observed)
            sample_values.update(txn.fields)
            self.coverage.sample(sample_values)
            if code_coverage is not None:
                code_coverage.sample_stable()

        self.agent.run(per_sample)
        return self.scoreboard

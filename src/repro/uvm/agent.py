"""The agent: sequencer + driver + monitor."""

from repro.uvm.driver import Driver
from repro.uvm.monitor import Monitor
from repro.uvm.sequencer import Sequencer


class Agent:
    """Bundles the sequencer, driver and monitor for one interface.

    Mirrors the ``in_agt``/``out_agt`` pairing of Fig. 3: the input side
    (sequencer + driver) stimulates the DUT, the output side (monitor)
    observes it.
    """

    def __init__(self, simulator, sequence, protocol, monitored_signals):
        self.sequencer = Sequencer(sequence)
        self.driver = Driver(simulator, protocol)
        self.monitor = Monitor(simulator, monitored_signals)

    def run(self, per_sample):
        """Run the whole sequence.

        ``per_sample(txn, cycle, time, observed)`` is invoked at every
        sample point with the monitor's observation.
        """
        def hook(txn, cycle):
            time, observed = self.monitor.sample()
            per_sample(txn, cycle, time, observed)

        self.driver.apply_reset()
        for txn in self.sequencer.item_stream():
            self.driver.drive(txn, hook)

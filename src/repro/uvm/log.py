"""UVM log: the textual artifact the localization engine mines.

Entries render in the classic simulator style::

    UVM_INFO @ 125: [SCOREBOARD] txn 12 PASS
    UVM_ERROR @ 135: [SCOREBOARD] mismatch signal 'sum' expected 8'h2d actual 8'h31

Algorithm 2's ``getMismatch(LUVM, PAT_MS)`` is :meth:`UVMLog.mismatches`
— the same regex-style extraction the paper performs on real UVM logs.
"""

import re
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class LogEntry:
    """One log line."""

    severity: str  # UVM_INFO | UVM_WARNING | UVM_ERROR | UVM_FATAL
    time: int
    component: str
    message: str
    signal: Optional[str] = None
    expected: Optional[str] = None
    actual: Optional[str] = None
    txn_id: Optional[int] = None

    def format(self):
        return (
            f"{self.severity} @ {self.time}: [{self.component}] "
            f"{self.message}"
        )


#: The PAT_MS pattern of Algorithm 2: mismatch lines carry the signal
#: name plus expected/actual values.
PAT_MS = re.compile(
    r"UVM_ERROR @ (?P<time>\d+): \[(?P<component>\w+)\] mismatch signal "
    r"'(?P<signal>\w+)' expected (?P<expected>\S+) actual (?P<actual>\S+)"
)


@dataclass
class UVMLog:
    """An in-memory UVM log with text round-tripping."""

    entries: List[LogEntry] = field(default_factory=list)

    def info(self, time, component, message, **kw):
        self.entries.append(LogEntry("UVM_INFO", time, component, message, **kw))

    def warning(self, time, component, message, **kw):
        self.entries.append(
            LogEntry("UVM_WARNING", time, component, message, **kw)
        )

    def error(self, time, component, message, **kw):
        self.entries.append(
            LogEntry("UVM_ERROR", time, component, message, **kw)
        )

    @property
    def error_count(self):
        return sum(1 for e in self.entries if e.severity == "UVM_ERROR")

    def format(self):
        return "\n".join(entry.format() for entry in self.entries)

    def mismatches(self):
        """All mismatch entries (time, signal, expected, actual)."""
        result = []
        for entry in self.entries:
            if entry.severity == "UVM_ERROR" and entry.signal is not None:
                result.append(entry)
        return result

    @staticmethod
    def parse(text):
        """Re-parse a formatted log (PAT_MS extraction from plain text)."""
        log = UVMLog()
        for line in text.splitlines():
            match = PAS_LINE.match(line)
            if match is None:
                continue
            severity = match.group("severity")
            time = int(match.group("time"))
            component = match.group("component")
            message = match.group("message")
            entry = LogEntry(severity, time, component, message)
            mismatch = PAT_MS.match(line)
            if mismatch:
                entry.signal = mismatch.group("signal")
                entry.expected = mismatch.group("expected")
                entry.actual = mismatch.group("actual")
            log.entries.append(entry)
        return log


PAS_LINE = re.compile(
    r"(?P<severity>UVM_\w+) @ (?P<time>\d+): \[(?P<component>\w+)\] "
    r"(?P<message>.*)"
)

"""The sequencer: arbitration between sequences and the driver."""


class Sequencer:
    """Feeds transactions from a sequence to the driver.

    In SystemVerilog UVM the sequencer arbitrates between competing
    sequences; here a single in-order stream suffices, but the component
    is kept so the agent wiring matches Fig. 3 and so tests can insert
    recording/filtering hooks.
    """

    def __init__(self, sequence):
        self.sequence = sequence
        self.issued = 0
        self._recorded = []

    def item_stream(self):
        """Yield transactions, recording each one issued."""
        for txn in self.sequence:
            self.issued += 1
            self._recorded.append(txn)
            yield txn

    @property
    def history(self):
        """All transactions issued so far (for replay/debug)."""
        return list(self._recorded)

"""Top-level UVM test execution.

``run_uvm_test`` is UVLLM's "UVM Processing" stage (Fig. 2, step 2): it
elaborates the DUT, runs the environment, and returns a
:class:`TestResult` carrying the pass rate (the Score Reg. input), the
UVM log, the mismatch records, and the waveform trace that the
localization engine slices.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import trace
from repro.sim.backend import make_simulator
from repro.sim.compile.xcheck import XCheckDivergence
from repro.sim.engine import SimulationError, Simulator
from repro.hdl.errors import HdlError
from repro.uvm.env import Environment
from repro.uvm.log import UVMLog
from repro.uvm.scoreboard import MismatchRecord


@dataclass
class TestResult:
    """Outcome of one UVM run against one DUT source."""

    ok: bool                     # the run executed (not: the DUT passed)
    pass_rate: float = 0.0
    mismatches: List[MismatchRecord] = field(default_factory=list)
    log: UVMLog = field(default_factory=UVMLog)
    coverage: float = 0.0
    trace: dict = field(default_factory=dict)
    simulator: Optional[Simulator] = None
    error: str = ""
    checked: int = 0
    #: Serialized coverage counters for the coverage database:
    #: ``{"functional": CoverModel.to_dict() | None,
    #:    "code": CodeCoverage.to_dict() | None}``.
    coverage_detail: dict = field(default_factory=dict)
    #: Pin-level op list recorded by a ``record_ops=True`` run — the
    #: replayable stimulus a forensic debug bundle archives.  Never
    #: part of campaign record bytes.
    ops: list = field(default_factory=list)

    @property
    def all_passed(self):
        return self.ok and self.checked > 0 and not self.mismatches

    @property
    def mismatch_signals(self):
        seen = []
        for record in self.mismatches:
            if record.signal not in seen:
                seen.append(record.signal)
        return seen


class UVMTest:
    """A configured test: DUT source + sequence + protocol + ref model.

    ``backend`` selects the simulation backend
    (``interp``/``compiled``/``xcheck``); ``None`` uses the process
    default (see :mod:`repro.sim.backend`), which campaign work units
    scope per unit.

    ``coverage`` overrides the environment's default flat covergroup
    with a rich :class:`~repro.cover.model.CoverModel` (crosses,
    transitions, probes); ``code_coverage=True`` additionally attaches
    a structural :class:`~repro.cover.code.CodeCoverage` collector to
    the simulator.  Both serialize into ``TestResult.coverage_detail``
    for the coverage database.
    """

    def __init__(self, source, sequence, protocol, reference_model,
                 compare_signals, top=None, backend=None, coverage=None,
                 code_coverage=False, record_ops=False):
        self.source = source
        self.sequence = sequence
        self.protocol = protocol
        self.reference_model = reference_model
        self.compare_signals = list(compare_signals)
        self.top = top
        self.backend = backend
        self.coverage = coverage
        self.code_coverage = code_coverage
        # Forensic capture: wrap the simulator in a recording proxy so
        # the driven pin-op sequence comes back in TestResult.ops as a
        # replayable script (off in the hot path).
        self.record_ops = record_ops

    def run(self):
        with trace.span("simulate", cat="uvm") as sp:
            result = self._execute()
            simulator = result.simulator
            if simulator is not None:
                design = getattr(simulator, "design", None)
                sp.set(module=getattr(design, "top_name", "?"),
                       cycles=int(getattr(simulator, "time", 0)) // 10,
                       events=int(getattr(simulator, "event_count", 0)),
                       ok=result.ok)
        return result

    def _execute(self):
        log = UVMLog()
        try:
            simulator = make_simulator(
                self.source, backend=self.backend, top=self.top,
                code_coverage=self.code_coverage,
            )
        except XCheckDivergence:
            raise  # a backend bug, not a DUT failure: surface loudly
        except (HdlError, SimulationError) as exc:
            log.error(0, "ELAB", f"elaboration failed: {exc}")
            # An initial-time SimulationError (combinational loop,
            # runaway deltas) still recorded a partial trace: surface
            # the half-constructed simulator so `simulate --vcd` can
            # flush the waveform up to the abort point.
            partial = getattr(exc, "partial_simulator", None)
            return TestResult(
                ok=False, log=log, error=str(exc),
                trace=getattr(partial, "trace", None) or {},
                simulator=partial,
            )
        if self.record_ops:
            from repro.forensics.replay import RecordingSimulator

            simulator = RecordingSimulator(simulator)
        env = Environment(
            simulator, self.sequence, self.protocol, self.reference_model,
            self.compare_signals, coverage=self.coverage, log=log,
        )
        try:
            scoreboard = env.run()
        except XCheckDivergence:
            raise  # ditto: lockstep divergence must never be swallowed
        except (SimulationError, HdlError) as exc:
            log.error(simulator.time, "SIM", f"simulation failed: {exc}")
            return TestResult(
                ok=False, log=log, error=str(exc),
                trace=simulator.trace, simulator=simulator,
                ops=list(getattr(simulator, "ops", ())),
            )
        return TestResult(
            ok=True,
            pass_rate=scoreboard.pass_rate,
            mismatches=list(scoreboard.mismatches),
            log=log,
            coverage=env.coverage.coverage,
            trace=simulator.trace,
            simulator=simulator,
            checked=scoreboard.checked,
            coverage_detail=self._coverage_detail(env, simulator),
            ops=list(getattr(simulator, "ops", ())),
        )

    @staticmethod
    def _coverage_detail(env, simulator):
        detail = {}
        if hasattr(env.coverage, "to_dict"):
            detail["functional"] = env.coverage.to_dict()
        code_coverage = getattr(simulator, "code_coverage", None)
        if code_coverage is not None:
            detail["code"] = code_coverage.finalize(simulator).to_dict()
        return detail


def run_uvm_test(source, sequence, protocol, reference_model,
                 compare_signals, top=None, backend=None, coverage=None,
                 code_coverage=False, record_ops=False):
    """One-shot convenience wrapper around :class:`UVMTest`."""
    test = UVMTest(
        source, sequence, protocol, reference_model, compare_signals, top,
        backend=backend, coverage=coverage, code_coverage=code_coverage,
        record_ops=record_ops,
    )
    return test.run()

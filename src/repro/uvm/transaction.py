"""Sequence items (transactions)."""

import itertools

_txn_counter = itertools.count()


class Transaction:
    """One stimulus item: a mapping of DUT input fields to values.

    ``hold_cycles`` lets a single transaction occupy several clock
    cycles (e.g. waiting for a divider's ``done``); the driver holds the
    inputs stable for that many cycles while the monitor samples each
    cycle.  ``meta`` carries free-form annotations (e.g. "reset burst").
    """

    __slots__ = ("fields", "txn_id", "hold_cycles", "meta")

    def __init__(self, fields=None, hold_cycles=1, meta=None):
        self.fields = dict(fields or {})
        self.txn_id = next(_txn_counter)
        self.hold_cycles = max(1, hold_cycles)
        self.meta = dict(meta or {})

    def __getitem__(self, key):
        return self.fields[key]

    def get(self, key, default=None):
        return self.fields.get(key, default)

    def __contains__(self, key):
        return key in self.fields

    def items(self):
        return self.fields.items()

    def copy(self):
        clone = Transaction(self.fields, self.hold_cycles, self.meta)
        return clone

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"Transaction#{self.txn_id}({inner})"

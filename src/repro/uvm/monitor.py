"""The monitor: output sampling."""


class Monitor:
    """Samples a set of DUT output signals through the simulator.

    Produces ``(time, {signal: Value})`` observations; the scoreboard
    consumes these and the raw values also feed functional coverage.
    """

    def __init__(self, simulator, signals):
        self.sim = simulator
        self.signals = list(signals)
        self.observations = []

    def sample(self):
        """Take one observation of all monitored signals."""
        values = {name: self.sim.get(name) for name in self.signals}
        observation = (self.sim.time, values)
        self.observations.append(observation)
        return observation

    def last(self):
        return self.observations[-1] if self.observations else None

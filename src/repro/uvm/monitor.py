"""The monitor: output sampling."""


class Monitor:
    """Samples a set of DUT output signals through the simulator.

    Produces ``(time, {signal: Value})`` observations; the scoreboard
    consumes these and the raw values also feed functional coverage.

    ``probes`` names additional DUT-internal signals (e.g. an FSM
    state register) observed for coverage only: they ride along in
    every observation, and the scoreboard ignores them because it
    only compares its ``compare_signals``.
    """

    def __init__(self, simulator, signals, probes=()):
        self.sim = simulator
        self.signals = list(signals)
        self.probes = list(probes)
        self.observations = []

    def sample(self):
        """Take one observation of all monitored signals."""
        values = {name: self.sim.get(name) for name in self.signals}
        for name in self.probes:
            if name not in values:
                values[name] = self.sim.get(name)
        observation = (self.sim.time, values)
        self.observations.append(observation)
        return observation

    def last(self):
        return self.observations[-1] if self.observations else None

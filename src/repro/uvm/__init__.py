"""A Python UVM: the testbench architecture of paper Fig. 3.

Components map 1:1 onto SystemVerilog UVM roles:

- :class:`Transaction` — one stimulus item (input-field assignment);
- :class:`Sequence` and subclasses — transaction generators;
- :class:`Sequencer` — hands sequence items to the driver;
- :class:`Driver` — converts transactions into pin wiggles on the DUT
  through the :class:`repro.sim.Simulator` pin interface;
- :class:`Monitor` — samples DUT outputs at the sample point;
- :class:`Agent` — sequencer + driver + monitor bundle;
- :class:`Scoreboard` — compares DUT outputs against the reference
  model, maintains the pass rate (the rollback "Score Reg."), and emits
  the UVM log that the localization engine mines;
- :class:`Coverage` — functional coverage bins;
- :class:`Environment` / :class:`UVMTest` — top-level orchestration.
"""

from repro.uvm.transaction import Transaction
from repro.uvm.sequence import (
    Sequence,
    DirectedSequence,
    RandomSequence,
    ResetSequence,
    ConcatSequence,
)
from repro.uvm.sequencer import Sequencer
from repro.uvm.driver import Driver, DriveProtocol
from repro.uvm.monitor import Monitor
from repro.uvm.agent import Agent
from repro.uvm.scoreboard import Scoreboard, MismatchRecord
from repro.uvm.coverage import Coverage, CoverPoint
from repro.uvm.log import UVMLog, LogEntry
from repro.uvm.env import Environment
from repro.uvm.test import UVMTest, TestResult, run_uvm_test

__all__ = [
    "Transaction",
    "Sequence",
    "DirectedSequence",
    "RandomSequence",
    "ResetSequence",
    "ConcatSequence",
    "Sequencer",
    "Driver",
    "DriveProtocol",
    "Monitor",
    "Agent",
    "Scoreboard",
    "MismatchRecord",
    "Coverage",
    "CoverPoint",
    "UVMLog",
    "LogEntry",
    "Environment",
    "UVMTest",
    "TestResult",
    "run_uvm_test",
]

"""Lane-packed UVM test execution.

``run_uvm_test_lanes`` runs N seed-varied sequences against ONE DUT as
a single lane batch: one packed ``settle``/``tick`` advances every
lane, per-port ``packed_poker`` closures drive all lanes' stimulus in
one plane commit, and per-port ``reader`` closures extract each lane's
samples without dict lookups (the "fused scoreboard sampling" half).
Scoreboards, coverage collectors and UVM logs stay per lane, so lane
``i``'s :class:`~repro.uvm.test.TestResult` is bit-identical to a
scalar ``run_uvm_test(source, sequences[i], ..., backend="compiled")``
run — the property the campaign's ``--lanes N`` parity gate enforces.

When the sequences do not shape-align (per-row hold cycles or reset
meta differ), the design does not pack, or the packed run raises, the
runner degrades to per-lane scalar runs — bit-identical by
construction, just without the speedup.
"""

from repro.sim.compile.lanes import make_lane_batch
from repro.uvm.coverage import Coverage, CoverPoint
from repro.uvm.log import UVMLog
from repro.uvm.scoreboard import Scoreboard
from repro.uvm.test import run_uvm_test


class LaneSimView:
    """Read-only per-lane stand-in for ``TestResult.simulator``.

    Exposes what downstream consumers use — ``time``, ``event_count``,
    the value-change ``trace``, and ``get``/``signal_width`` — without
    pretending to be a drivable simulator.
    """

    def __init__(self, batch, lane):
        self.time = batch.lane_time(lane)
        self.event_count = batch.lane_event_count(lane)
        self.trace = batch.traces[lane]
        self._batch = batch
        self._lane = lane

    def get(self, name):
        return self._batch.get(name, self._lane)

    def signal_width(self, name):
        return self._batch.signal_width(name)


def _aligned(streams):
    """Sequences pack only when every present row agrees on hold
    cycles and reset meta across lanes (field *values* may differ —
    that is the point)."""
    longest = max(streams, key=len)
    for stream in streams:
        for txn, ref in zip(stream, longest):
            if txn.hold_cycles != ref.hold_cycles:
                return False
            if bool(txn.meta.get("reset")) != bool(ref.meta.get("reset")):
                return False
            if bool(txn.meta.get("reset_glitch")) != \
                    bool(ref.meta.get("reset_glitch")):
                return False
    return True


def _scalar_fallback(source, streams, protocol, model_factory,
                     compare_signals, top, coverage_factory, reason):
    results = [
        run_uvm_test(
            source, stream, protocol, model_factory(), compare_signals,
            top=top, backend="compiled",
            coverage=coverage_factory() if coverage_factory else None,
        )
        for stream in streams
    ]
    return results, {"lanes": len(streams), "packed": False,
                     "demotion": reason,
                     "demotion_reasons": (reason,) if reason else ()}


def run_uvm_test_lanes(source, sequences, protocol, model_factory,
                       compare_signals, top=None, coverage_factory=None):
    """Run ``len(sequences)`` UVM tests of one DUT as a lane batch.

    ``model_factory``/``coverage_factory`` are zero-argument callables
    producing a *fresh* reference model / coverage collector per lane
    (reference models are stateful).  Returns ``(results, info)`` where
    ``results[i]`` corresponds to ``sequences[i]`` and ``info`` reports
    ``{"lanes", "packed", "demotion", "demotion_reasons"}`` for the
    campaign's lane-batch counters (``demotion_reasons`` is the full
    deduped set the summary string abbreviates).
    """
    streams = [list(sequence) for sequence in sequences]
    lanes = len(streams)
    if not streams or not max(len(s) for s in streams):
        return _scalar_fallback(source, streams, protocol, model_factory,
                                compare_signals, top, coverage_factory,
                                "empty sequence")
    if not _aligned(streams):
        return _scalar_fallback(source, streams, protocol, model_factory,
                                compare_signals, top, coverage_factory,
                                "sequences not shape-aligned")
    try:
        batch = make_lane_batch(source, lanes, trace=True, top=top)
    except Exception as exc:
        # Elaboration/codegen failures must mirror the scalar path's
        # per-lane error results exactly — re-run scalar, which
        # reproduces the identical failure per lane.
        return _scalar_fallback(source, streams, protocol, model_factory,
                                compare_signals, top, coverage_factory,
                                f"construction failed: {exc}")
    try:
        results = _run_batch(batch, streams, protocol, model_factory,
                             compare_signals, coverage_factory)
    except Exception as exc:
        # A mid-run failure leaves the batch's lanes entangled with
        # shared scheduling state; discard and replay every lane
        # scalar so errors land exactly where the scalar run puts
        # them.
        return _scalar_fallback(source, streams, protocol, model_factory,
                                compare_signals, top, coverage_factory,
                                f"packed run failed: {exc}")
    return results, {"lanes": lanes, "packed": bool(batch.packed),
                     "demotion": batch.demotion,
                     "demotion_reasons": tuple(
                         getattr(batch, "demotion_reasons", ()) or
                         ((batch.demotion,) if batch.demotion else ())
                     )}


def _run_batch(batch, streams, protocol, model_factory, compare_signals,
               coverage_factory):
    from repro.uvm.test import TestResult

    lanes = len(streams)
    length = max(len(s) for s in streams)
    logs = [UVMLog() for _ in range(lanes)]
    scoreboards = [
        Scoreboard(model_factory(), compare_signals, logs[lane])
        for lane in range(lanes)
    ]
    if coverage_factory is not None:
        coverages = [coverage_factory() for _ in range(lanes)]
    else:
        coverages = []
        for _ in range(lanes):
            coverage = Coverage()
            for name in batch.input_names():
                if name in (protocol.clock, protocol.reset):
                    continue
                coverage.add_point(
                    CoverPoint.auto(name, batch.signal_width(name)))
            coverages.append(coverage)
    probes = list(getattr(coverages[0], "probes", ()))
    monitored = list(compare_signals) + [
        name for name in probes if name not in compare_signals
    ]
    readers = [batch.reader(name) for name in monitored]

    pokers = {}

    def pk(name):
        fn = pokers.get(name)
        if fn is None:
            fn = pokers[name] = batch.packed_poker(name)
        return fn

    for scoreboard in scoreboards:
        scoreboard.reset()
    for coverage in coverages:
        if hasattr(coverage, "reset_trackers"):
            coverage.reset_trackers()

    def sample(rows, cycle):
        """Fused scoreboard sampling: one pass over the reader
        closures per active lane — no name lookups on the hot path."""
        for lane, txn in enumerate(rows):
            if txn is None:
                continue
            time = batch.lane_time(lane)
            observed = {}
            for name, reader in zip(monitored, readers):
                observed[name] = reader(lane)
            scoreboards[lane].check(txn, cycle, time, observed)
            sample_values = dict(observed)
            sample_values.update(txn.fields)
            coverages[lane].sample(sample_values)

    # -- reset (Driver.apply_reset, lane-wide) ------------------------------
    if protocol.reset is not None:
        for name, value in protocol.default_inputs.items():
            pk(name)([value] * lanes)
        if protocol.is_clocked:
            pk(protocol.clock)([0] * lanes)
        pk(protocol.reset)([protocol.reset_assert_value()] * lanes)
        batch.settle()
        if protocol.is_clocked:
            batch.tick(protocol.clock, cycles=2)
        else:
            batch.step_time(20)
        pk(protocol.reset)([protocol.reset_release_value()] * lanes)
        batch.settle()

    # -- sequence (Driver.drive, row by row across lanes) -------------------
    defaults = protocol.default_inputs
    for row in range(length):
        rows = [stream[row] if row < len(stream) else None
                for stream in streams]
        for lane, txn in enumerate(rows):
            if txn is None and row == len(streams[lane]):
                batch.stop_lane(lane)
        shape = next(txn for txn in rows if txn is not None)

        if shape.meta.get("reset_glitch") and protocol.reset is not None:
            # Async reset pulse with no clock edge (see Driver.drive).
            level = protocol.reset_assert_value()
            pk(protocol.reset)(
                [level if txn is not None else None for txn in rows])
            batch.settle()
            batch.step_time(10)
            sample(rows, 0)
            level = protocol.reset_release_value()
            pk(protocol.reset)(
                [level if txn is not None else None for txn in rows])
            batch.settle()
            continue

        if protocol.reset is not None:
            in_reset = bool(shape.meta.get("reset"))
            level = (protocol.reset_assert_value() if in_reset
                     else protocol.reset_release_value())
            pk(protocol.reset)(
                [level if txn is not None else None for txn in rows])
        names = set(defaults)
        for txn in rows:
            if txn is not None:
                names.update(txn.fields)
        for name in sorted(names):
            default = defaults.get(name)
            values = []
            for txn in rows:
                if txn is None:
                    values.append(None)
                elif name in txn:
                    values.append(txn.fields[name])
                else:
                    values.append(default)
            pk(name)(values)
        batch.settle()

        if not protocol.is_clocked:
            batch.step_time(10)
            sample(rows, 0)
            continue

        for cycle in range(shape.hold_cycles):
            pk(protocol.clock)(
                [1 if txn is not None else None for txn in rows])
            batch.settle()
            batch.step_time(5)
            if protocol.sample_after_edge:
                sample(rows, cycle)
            pk(protocol.clock)(
                [0 if txn is not None else None for txn in rows])
            batch.settle()
            batch.step_time(5)
            if not protocol.sample_after_edge:
                sample(rows, cycle)

    results = []
    for lane in range(lanes):
        scoreboard = scoreboards[lane]
        detail = {}
        if hasattr(coverages[lane], "to_dict"):
            detail["functional"] = coverages[lane].to_dict()
        results.append(TestResult(
            ok=True,
            pass_rate=scoreboard.pass_rate,
            mismatches=list(scoreboard.mismatches),
            log=logs[lane],
            coverage=coverages[lane].coverage,
            trace=batch.traces[lane],
            simulator=LaneSimView(batch, lane),
            checked=scoreboard.checked,
            coverage_detail=detail,
        ))
    return results

"""SVA-lite assertions (paper Section III-B, "Extensibility").

The paper notes UVM's structure "is optimally configured to incorporate
advanced enhancements such as AI-driven assertions".  This module
provides that extension point: cycle-sampled concurrent assertions with
same-cycle and next-cycle (``|->`` / ``|=>``) implications, plus a
generator that derives standard protocol assertions from a benchmark's
harness metadata (the mechanizable stand-in for LLM assertion
generation).

Assertions observe the same ``(txn, time, observed)`` stream as the
scoreboard, so they can be added to any environment without touching
the DUT.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class AssertionResult:
    """Outcome of one assertion over a whole run."""

    name: str
    attempts: int = 0
    failures: int = 0
    failure_times: List[int] = field(default_factory=list)

    @property
    def passed(self):
        return self.failures == 0

    @property
    def vacuous(self):
        """True when the antecedent never fired."""
        return self.attempts == 0


class Assertion:
    """A concurrent assertion sampled at every monitor sample point.

    ``antecedent(values) -> bool`` guards the check;
    ``consequent(values) -> bool`` must hold in the same cycle
    (``delay=0``) or the following sampled cycle (``delay=1``).
    ``values`` merges the transaction's input fields with the monitor's
    observed outputs (as plain ints; x-valued outputs appear as None).
    """

    def __init__(self, name, consequent, antecedent=None, delay=0):
        self.name = name
        self.consequent = consequent
        self.antecedent = antecedent or (lambda values: True)
        self.delay = delay
        self.result = AssertionResult(name=name)
        self._pending = []  # antecedent fired, check next sample

    def sample(self, values, time):
        """Feed one sample; returns False if the assertion failed now."""
        ok = True
        if self._pending:
            for _ in self._pending:
                self.result.attempts += 1
                if not _safe(self.consequent, values):
                    self.result.failures += 1
                    self.result.failure_times.append(time)
                    ok = False
            self._pending = []
        if _safe(self.antecedent, values):
            if self.delay == 0:
                self.result.attempts += 1
                if not _safe(self.consequent, values):
                    self.result.failures += 1
                    self.result.failure_times.append(time)
                    ok = False
            else:
                self._pending.append(time)
        return ok


def _safe(fn, values):
    """Evaluate a predicate; unknown (None) operands fail soft."""
    try:
        return bool(fn(values))
    except (TypeError, KeyError):
        return True  # x-valued or missing operand: not checkable


class AssertionSet:
    """A group of assertions sampled together (a covergroup sibling)."""

    def __init__(self, assertions=None):
        self.assertions = list(assertions or [])

    def add(self, assertion):
        self.assertions.append(assertion)
        return assertion

    def sample(self, txn_fields, observed, time):
        values = dict(txn_fields)
        for name, value in observed.items():
            if hasattr(value, "has_x"):
                values[name] = None if value.has_x else value.to_int()
            else:
                values[name] = value
        for assertion in self.assertions:
            assertion.sample(values, time)

    @property
    def all_passed(self):
        return all(a.result.passed for a in self.assertions)

    def report(self):
        lines = []
        for assertion in self.assertions:
            result = assertion.result
            status = "PASS" if result.passed else "FAIL"
            if result.vacuous:
                status = "VACUOUS"
            lines.append(
                f"assert {assertion.name}: {status} "
                f"({result.attempts} attempts, {result.failures} failures)"
            )
        return "\n".join(lines)


def generate_protocol_assertions(bench):
    """Derive standard assertions from a benchmark's harness metadata.

    This is the "AI-driven assertion generation" hook: given the spec's
    structure (valid/done pulse outputs, full/empty flags, one-hot
    lamps), emit the assertions an LLM would write.  Coverage is
    intentionally generic — design-specific assertions can be appended
    by hand or by a real model.
    """
    assertions = AssertionSet()
    outputs = set(bench.compare_signals)

    # Pulse outputs (valid/done/hit) are never unknown after reset.
    for signal in sorted(outputs):
        assertions.add(
            Assertion(
                f"{signal}_known",
                consequent=lambda v, s=signal: v.get(s) is not None,
            )
        )

    if {"full", "empty"} <= outputs:
        assertions.add(
            Assertion(
                "full_empty_exclusive",
                consequent=lambda v: not (v["full"] and v["empty"]),
            )
        )
    if "count" in outputs:
        assertions.add(
            Assertion(
                "count_in_range",
                consequent=lambda v: 0 <= v["count"] <= 8,
            )
        )
    if {"red", "yellow", "green"} <= outputs:
        assertions.add(
            Assertion(
                "lamps_one_hot",
                consequent=lambda v: v["red"] + v["yellow"] + v["green"]
                == 1,
            )
        )
    if "done" in outputs and "start" in bench.field_ranges:
        assertions.add(
            Assertion(
                "done_only_after_start",
                antecedent=lambda v: v.get("done") == 1,
                consequent=lambda v: True,  # liveness placeholder
            )
        )
    return assertions

"""Shared experiment execution.

Semantics follow the paper's setup:

- every method is run with up to ``attempts`` independent LLM seeds per
  instance ("we asked LLMs for 5 times to reduce the randomness"); the
  first attempt whose repair passes the method's own acceptance
  criterion is taken (pass@k);
- **HR** is that internal acceptance;
- **FR** is external validation: the accepted repair must pass the
  extended held-out suite (``make_fr_sequence``) — the mechanized
  expert review;
- execution time is the mean modelled seconds per attempt.

Execution routing: ``run_methods`` expands the (instances x methods)
grid with :func:`repro.runner.expand_grid` and hands it to
:func:`repro.runner.run_units`, which supplies process-pool
parallelism (``jobs``) and on-disk memoization (``cache_dir``).  The
primitive a pool worker runs is :func:`run_unit` /
:func:`run_method_on_instance`; both are deliberately free of shared
mutable module state so that a worker process computes exactly what
the serial loop would.
"""

import json
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.baselines.direct import DirectLLM
from repro.baselines.meic import MEIC
from repro.baselines.rtlrepair import RTLRepair
from repro.baselines.strider import Strider
from repro.bench.registry import (
    get_module,
    make_coverage_model,
    make_fr_sequence,
    make_hr_sequence,
)
from repro.core.config import UVLLMConfig
from repro.core.framework import UVLLM
from repro.lint.linter import Linter
from repro.llm.mock import MockLLM
from repro.obs import trace
from repro.runner.grid import expand_grid
from repro.runner.scheduler import run_units
from repro.sim.backend import get_default_backend, use_backend
from repro.uvm.test import run_uvm_test

#: Methods evaluated in the paper's figures.
METHODS = ("uvllm", "uvllm_comp", "meic", "gpt-4-turbo", "strider",
           "rtlrepair")


@dataclass
class InstanceRecord:
    """Per-instance, per-method outcome."""

    instance_id: str
    module_name: str
    category: str
    kind: str
    paper_class: str
    method: str
    hit: bool = False
    fixed: bool = False
    seconds: float = 0.0
    stage: Optional[str] = None
    stage_seconds: dict = field(default_factory=dict)
    attempts_used: int = 0
    rollbacks: int = 0
    #: Coverage-database fragment from this unit's verification run:
    #: ``{"functional": {module: counters},
    #:    "code": {instance_id: counters}}`` — union-merged
    #: campaign-wide by :class:`repro.cover.db.CoverageDB`.
    coverage: dict = field(default_factory=dict)
    #: Set on quarantined ("poisoned") records only: why the unit never
    #: produced a verdict (``"worker-death"``/``"timeout"``/
    #: ``"exception"``) plus the structured failure description
    #: (error repr, traceback, strike count).  ``None``/``{}`` on every
    #: normally-executed record.
    failure_kind: Optional[str] = None
    failure_detail: dict = field(default_factory=dict)


def evaluate_fix(final_source, bench, seed=1000):
    """External (expert-equivalent) validation of a repair — the FR
    oracle: lint-clean of errors plus full pass on the held-out suite.

    The linter is constructed per call rather than held in a module
    singleton: pool workers must not share mutable state, and
    ``Linter()`` is a cheap, stateless rule-list assembly.
    """
    if Linter().lint(final_source).errors:
        return False
    result = run_uvm_test(
        final_source, make_fr_sequence(bench, seed=seed), bench.protocol,
        bench.model(), bench.compare_signals, top=bench.top,
    )
    return result.all_passed


#: Per-process memo for :func:`collect_unit_coverage`: the fragment
#: depends only on the instance (not the repair method), but the
#: campaign grid is instances x methods — without the memo every
#: method re-simulates the same instrumented HR suite (pool workers
#: each keep their own memo, so a multi-worker campaign still pays
#: once per worker that sees the instance).  The key includes the
#: active backend even though fragments are designed to be
#: backend-invariant: ci_smoke's cross-backend parity check must
#: compare two *measurements*, not a measurement against its own
#: cached copy.  Values are JSON strings (immutable; callers get a
#: fresh deep copy).
_COVERAGE_MEMO = {}
_COVERAGE_MEMO_LIMIT = 4096


def collect_unit_coverage(instance, bench, seed=0):
    """The coverage-database fragment for one campaign unit.

    Measures the HR verification suite with the module's rich
    functional model (crosses, transitions, probes) *and* structural
    code coverage, preferring the buggy source — the paper's claim is
    that the stimulus actually exercises the injected error — and
    falling back to the golden source when the mutant cannot simulate
    at all (syntax-class errors never elaborate).  Deterministic in
    its arguments, so cached records replay it bit-for-bit; settled
    values are backend-invariant, so the fragment is designed to be
    too — a property ci_smoke verifies by re-measuring per backend
    (hence the backend in the memo key).
    """
    key = (instance.instance_id, hash(instance.buggy_source),
           hash(instance.golden_source), seed, get_default_backend())
    memoized = _COVERAGE_MEMO.get(key)
    if memoized is not None:
        return json.loads(memoized)
    fragment = _measure_unit_coverage(instance, bench, seed)
    if len(_COVERAGE_MEMO) < _COVERAGE_MEMO_LIMIT:
        _COVERAGE_MEMO[key] = json.dumps(fragment)
    return fragment


def _measure_unit_coverage(instance, bench, seed):
    sources = (
        ("buggy", instance.buggy_source),
        ("golden", instance.golden_source),
    )
    for label, source in sources:
        result = run_uvm_test(
            source, make_hr_sequence(bench, seed=seed), bench.protocol,
            bench.model(), bench.compare_signals, top=bench.top,
            coverage=make_coverage_model(bench), code_coverage=True,
        )
        if not result.ok:
            continue
        detail = result.coverage_detail
        code = dict(detail.get("code") or {})
        code["dut"] = label
        return {
            "functional": {
                instance.module_name: detail.get("functional") or {}
            },
            "code": {instance.instance_id: code},
        }
    return {}


def _make_method(method, seed, config_overrides=None):
    """Instantiate a repair engine for one attempt.

    ``config_overrides`` (a mapping of :class:`UVLLMConfig` field
    overrides) parameterizes the UVLLM variants for ablations; the
    baseline engines have no config, so overrides there are an error
    rather than a silent no-op.
    """
    overrides = dict(config_overrides or {})
    llm = MockLLM(seed=seed)
    if method == "uvllm":
        config = UVLLMConfig(patch_form="pair", hr_seed=0)
        return UVLLM(llm, replace(config, **overrides))
    if method == "uvllm_comp":
        config = UVLLMConfig(patch_form="complete", hr_seed=0)
        return UVLLM(llm, replace(config, **overrides))
    if overrides:
        raise ValueError(
            f"method '{method}' takes no config overrides"
        )
    if method == "meic":
        return MEIC(llm)
    if method == "gpt-4-turbo":
        return DirectLLM(llm)
    if method == "strider":
        return Strider()
    if method == "rtlrepair":
        return RTLRepair()
    raise ValueError(f"unknown method '{method}'")


def run_method_on_instance(method, instance, attempts=3, base_seed=0,
                           config_overrides=None, backend=None,
                           shared_initial=None):
    """Run one method on one error instance (pass@``attempts``).

    Attempt ``k`` uses LLM seed ``base_seed + k``, making the outcome a
    pure function of the arguments — the determinism contract the
    parallel scheduler and the result cache both rely on.

    ``backend`` scopes the simulation backend for every UVM run the
    repair pipeline performs (repair-loop scoring *and* the FR
    oracle), including inside pool workers; ``None`` keeps the process
    default (``REPRO_SIM_BACKEND`` or ``set_default_backend``).

    Every record also carries the instance's coverage fragment (one
    instrumented HR run, memoized per worker process and per
    instance) — roughly a tenth of a unit's cost next to the repair
    loop's own UVM runs, and the price of the campaign-wide coverage
    database being complete rather than opt-in.

    ``shared_initial`` maps ``(hr_seed, stimulus)`` to a
    ``(sequence, TestResult)`` pair precomputed for this instance's
    buggy source (by :func:`execute_unit_group`'s lane batch); the
    UVLLM variants reuse the matching entry as their initial UVM run —
    which :meth:`UVLLM.verify_and_repair` only trusts when the
    pre-processor leaves the source unchanged, keeping the record a
    pure function of the unit's fields.
    """
    backend = backend or get_default_backend()
    bench = get_module(instance.module_name)
    with use_backend(backend):
        return _drive_unit_scalar(
            unit_steps(method, instance, bench, attempts=attempts,
                       base_seed=base_seed,
                       config_overrides=config_overrides,
                       shared_initial=shared_initial),
            bench,
        )


def _drive_unit_scalar(steps, bench):
    """Run one unit generator to completion, executing every yielded
    :class:`~repro.core.framework.VerifyRequest` immediately (the
    ungrouped execution path); returns the unit's record."""
    result = None
    while True:
        try:
            request = steps.send(result)
        except StopIteration as stop:
            return stop.value
        result = run_uvm_test(
            request.source, request.sequence, bench.protocol,
            bench.model(), bench.compare_signals, top=bench.top,
        )


def unit_steps(method, instance, bench, attempts=3, base_seed=0,
               config_overrides=None, shared_initial=None):
    """Generator form of :func:`run_method_on_instance`.

    Yields a :class:`~repro.core.framework.VerifyRequest` for every
    UVM verification a uvllm-family repair loop performs and receives
    the ``TestResult`` via ``send``; returns the finished
    :class:`InstanceRecord`.  Baseline methods never yield (their
    engines simulate internally).  The caller owns backend scoping —
    requests must be executed under the same simulation backend the
    generator's own runs (coverage, FR oracle) see.
    """
    record = InstanceRecord(
        instance_id=instance.instance_id,
        module_name=instance.module_name,
        category=instance.category,
        kind=instance.kind,
        paper_class=instance.paper_class,
        method=method,
    )
    total_seconds = 0.0
    outcome = None
    record.coverage = collect_unit_coverage(instance, bench)
    for attempt in range(attempts):
        engine = _make_method(method, seed=base_seed + attempt,
                              config_overrides=config_overrides)
        with trace.span("attempt", cat="repair", method=method,
                        attempt=attempt,
                        instance=instance.instance_id) as sp:
            if method.startswith("uvllm"):
                shared = None
                if shared_initial:
                    shared = shared_initial.get(
                        (engine.config.hr_seed, engine.config.stimulus)
                    )
                if shared is not None:
                    outcome = yield from engine.verify_and_repair_steps(
                        instance.buggy_source, bench,
                        sequence=shared[0], initial_result=shared[1],
                    )
                else:
                    outcome = yield from engine.verify_and_repair_steps(
                        instance.buggy_source, bench
                    )
            else:
                outcome = engine.repair(instance.buggy_source, bench)
            sp.set(hit=bool(outcome.hit))
        total_seconds += outcome.seconds
        record.attempts_used = attempt + 1
        if outcome.hit:
            break
        if method in ("strider", "rtlrepair"):
            break  # deterministic: retrying cannot change the answer
    record.hit = bool(outcome and outcome.hit)
    record.seconds = total_seconds / max(1, record.attempts_used)
    record.stage = getattr(outcome, "stage", None)
    record.stage_seconds = dict(
        getattr(outcome, "stage_seconds", {}) or {}
    )
    record.rollbacks = int(getattr(outcome, "rollbacks", 0) or 0)
    if record.hit and outcome is not None:
        record.fixed = evaluate_fix(outcome.final_source, bench)
    return record


def make_poisoned_record(unit, failure):
    """The structured record a quarantined campaign unit lands as.

    The scheduler calls this when a unit never produced a verdict —
    it killed its worker twice, exceeded its wall-clock budget past
    the retry allowance, or raised a (deterministic) exception.  The
    record scores as neither hit nor fixed, carries no coverage, and
    stamps the failure into ``failure_kind``/``failure_detail`` so
    campaign summaries, the cache, and forensics all see the same
    story.
    """
    instance = unit.instance
    return InstanceRecord(
        instance_id=instance.instance_id,
        module_name=instance.module_name,
        category=instance.category,
        kind=instance.kind,
        paper_class=instance.paper_class,
        method=unit.method,
        hit=False,
        fixed=False,
        stage="poisoned",
        failure_kind=failure.get("kind", "unknown"),
        failure_detail=dict(failure),
    )


def run_unit(unit):
    """Execute one :class:`repro.runner.WorkUnit` — the pool-worker
    primitive the campaign scheduler dispatches."""
    return run_method_on_instance(
        unit.method,
        unit.instance,
        attempts=unit.attempts,
        base_seed=unit.base_seed,
        config_overrides=dict(unit.config_overrides),
        backend=getattr(unit, "backend", None),
    )


def _sequence_key(unit):
    """The ``(hr_seed, stimulus)`` pair naming the HR sequence a
    uvllm-family unit verifies against (mirrors :func:`_make_method`'s
    config construction: ``hr_seed`` defaults to 0, ``stimulus`` to
    the :class:`UVLLMConfig` default, overrides win)."""
    overrides = dict(unit.config_overrides)
    return (overrides.get("hr_seed", 0),
            overrides.get("stimulus", UVLLMConfig.stimulus))


def execute_unit_group(units, lanes):
    """Execute one design-fingerprint group of campaign units.

    Every unit in the group verifies the *same buggy source*, so the
    initial UVM run of every uvllm-family attempt — always the first
    and often the heaviest simulation of the repair pipeline — is
    computed once per distinct ``(hr_seed, stimulus)`` stimulus as one
    lane-packed batch (:func:`repro.uvm.lanes.run_uvm_test_lanes`:
    up to ``lanes`` seeds advance per packed ``settle``/``tick``) and
    shared across all attempts of all units.

    After the shared initial batch, the group's units run as
    *lockstep generators* (:func:`unit_steps`): whenever several live
    units are simultaneously waiting on a verification of the same
    candidate source — repair-attempt re-runs whose proposed patches
    coincide, or initial re-verifications after identical pre-processor
    rewrites — those requests execute as one lane batch too; singleton
    requests run scalar.

    Bit-identity with ungrouped execution holds because (a) the lane
    runner's per-lane results are bit-identical to scalar compiled
    runs, and (b) the shared result is only consumed where the scalar
    path would have recomputed exactly it: ``verify_and_repair``
    ignores it whenever the pre-processor rewrites the source, and the
    batch is skipped outright for lint-dirty sources (where rewriting
    is certain).  Each unit generator is a pure function of its own
    unit fields (its requests carry no cross-unit state), so records
    split back into the exact per-unit cache records a ``--lanes 1``
    campaign produces.

    Returns ``(records, lane_infos)``: records in unit order, one
    ``{"lanes", "packed", "demotion"}`` info dict per batch dispatched
    (for the campaign's lane-batch counters).
    """
    from repro.uvm.lanes import run_uvm_test_lanes

    units = list(units)
    instance = units[0].instance
    bench = get_module(instance.module_name)
    backend = getattr(units[0], "backend", None) or get_default_backend()
    keys = []
    for unit in units:
        if unit.method.startswith("uvllm"):
            key = _sequence_key(unit)
            if key not in keys:
                keys.append(key)
    if keys and Linter().lint(instance.buggy_source).errors:
        keys = []
    shared_initial = {}
    lane_infos = []
    width = max(1, int(lanes))
    records = [None] * len(units)
    with use_backend(backend):
        for start in range(0, len(keys), width):
            chunk = keys[start:start + width]
            sequences = [
                make_hr_sequence(bench, seed=hr_seed, stimulus=stimulus)
                for hr_seed, stimulus in chunk
            ]
            results, info = run_uvm_test_lanes(
                instance.buggy_source, sequences, bench.protocol,
                bench.model, bench.compare_signals, top=bench.top,
            )
            lane_infos.append(info)
            for key, sequence, result in zip(chunk, sequences, results):
                shared_initial[key] = (sequence, result)

        # -- lockstep repair loops ---------------------------------------
        live = {}
        benches = {}
        for index, unit in enumerate(units):
            unit_backend = (getattr(unit, "backend", None)
                            or get_default_backend())
            if unit_backend != backend:
                # A mixed-backend group (never produced by the
                # scheduler's planner): run the stray unit whole under
                # its own backend rather than mis-scope its requests.
                records[index] = run_method_on_instance(
                    unit.method, unit.instance, attempts=unit.attempts,
                    base_seed=unit.base_seed,
                    config_overrides=dict(unit.config_overrides),
                    backend=unit_backend,
                    shared_initial=shared_initial,
                )
                continue
            benches[index] = get_module(unit.instance.module_name)
            live[index] = unit_steps(
                unit.method, unit.instance, benches[index],
                attempts=unit.attempts, base_seed=unit.base_seed,
                config_overrides=dict(unit.config_overrides),
                shared_initial=shared_initial,
            )
        inbox = {}
        while live:
            pending = {}
            for index in sorted(live):
                try:
                    pending[index] = live[index].send(
                        inbox.pop(index, None))
                except StopIteration as stop:
                    records[index] = stop.value
                    del live[index]
            if not pending:
                continue
            # Group coinciding requests: same candidate source, same
            # bench (the lane batch drives one protocol/model family).
            rounds = {}
            for index in sorted(pending):
                key = (pending[index].source,
                       units[index].instance.module_name)
                rounds.setdefault(key, []).append(index)
            for (source, _module), members in rounds.items():
                for start in range(0, len(members), width):
                    chunk = members[start:start + width]
                    chunk_bench = benches[chunk[0]]
                    if len(chunk) > 1:
                        sequences = [pending[m].sequence for m in chunk]
                        results, info = run_uvm_test_lanes(
                            source, sequences, chunk_bench.protocol,
                            chunk_bench.model,
                            chunk_bench.compare_signals,
                            top=chunk_bench.top,
                        )
                        lane_infos.append(info)
                        for m, result in zip(chunk, results):
                            inbox[m] = result
                    else:
                        m = chunk[0]
                        inbox[m] = run_uvm_test(
                            source, pending[m].sequence,
                            chunk_bench.protocol, chunk_bench.model(),
                            chunk_bench.compare_signals,
                            top=chunk_bench.top,
                        )
    return records, lane_infos


def run_methods(instances, methods, attempts=3, progress=None, jobs=1,
                cache_dir=None, show_progress=False, backend=None,
                lanes=1):
    """Run several methods over a dataset; returns a list of records.

    Record order is instance-major, method-minor regardless of
    ``jobs``.  ``progress`` (if given) is called as
    ``progress(done_units, total_units)`` after each resolved unit;
    ``cache_dir`` memoizes finished records on disk; ``backend``
    selects the simulation backend for every unit; ``lanes > 1`` lets
    the scheduler pack same-design compiled units into lane batches
    (bit-identical records either way).
    """
    units = expand_grid(instances, methods, attempts=attempts,
                        backend=backend)
    return run_units(units, jobs=jobs, cache_dir=cache_dir,
                     progress=progress, show_progress=show_progress,
                     lanes=lanes)


def group_records(records, key):
    """Group records by a callable key -> {key_value: [records]}."""
    grouped = {}
    for record in records:
        grouped.setdefault(key(record), []).append(record)
    return grouped


def rates(records):
    """(HR%, FR%, mean seconds) for a record list."""
    if not records:
        return 0.0, 0.0, 0.0
    hr = 100.0 * sum(1 for r in records if r.hit) / len(records)
    fr = 100.0 * sum(1 for r in records if r.fixed) / len(records)
    seconds = sum(r.seconds for r in records) / len(records)
    return hr, fr, seconds

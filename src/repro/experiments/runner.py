"""Shared experiment execution.

Semantics follow the paper's setup:

- every method is run with up to ``attempts`` independent LLM seeds per
  instance ("we asked LLMs for 5 times to reduce the randomness"); the
  first attempt whose repair passes the method's own acceptance
  criterion is taken (pass@k);
- **HR** is that internal acceptance;
- **FR** is external validation: the accepted repair must pass the
  extended held-out suite (``make_fr_sequence``) — the mechanized
  expert review;
- execution time is the mean modelled seconds per attempt.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.direct import DirectLLM
from repro.baselines.meic import MEIC
from repro.baselines.rtlrepair import RTLRepair
from repro.baselines.strider import Strider
from repro.bench.registry import get_module, make_fr_sequence
from repro.core.config import UVLLMConfig
from repro.core.framework import UVLLM
from repro.lint.linter import Linter
from repro.llm.mock import MockLLM
from repro.uvm.test import run_uvm_test

#: Methods evaluated in the paper's figures.
METHODS = ("uvllm", "uvllm_comp", "meic", "gpt-4-turbo", "strider",
           "rtlrepair")

_linter = Linter()


@dataclass
class InstanceRecord:
    """Per-instance, per-method outcome."""

    instance_id: str
    module_name: str
    category: str
    kind: str
    paper_class: str
    method: str
    hit: bool = False
    fixed: bool = False
    seconds: float = 0.0
    stage: Optional[str] = None
    stage_seconds: dict = field(default_factory=dict)
    attempts_used: int = 0


def evaluate_fix(final_source, bench, seed=1000):
    """External (expert-equivalent) validation of a repair — the FR
    oracle: lint-clean of errors plus full pass on the held-out suite."""
    if _linter.lint(final_source).errors:
        return False
    result = run_uvm_test(
        final_source, make_fr_sequence(bench, seed=seed), bench.protocol,
        bench.model(), bench.compare_signals, top=bench.top,
    )
    return result.all_passed


def _make_method(method, seed):
    llm = MockLLM(seed=seed)
    if method == "uvllm":
        return UVLLM(llm, UVLLMConfig(patch_form="pair", hr_seed=0))
    if method == "uvllm_comp":
        return UVLLM(llm, UVLLMConfig(patch_form="complete", hr_seed=0))
    if method == "meic":
        return MEIC(llm)
    if method == "gpt-4-turbo":
        return DirectLLM(llm)
    if method == "strider":
        return Strider()
    if method == "rtlrepair":
        return RTLRepair()
    raise ValueError(f"unknown method '{method}'")


def run_method_on_instance(method, instance, attempts=3):
    """Run one method on one error instance (pass@``attempts``)."""
    bench = get_module(instance.module_name)
    record = InstanceRecord(
        instance_id=instance.instance_id,
        module_name=instance.module_name,
        category=instance.category,
        kind=instance.kind,
        paper_class=instance.paper_class,
        method=method,
    )
    total_seconds = 0.0
    outcome = None
    for attempt in range(attempts):
        engine = _make_method(method, seed=attempt)
        if method.startswith("uvllm"):
            outcome = engine.verify_and_repair(instance.buggy_source, bench)
        else:
            outcome = engine.repair(instance.buggy_source, bench)
        total_seconds += outcome.seconds
        record.attempts_used = attempt + 1
        if outcome.hit:
            break
        if method in ("strider", "rtlrepair"):
            break  # deterministic: retrying cannot change the answer
    record.hit = bool(outcome and outcome.hit)
    record.seconds = total_seconds / max(1, record.attempts_used)
    record.stage = getattr(outcome, "stage", None)
    record.stage_seconds = dict(getattr(outcome, "stage_seconds", {}) or {})
    if record.hit and outcome is not None:
        record.fixed = evaluate_fix(outcome.final_source, bench)
    return record


def run_methods(instances, methods, attempts=3, progress=None):
    """Run several methods over a dataset; returns a list of records."""
    records = []
    for index, instance in enumerate(instances):
        for method in methods:
            records.append(
                run_method_on_instance(method, instance, attempts=attempts)
            )
        if progress is not None:
            progress(index + 1, len(instances))
    return records


def group_records(records, key):
    """Group records by a callable key -> {key_value: [records]}."""
    grouped = {}
    for record in records:
        grouped.setdefault(key(record), []).append(record)
    return grouped


def rates(records):
    """(HR%, FR%, mean seconds) for a record list."""
    if not records:
        return 0.0, 0.0, 0.0
    hr = 100.0 * sum(1 for r in records if r.hit) / len(records)
    fr = 100.0 * sum(1 for r in records if r.fixed) / len(records)
    seconds = sum(r.seconds for r in records) / len(records)
    return hr, fr, seconds

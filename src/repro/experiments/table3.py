"""Table III — ablation: repair-pair generation vs complete-code
regeneration.

``UVLLM_pair`` emits original/patched pairs; ``UVLLM_comp`` regenerates
whole modules.  Expected shape: pair form wins on both FR (86.99 vs
70.41 syntax; 71.92 vs 59.25 functional) and execution time (complete
regeneration pays decode tokens for the entire module every round).
"""

from repro.errgen.generator import generate_dataset
from repro.experiments.runner import run_methods


def run(modules=None, per_operator=1, attempts=3, seed=0, jobs=1,
        cache_dir=None, backend=None):
    instances = generate_dataset(
        seed=seed, per_operator=per_operator, target=None, modules=modules,
        cache_dir=cache_dir,
    )
    records = run_methods(
        instances, ("uvllm", "uvllm_comp"), attempts=attempts,
        jobs=jobs, cache_dir=cache_dir, backend=backend,
    )
    results = {}
    for method, label in (("uvllm", "pair"), ("uvllm_comp", "complete")):
        subset = [r for r in records if r.method == method]
        row = {}
        for kind in ("syntax", "functional"):
            kind_records = [r for r in subset if r.kind == kind]
            n = len(kind_records)
            row[kind] = {
                "fr": 100.0 * sum(1 for r in kind_records if r.fixed) / n
                if n else 0.0,
                "seconds": sum(r.seconds for r in kind_records) / n
                if n else 0.0,
                "n": n,
            }
        results[label] = row
    return results


def render(results):
    lines = [
        "Table III — repair generation form ablation",
        f"{'form':<12}{'FR syn':>9}{'FR func':>9}{'T syn':>9}{'T func':>9}",
    ]
    for label, row in results.items():
        lines.append(
            f"{label:<12}"
            f"{row['syntax']['fr']:>9.2f}{row['functional']['fr']:>9.2f}"
            f"{row['syntax']['seconds']:>9.2f}"
            f"{row['functional']['seconds']:>9.2f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))

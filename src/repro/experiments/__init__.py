"""Experiment drivers: one module per paper table/figure.

Each driver exposes ``run(...) -> dict`` returning structured results
and a ``render(results) -> str`` producing the paper-style table.  The
benchmark harness under ``benchmarks/`` and the EXPERIMENTS.md generator
both call these.
"""

from repro.experiments.runner import (
    InstanceRecord,
    evaluate_fix,
    run_method_on_instance,
    run_methods,
    run_unit,
    METHODS,
)

__all__ = [
    "InstanceRecord",
    "evaluate_fix",
    "run_method_on_instance",
    "run_methods",
    "run_unit",
    "METHODS",
]

"""Fig. 7 — FR heat map: 27 modules x (syntax, function).

The paper injects nine error types per module (where structurally
applicable — "x" cells) and color-codes the per-module FR, split into
weighted syntax and function means.  Expected shape: counters near
(1.00, 0.95); FSMs near (0.89, 0.32); syntax >= function everywhere.
"""

from repro.bench.registry import all_modules
from repro.errgen.generator import generate_for_module
from repro.experiments.runner import run_method_on_instance


def run(modules=None, per_operator=1, attempts=3, seed=0):
    """Returns {module: {"syntax": FR or None, "function": FR or None}}."""
    selected = all_modules()
    if modules is not None:
        selected = [b for b in selected if b.name in modules]
    heatmap = {}
    for bench in selected:
        instances = generate_for_module(
            bench, per_operator=per_operator, seed=seed
        )
        cells = {"syntax": None, "function": None}
        for kind_key, kind in (("syntax", "syntax"),
                               ("function", "functional")):
            subset = [i for i in instances if i.kind == kind]
            if not subset:
                continue  # the paper's "x": error not imposable here
            fixed = 0
            for instance in subset:
                record = run_method_on_instance(
                    "uvllm", instance, attempts=attempts
                )
                fixed += 1 if record.fixed else 0
            cells[kind_key] = fixed / len(subset)
        heatmap[bench.name] = {
            "category": bench.category,
            "type": bench.type_tag,
            **cells,
        }
    return heatmap


def render(heatmap):
    lines = [
        "Fig. 7 — FR heat map (UVLLM), x = not imposable",
        f"{'module':<18}{'type':<14}{'syntax':>8}{'function':>10}",
    ]
    for name, cells in heatmap.items():
        syntax = "x" if cells["syntax"] is None else f"{cells['syntax']:.2f}"
        func = "x" if cells["function"] is None else f"{cells['function']:.2f}"
        lines.append(f"{name:<18}{cells['type']:<14}{syntax:>8}{func:>10}")
    syntax_cells = [c["syntax"] for c in heatmap.values()
                    if c["syntax"] is not None]
    func_cells = [c["function"] for c in heatmap.values()
                  if c["function"] is not None]
    if syntax_cells and func_cells:
        lines.append(
            f"{'MEAN':<18}{'':<14}"
            f"{sum(syntax_cells) / len(syntax_cells):>8.2f}"
            f"{sum(func_cells) / len(func_cells):>10.2f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))

"""Fig. 7 — FR heat map: 27 modules x (syntax, function).

The paper injects nine error types per module (where structurally
applicable — "x" cells) and color-codes the per-module FR, split into
weighted syntax and function means.  Expected shape: counters near
(1.00, 0.95); FSMs near (0.89, 0.32); syntax >= function everywhere.
"""

from repro.bench.registry import all_modules
from repro.errgen.generator import generate_dataset
from repro.experiments.runner import group_records, run_methods


def run(modules=None, per_operator=1, attempts=3, seed=0, jobs=1,
        cache_dir=None, backend=None):
    """Returns {module: {"syntax": FR or None, "function": FR or None}}.

    All 27 modules' instances form one campaign grid, so the whole
    heat map parallelizes across ``jobs`` worker processes instead of
    iterating module-by-module.
    """
    selected = all_modules()
    if modules is not None:
        selected = [b for b in selected if b.name in modules]
    # Pass the caller's ``modules`` through verbatim so this call hits
    # the same dataset cache entry (in-process and on disk) the rest
    # of the sweep populates, instead of regenerating under a
    # registry-ordered name list that keys differently.
    instances = generate_dataset(
        seed=seed, per_operator=per_operator, target=None,
        modules=modules, cache_dir=cache_dir,
    )
    names = {b.name for b in selected}
    instances = [i for i in instances if i.module_name in names]
    records = run_methods(instances, ("uvllm",), attempts=attempts,
                          jobs=jobs, cache_dir=cache_dir,
                          backend=backend)
    by_module = group_records(records, lambda r: r.module_name)
    heatmap = {}
    for bench in selected:
        cells = {"syntax": None, "function": None}
        for kind_key, kind in (("syntax", "syntax"),
                               ("function", "functional")):
            subset = [
                r for r in by_module.get(bench.name, []) if r.kind == kind
            ]
            if not subset:
                continue  # the paper's "x": error not imposable here
            cells[kind_key] = (
                sum(1 for r in subset if r.fixed) / len(subset)
            )
        heatmap[bench.name] = {
            "category": bench.category,
            "type": bench.type_tag,
            **cells,
        }
    return heatmap


def render(heatmap):
    lines = [
        "Fig. 7 — FR heat map (UVLLM), x = not imposable",
        f"{'module':<18}{'type':<14}{'syntax':>8}{'function':>10}",
    ]
    for name, cells in heatmap.items():
        syntax = "x" if cells["syntax"] is None else f"{cells['syntax']:.2f}"
        func = "x" if cells["function"] is None else f"{cells['function']:.2f}"
        lines.append(f"{name:<18}{cells['type']:<14}{syntax:>8}{func:>10}")
    syntax_cells = [c["syntax"] for c in heatmap.values()
                    if c["syntax"] is not None]
    func_cells = [c["function"] for c in heatmap.values()
                  if c["function"] is not None]
    if syntax_cells and func_cells:
        lines.append(
            f"{'MEAN':<18}{'':<14}"
            f"{sum(syntax_cells) / len(syntax_cells):>8.2f}"
            f"{sum(func_cells) / len(func_cells):>10.2f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))

"""Fig. 5 — HR vs FR on syntax errors, per syntax class, per method.

Methods: UVLLM, MEIC, bare GPT-4-turbo.  The paper reports UVLLM with
zero HR-FR deviation across all syntax classes while the baselines show
~5% average deviation in 4 of 5 classes.
"""

from repro.errgen.generator import generate_dataset
from repro.errgen.mutations import SYNTAX_OPERATORS
from repro.experiments.runner import group_records, rates, run_methods

#: Fig. 5's x-axis, in paper order.
SYNTAX_CLASSES = (
    "premature_termination",
    "scope_issues",
    "operator_misuses",
    "incorrect_coding",
    "data_handling",
)

METHODS = ("uvllm", "meic", "gpt-4-turbo")


def run(modules=None, per_operator=1, attempts=3, seed=0, jobs=1,
        cache_dir=None, backend=None):
    """Execute the Fig. 5 experiment; returns the structured results.

    ``jobs`` / ``cache_dir`` are forwarded to the campaign runner
    (process-pool fan-out and on-disk memoization).
    """
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, operators=list(SYNTAX_OPERATORS),
            cache_dir=cache_dir,
        )
        if inst.kind == "syntax"
    ]
    records = run_methods(instances, METHODS, attempts=attempts,
                          jobs=jobs, cache_dir=cache_dir,
                          backend=backend)
    by_method = group_records(records, lambda r: r.method)
    results = {"classes": {}, "average": {}, "instance_count": len(instances)}
    for cls in SYNTAX_CLASSES:
        results["classes"][cls] = {}
        for method in METHODS:
            subset = [
                r for r in by_method.get(method, [])
                if r.paper_class == cls
            ]
            hr, fr, seconds = rates(subset)
            results["classes"][cls][method] = {
                "hr": hr, "fr": fr, "seconds": seconds, "n": len(subset),
            }
    for method in METHODS:
        hr, fr, seconds = rates(by_method.get(method, []))
        results["average"][method] = {
            "hr": hr, "fr": fr, "seconds": seconds,
            "n": len(by_method.get(method, [])),
        }
    return results


def render(results):
    """Paper-style text table."""
    lines = [
        "Fig. 5 — Syntax-error verification: HR vs FR (%)",
        f"  ({results['instance_count']} instances)",
        f"{'class':<24}" + "".join(
            f"{m + ' FR':>16}{m + ' HR':>16}" for m in METHODS
        ),
    ]
    for cls, per_method in results["classes"].items():
        row = f"{cls:<24}"
        for method in METHODS:
            cell = per_method[method]
            row += f"{cell['fr']:>16.1f}{cell['hr']:>16.1f}"
        lines.append(row)
    row = f"{'AVERAGE':<24}"
    for method in METHODS:
        cell = results["average"][method]
        row += f"{cell['fr']:>16.1f}{cell['hr']:>16.1f}"
    lines.append(row)
    uvllm = results["average"]["uvllm"]
    meic = results["average"]["meic"]
    lines.append(
        f"UVLLM FR-over-MEIC improvement: "
        f"{uvllm['fr'] - meic['fr']:+.1f} points "
        f"(paper: +26.9); UVLLM HR-FR gap: "
        f"{uvllm['hr'] - uvllm['fr']:.1f} (paper: 0.0)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))

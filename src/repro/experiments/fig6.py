"""Fig. 6 — HR vs FR on functional errors, per class, per method.

Methods: UVLLM, bare GPT-4-turbo, Strider, MEIC, RTL-Repair.  The paper
reports UVLLM's HR-FR deviation at 1.4% average (max 5.6% on logic
errors) while every baseline deviates by >30%.
"""

from repro.errgen.generator import generate_dataset
from repro.errgen.mutations import FUNCTIONAL_OPERATORS
from repro.experiments.runner import group_records, rates, run_methods

#: Fig. 6's x-axis, in paper order.
FUNCTIONAL_CLASSES = (
    "declaration_errors",
    "flawed_conditions",
    "incorrect_bitwidth",
    "logic_errors",
)

#: paper_class values mapped onto Fig. 6 axis labels.
_CLASS_MAP = {
    "incorrect_bitwidth": "incorrect_bitwidth",
    "flawed_conditions": "flawed_conditions",
    "logic_errors": "logic_errors",
    "declaration_errors": "declaration_errors",
}

METHODS = ("uvllm", "gpt-4-turbo", "strider", "meic", "rtlrepair")


def _axis_class(record):
    # Bitwidth declaration defects double as the paper's "declaration
    # errors" when they live on a declaration statement.
    return _CLASS_MAP.get(record.paper_class, record.paper_class)


def run(modules=None, per_operator=1, attempts=3, seed=0, jobs=1,
        cache_dir=None, backend=None):
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, operators=list(FUNCTIONAL_OPERATORS),
            cache_dir=cache_dir,
        )
        if inst.kind == "functional"
    ]
    # Split incorrect_bitwidth: half represent Fig. 6's "declaration
    # errors" bucket (type/width misuse at declarations).
    for index, inst in enumerate(instances):
        if inst.paper_class == "incorrect_bitwidth" and index % 2 == 0:
            inst.paper_class = "declaration_errors"
    records = run_methods(instances, METHODS, attempts=attempts,
                          jobs=jobs, cache_dir=cache_dir,
                          backend=backend)
    by_method = group_records(records, lambda r: r.method)
    results = {"classes": {}, "average": {}, "instance_count": len(instances)}
    for cls in FUNCTIONAL_CLASSES:
        results["classes"][cls] = {}
        for method in METHODS:
            subset = [
                r for r in by_method.get(method, [])
                if _axis_class(r) == cls
            ]
            hr, fr, seconds = rates(subset)
            results["classes"][cls][method] = {
                "hr": hr, "fr": fr, "seconds": seconds, "n": len(subset),
            }
    for method in METHODS:
        hr, fr, seconds = rates(by_method.get(method, []))
        results["average"][method] = {
            "hr": hr, "fr": fr, "seconds": seconds,
            "n": len(by_method.get(method, [])),
        }
    return results


def render(results):
    lines = [
        "Fig. 6 — Functional-error verification: HR vs FR (%)",
        f"  ({results['instance_count']} instances)",
        f"{'class':<22}" + "".join(f"{m:>14}" for m in METHODS) + "   (FR; HR in parens)",
    ]
    for cls, per_method in results["classes"].items():
        row = f"{cls:<22}"
        for method in METHODS:
            cell = per_method[method]
            row += f"{cell['fr']:>7.1f}({cell['hr']:>4.0f})"
        lines.append(row)
    row = f"{'AVERAGE':<22}"
    for method in METHODS:
        cell = results["average"][method]
        row += f"{cell['fr']:>7.1f}({cell['hr']:>4.0f})"
    lines.append(row)
    uvllm = results["average"]["uvllm"]
    lines.append(
        f"UVLLM HR-FR deviation: {uvllm['hr'] - uvllm['fr']:.1f} points "
        f"(paper: 1.4); baselines' deviations should exceed UVLLM's."
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))

"""Extra ablations beyond Table III, for the design choices DESIGN.md
calls out:

- **rollback** — the Score-Register rollback mechanism on vs off;
- **ms_threshold** — when to escalate from MS-mode to SL-mode error
  info (Algorithm 2's TH): 0 (always SL), 2 (paper default), 5 (never).

Both are UVLLM-internal switches, so the comparison isolates exactly
one pipeline decision at a time.
"""

from repro.errgen.generator import generate_dataset
from repro.runner.grid import expand_grid
from repro.runner.scheduler import run_units


def _run_config(instances, config_overrides, attempts=2, jobs=1,
                cache_dir=None, backend=None):
    """One ablation arm: UVLLM with ``config_overrides`` applied.

    Routed through the campaign runner so each arm parallelizes and
    memoizes like any other campaign; the overrides are part of every
    unit's cache key, so arms never alias each other.

    Note one deliberate semantic change from the pre-runner code:
    ``seconds`` is now the mean modelled time across *all* attempts of
    an instance (the shared ``InstanceRecord`` convention) where the
    old loop reported only the final attempt's time.  HR/FR/rollback
    numbers are unchanged.
    """
    units = expand_grid(instances, ("uvllm",), attempts=attempts,
                        config_overrides=config_overrides, backend=backend)
    records = run_units(units, jobs=jobs, cache_dir=cache_dir)
    n = max(1, len(records))
    return {
        "hr": 100.0 * sum(1 for r in records if r.hit) / n,
        "fr": 100.0 * sum(1 for r in records if r.fixed) / n,
        "seconds": sum(r.seconds for r in records) / n,
        "rollbacks": sum(r.rollbacks for r in records),
        "n": len(records),
    }


def run_rollback_ablation(modules=None, per_operator=1, attempts=2,
                          seed=0, jobs=1, cache_dir=None, backend=None):
    """Rollback on vs off, functional errors only (where it matters)."""
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, cache_dir=cache_dir,
        )
        if inst.kind == "functional"
    ]
    return {
        "with_rollback": _run_config(
            instances, {"enable_rollback": True}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        ),
        "without_rollback": _run_config(
            instances, {"enable_rollback": False}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        ),
    }


def run_ms_threshold_ablation(modules=None, per_operator=1, attempts=2,
                              seed=0, thresholds=(0, 2, 5), jobs=1,
                              cache_dir=None, backend=None):
    """Sweep the MS->SL escalation threshold."""
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, cache_dir=cache_dir,
        )
        if inst.kind == "functional"
    ]
    results = {}
    for threshold in thresholds:
        results[f"ms_iterations={threshold}"] = _run_config(
            instances, {"ms_iterations": threshold}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        )
    return results


def render(results, title):
    lines = [title,
             f"{'config':<24}{'HR %':>8}{'FR %':>8}{'t (s)':>9}"
             f"{'rollbacks':>11}"]
    for label, row in results.items():
        lines.append(
            f"{label:<24}{row['hr']:>8.1f}{row['fr']:>8.1f}"
            f"{row['seconds']:>9.2f}{row['rollbacks']:>11d}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    quick = ["counter_12", "edge_detect", "accu"]
    print(render(run_rollback_ablation(modules=quick),
                 "Ablation: rollback mechanism"))
    print()
    print(render(run_ms_threshold_ablation(modules=quick),
                 "Ablation: MS->SL escalation threshold"))

"""Extra ablations beyond Table III, for the design choices DESIGN.md
calls out:

- **rollback** — the Score-Register rollback mechanism on vs off;
- **ms_threshold** — when to escalate from MS-mode to SL-mode error
  info (Algorithm 2's TH): 0 (always SL), 2 (paper default), 5 (never).

Both are UVLLM-internal switches, so the comparison isolates exactly
one pipeline decision at a time.
"""

from repro.core.config import UVLLMConfig
from repro.core.framework import UVLLM
from repro.bench.registry import get_module
from repro.errgen.generator import generate_dataset
from repro.experiments.runner import evaluate_fix
from repro.llm.mock import MockLLM


def _run_config(instances, config_factory, attempts=2):
    fixed = hits = 0
    seconds = 0.0
    rollbacks = 0
    for instance in instances:
        bench = get_module(instance.module_name)
        outcome = None
        used = 0
        for attempt in range(attempts):
            used += 1
            framework = UVLLM(MockLLM(seed=attempt), config_factory())
            outcome = framework.verify_and_repair(
                instance.buggy_source, bench
            )
            if outcome.hit:
                break
        hits += 1 if outcome.hit else 0
        rollbacks += outcome.rollbacks
        seconds += outcome.seconds
        if outcome.hit and evaluate_fix(outcome.final_source, bench):
            fixed += 1
    n = max(1, len(instances))
    return {
        "hr": 100.0 * hits / n,
        "fr": 100.0 * fixed / n,
        "seconds": seconds / n,
        "rollbacks": rollbacks,
        "n": len(instances),
    }


def run_rollback_ablation(modules=None, per_operator=1, attempts=2,
                          seed=0):
    """Rollback on vs off, functional errors only (where it matters)."""
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules,
        )
        if inst.kind == "functional"
    ]
    return {
        "with_rollback": _run_config(
            instances, lambda: UVLLMConfig(enable_rollback=True),
            attempts,
        ),
        "without_rollback": _run_config(
            instances, lambda: UVLLMConfig(enable_rollback=False),
            attempts,
        ),
    }


def run_ms_threshold_ablation(modules=None, per_operator=1, attempts=2,
                              seed=0, thresholds=(0, 2, 5)):
    """Sweep the MS->SL escalation threshold."""
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules,
        )
        if inst.kind == "functional"
    ]
    results = {}
    for threshold in thresholds:
        results[f"ms_iterations={threshold}"] = _run_config(
            instances,
            lambda t=threshold: UVLLMConfig(ms_iterations=t),
            attempts,
        )
    return results


def render(results, title):
    lines = [title,
             f"{'config':<24}{'HR %':>8}{'FR %':>8}{'t (s)':>9}"
             f"{'rollbacks':>11}"]
    for label, row in results.items():
        lines.append(
            f"{label:<24}{row['hr']:>8.1f}{row['fr']:>8.1f}"
            f"{row['seconds']:>9.2f}{row['rollbacks']:>11d}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    quick = ["counter_12", "edge_detect", "accu"]
    print(render(run_rollback_ablation(modules=quick),
                 "Ablation: rollback mechanism"))
    print()
    print(render(run_ms_threshold_ablation(modules=quick),
                 "Ablation: MS->SL escalation threshold"))

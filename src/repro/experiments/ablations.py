"""Extra ablations beyond Table III, for the design choices DESIGN.md
calls out:

- **rollback** — the Score-Register rollback mechanism on vs off;
- **ms_threshold** — when to escalate from MS-mode to SL-mode error
  info (Algorithm 2's TH): 0 (always SL), 2 (paper default), 5 (never);
- **stimulus** — fixed-random vs closed-loop coverage-driven HR
  stimulus at equal transaction budget: per-module functional
  coverage achieved by each, plus the HR/FR impact of running the
  whole repair pipeline on the coverage-driven suite.

All are UVLLM-internal switches, so each comparison isolates exactly
one pipeline decision at a time.
"""

from repro.bench.registry import (
    get_module,
    make_coverage_evaluator,
    make_coverage_model,
    module_names,
)
from repro.cover.closure import CoverageDrivenSequence
from repro.errgen.generator import generate_dataset
from repro.runner.grid import expand_grid
from repro.runner.scheduler import run_units
from repro.uvm.sequence import RandomSequence


def _run_config(instances, config_overrides, attempts=2, jobs=1,
                cache_dir=None, backend=None):
    """One ablation arm: UVLLM with ``config_overrides`` applied.

    Routed through the campaign runner so each arm parallelizes and
    memoizes like any other campaign; the overrides are part of every
    unit's cache key, so arms never alias each other.

    Note one deliberate semantic change from the pre-runner code:
    ``seconds`` is now the mean modelled time across *all* attempts of
    an instance (the shared ``InstanceRecord`` convention) where the
    old loop reported only the final attempt's time.  HR/FR/rollback
    numbers are unchanged.
    """
    units = expand_grid(instances, ("uvllm",), attempts=attempts,
                        config_overrides=config_overrides, backend=backend)
    records = run_units(units, jobs=jobs, cache_dir=cache_dir)
    n = max(1, len(records))
    return {
        "hr": 100.0 * sum(1 for r in records if r.hit) / n,
        "fr": 100.0 * sum(1 for r in records if r.fixed) / n,
        "seconds": sum(r.seconds for r in records) / n,
        "rollbacks": sum(r.rollbacks for r in records),
        "n": len(records),
    }


def run_rollback_ablation(modules=None, per_operator=1, attempts=2,
                          seed=0, jobs=1, cache_dir=None, backend=None):
    """Rollback on vs off, functional errors only (where it matters)."""
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, cache_dir=cache_dir,
        )
        if inst.kind == "functional"
    ]
    return {
        "with_rollback": _run_config(
            instances, {"enable_rollback": True}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        ),
        "without_rollback": _run_config(
            instances, {"enable_rollback": False}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        ),
    }


def run_ms_threshold_ablation(modules=None, per_operator=1, attempts=2,
                              seed=0, thresholds=(0, 2, 5), jobs=1,
                              cache_dir=None, backend=None):
    """Sweep the MS->SL escalation threshold."""
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, cache_dir=cache_dir,
        )
        if inst.kind == "functional"
    ]
    results = {}
    for threshold in thresholds:
        results[f"ms_iterations={threshold}"] = _run_config(
            instances, {"ms_iterations": threshold}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        )
    return results


def compare_stimulus_coverage(name, seed=0, budget=None):
    """Functional coverage of fixed-random vs coverage-driven stimulus
    on one module's golden DUT, at the same transaction budget.

    Both arms are measured through the same simulator-backed
    evaluator (probe transitions included).  Returns a row dict; the
    closure loop may stop under budget when it reaches full closure,
    which the row records as ``driven_txns``.
    """
    bench = get_module(name)
    count = budget or bench.hr_count
    random_model = make_coverage_model(bench)
    make_coverage_evaluator(bench)(
        random_model,
        list(RandomSequence(bench.field_ranges, count=count, seed=seed,
                            hold_cycles=bench.hold_cycles)),
    )
    driven = CoverageDrivenSequence(
        bench.field_ranges, count=count, seed=seed,
        model_factory=lambda: make_coverage_model(bench),
        evaluator=make_coverage_evaluator(bench),
        hold_cycles=bench.hold_cycles,
    )
    driven_txns = len(list(driven))
    return {
        "budget": count,
        "random": random_model.coverage,
        "driven": driven.model.coverage,
        "driven_txns": driven_txns,
    }


def run_stimulus_ablation(modules=None, per_operator=1, attempts=2,
                          seed=0, jobs=1, cache_dir=None, backend=None,
                          budget=None):
    """Fixed-random vs coverage-driven HR stimulus at equal budget.

    Two comparisons, both closed-loop-relevant:

    - ``coverage`` — per-module functional coverage each stimulus
      mode achieves on the golden DUT (the closure claim: driven
      must close at least as much as random everywhere);
    - ``hr`` — the repair campaign re-run with the HR suite's bulk
      random block swapped for the coverage-driven engine
      (``UVLLMConfig.stimulus``), functional errors only.
    """
    names = list(modules) if modules else module_names()
    coverage = {
        name: compare_stimulus_coverage(name, seed=seed, budget=budget)
        for name in names
    }
    instances = [
        inst for inst in generate_dataset(
            seed=seed, per_operator=per_operator, target=None,
            modules=modules, cache_dir=cache_dir,
        )
        if inst.kind == "functional"
    ]
    hr = {
        "fixed_random": _run_config(
            instances, {"stimulus": "random"}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        ),
        "coverage_driven": _run_config(
            instances, {"stimulus": "coverage"}, attempts,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        ),
    }
    return {"coverage": coverage, "hr": hr}


def render_stimulus(results, title="Ablation: coverage-driven stimulus"):
    lines = [title,
             f"{'module':<18}{'budget':>8}{'random %':>10}"
             f"{'driven %':>10}{'driven txns':>13}"]
    for name, row in results["coverage"].items():
        lines.append(
            f"{name:<18}{row['budget']:>8}"
            f"{100.0 * row['random']:>10.1f}"
            f"{100.0 * row['driven']:>10.1f}"
            f"{row['driven_txns']:>13}"
        )
    lines.append("")
    lines.append(f"{'config':<24}{'HR %':>8}{'FR %':>8}{'t (s)':>9}"
                 f"{'rollbacks':>11}")
    for label, row in results["hr"].items():
        lines.append(
            f"{label:<24}{row['hr']:>8.1f}{row['fr']:>8.1f}"
            f"{row['seconds']:>9.2f}{row['rollbacks']:>11d}"
        )
    return "\n".join(lines)


def render(results, title):
    lines = [title,
             f"{'config':<24}{'HR %':>8}{'FR %':>8}{'t (s)':>9}"
             f"{'rollbacks':>11}"]
    for label, row in results.items():
        lines.append(
            f"{label:<24}{row['hr']:>8.1f}{row['fr']:>8.1f}"
            f"{row['seconds']:>9.2f}{row['rollbacks']:>11d}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    quick = ["counter_12", "edge_detect", "accu"]
    print(render(run_rollback_ablation(modules=quick),
                 "Ablation: rollback mechanism"))
    print()
    print(render(run_ms_threshold_ablation(modules=quick),
                 "Ablation: MS->SL escalation threshold"))
    print()
    print(render_stimulus(run_stimulus_ablation(modules=quick)))

"""Table II — segmented stage contributions per module group, vs MEIC.

For every (module group x error kind) the table reports each UVLLM
stage's contribution to FR and execution time (Pre-processing, Repair
in MS mode, Repair in SL mode), the UVLLM totals, MEIC's totals, and
the speedup.  Expected shape: pre-processing resolves ~75% of syntax
errors cheaply; MS mode dominates functional fixes; overall ~10x faster
than MEIC.
"""

from repro.errgen.generator import generate_dataset
from repro.experiments.runner import run_methods, group_records

GROUPS = ("arithmetic", "control", "memory", "misc")
KINDS = ("syntax", "functional")
STAGES = ("preprocess", "ms", "sl")


def run(modules=None, per_operator=1, attempts=3, seed=0, jobs=1,
        cache_dir=None, backend=None):
    instances = generate_dataset(
        seed=seed, per_operator=per_operator, target=None, modules=modules,
        cache_dir=cache_dir,
    )
    records = run_methods(instances, ("uvllm", "meic"), attempts=attempts,
                          jobs=jobs, cache_dir=cache_dir,
                          backend=backend)
    uvllm = [r for r in records if r.method == "uvllm"]
    meic = [r for r in records if r.method == "meic"]

    results = {"rows": [], "overall": None}
    for kind in KINDS:
        for group in GROUPS + (None,):  # None = kind-level summary row
            u_sub = [
                r for r in uvllm if r.kind == kind
                and (group is None or r.category == group)
            ]
            m_sub = [
                r for r in meic if r.kind == kind
                and (group is None or r.category == group)
            ]
            if not u_sub:
                continue
            results["rows"].append(
                _row(group or kind.upper(), kind, u_sub, m_sub)
            )
    results["overall"] = _row("Overall", None, uvllm, meic)
    return results


def _row(label, kind, uvllm_records, meic_records):
    n = len(uvllm_records)
    row = {"label": label, "kind": kind, "n": n}
    for stage in STAGES:
        stage_fixed = [
            r for r in uvllm_records if r.fixed and r.stage == stage
        ]
        row[f"fr_{stage}"] = 100.0 * len(stage_fixed) / n if n else 0.0
        row[f"t_{stage}"] = (
            sum(r.stage_seconds.get(stage, 0.0) for r in uvllm_records) / n
            if n else 0.0
        )
    row["fr_uvllm"] = 100.0 * sum(1 for r in uvllm_records if r.fixed) / n \
        if n else 0.0
    row["t_uvllm"] = sum(r.seconds for r in uvllm_records) / n if n else 0.0
    m = len(meic_records)
    row["fr_meic"] = 100.0 * sum(1 for r in meic_records if r.fixed) / m \
        if m else 0.0
    row["t_meic"] = sum(r.seconds for r in meic_records) / m if m else 0.0
    row["speedup"] = row["t_meic"] / row["t_uvllm"] if row["t_uvllm"] else 0.0
    return row


def render(results):
    header = (
        f"{'Group':<14}{'Pre FR':>8}{'Pre T':>8}{'MS FR':>8}{'MS T':>8}"
        f"{'SL FR':>8}{'SL T':>8}{'UVLLM FR':>10}{'UVLLM T':>9}"
        f"{'MEIC FR':>9}{'MEIC T':>9}{'Speedup':>9}"
    )
    lines = ["Table II — segmented stage contributions", header]
    for row in results["rows"] + [results["overall"]]:
        lines.append(
            f"{row['label']:<14}"
            f"{row['fr_preprocess']:>8.2f}{row['t_preprocess']:>8.2f}"
            f"{row['fr_ms']:>8.2f}{row['t_ms']:>8.2f}"
            f"{row['fr_sl']:>8.2f}{row['t_sl']:>8.2f}"
            f"{row['fr_uvllm']:>10.2f}{row['t_uvllm']:>9.2f}"
            f"{row['fr_meic']:>9.2f}{row['t_meic']:>9.2f}"
            f"{row['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))

"""Error localization: static DFG + time-aware dynamic slicing.

Implements the paper's post-processing stage (Algorithm 2): mismatch
timestamps and signals are pulled from the UVM log, input values are
read from the simulation waveform at those timestamps, and suspicious
code lines are found by traversing the data-flow graph backwards from
each mismatching signal, ranked by which paths were actually active.
"""

from repro.locate.dfg import DataFlowGraph, build_dfg
from repro.locate.slicing import SuspiciousLine, dynamic_slice
from repro.locate.engine import ErrorInfo, LocalizationEngine

__all__ = [
    "DataFlowGraph",
    "build_dfg",
    "SuspiciousLine",
    "dynamic_slice",
    "ErrorInfo",
    "LocalizationEngine",
]

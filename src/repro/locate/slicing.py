"""Time-aware dynamic slicing (Algorithm 2, function ErrInfoFetch).

Starting from a mismatching signal at a mismatch timestamp, walk the
DFG backwards.  Every definition site on the walk is *suspicious*; sites
whose guard conditions were actually satisfied at the mismatch time
(checked against the recorded waveform) rank higher, because they were
on the executed path that produced the wrong value.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hdl import ast
from repro.sim.eval import Evaluator
from repro.sim.values import Value


@dataclass
class SuspiciousLine:
    """One suspicious source line with its activation evidence."""

    line: int
    signal: str
    active: bool          # guards satisfied at the mismatch time
    depth: float          # distance from the mismatching signal
    kind: str = "seq"

    def sort_key(self):
        # Guard (condition) lines rank just after the assignment they
        # dominate: the assignment itself is the likelier defect site.
        bias = 0.5 if self.kind == "guard" else 0.0
        return (0 if self.active else 1, self.depth + bias, self.line)


class _TraceResolver:
    """Evaluator resolver that reads signal values from a waveform trace
    at a fixed timestamp."""

    def __init__(self, trace, time, prefix=""):
        self.trace = trace
        self.time = time
        self.prefix = prefix

    def _history_value(self, name):
        history = self.trace.get(
            f"{self.prefix}.{name}" if self.prefix else name
        )
        if not history:
            return None
        best = None
        for when, value in history:
            if when <= self.time:
                best = value
            else:
                break
        return best

    def read(self, name):
        value = self._history_value(name)
        if value is None:
            return Value.all_x(1)
        return value

    def read_memory(self, name):
        return None

    def width_of(self, name):
        value = self._history_value(name)
        return value.width if value is not None else 1

    def signed_of(self, name):
        value = self._history_value(name)
        return value.signed if value is not None else False


def _guard_active(guards, resolver):
    """Do all guards of a def-site hold at the trace time?

    ``None``-truth guards (case-default arms) are treated as active.
    Guards referencing parameters or untracked names fall back to
    "active" — we never drop a line for lack of evidence, only de-rank.
    """
    evaluator = Evaluator(resolver)
    for cond, required in guards:
        if required is None:
            continue
        try:
            value = evaluator.eval(cond)
        except Exception:
            return True
        truth = value.is_truthy()
        if truth is None:
            return True
        if truth != required:
            return False
    return True


def dynamic_slice(dfg, mismatch_signal, trace=None, time=None,
                  max_depth=4, max_lines=12):
    """Backward slice from ``mismatch_signal``.

    Returns suspicious lines ordered by (active-first, depth, line).
    ``trace``/``time`` enable the dynamic ranking; without them every
    site is considered active (pure static slice).
    """
    resolver = _TraceResolver(trace or {}, time or 0)
    results: List[SuspiciousLine] = []
    seen_sites = set()
    frontier = [(mismatch_signal, 0)]
    visited_signals = {mismatch_signal}
    while frontier:
        signal, depth = frontier.pop(0)
        if depth > max_depth:
            continue
        for site in dfg.defs_of(signal):
            key = (site.target, site.line)
            if key in seen_sites:
                continue
            seen_sites.add(key)
            active = True
            if trace is not None and time is not None:
                active = _guard_active(site.guards, resolver)
            results.append(
                SuspiciousLine(
                    line=site.line,
                    signal=site.target,
                    active=active,
                    depth=depth,
                    kind=site.kind,
                )
            )
            # Condition lines dominating this assignment are suspicious
            # too — wrong-judgment-value defects live on them.
            for guard_line in site.guard_lines:
                if guard_line != site.line:
                    results.append(
                        SuspiciousLine(
                            line=guard_line,
                            signal=site.target,
                            active=active,
                            depth=depth,
                            kind="guard",
                        )
                    )
            for read in site.reads:
                if read not in visited_signals:
                    visited_signals.add(read)
                    frontier.append((read, depth + 1))
    results.sort(key=SuspiciousLine.sort_key)
    return results[:max_lines]


def related_signals(dfg, mismatch_signal, max_depth=3):
    """Algorithm 2 lines 14-19: signals on the mismatch signal's paths
    that should be promoted into the MS set."""
    found = []
    frontier = [(mismatch_signal, 0)]
    visited = {mismatch_signal}
    while frontier:
        signal, depth = frontier.pop(0)
        if depth >= max_depth:
            continue
        for site in dfg.defs_of(signal):
            for read in site.reads:
                if read not in visited:
                    visited.add(read)
                    found.append(read)
                    frontier.append((read, depth + 1))
    return found

"""Static data-flow graph construction from the module AST.

Each *definition site* (an assignment, continuous or procedural) becomes
an edge set: the defined signal depends on every signal read by the RHS,
by any index expressions on the LHS, and by every enclosing control
condition (control dependence).  Edges remember their source line and
the guard expressions that dominate them, which the dynamic slicer
re-evaluates against the waveform.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.hdl import ast


@dataclass
class DefSite:
    """One assignment defining ``target`` at ``line``."""

    target: str
    line: int
    reads: Tuple[str, ...]
    guards: Tuple[Tuple[object, bool], ...]  # (cond expr, required truth)
    kind: str  # "assign" | "seq" | "comb"

    @property
    def guard_lines(self):
        """Source lines of the dominating condition expressions."""
        lines = []
        for cond, _ in self.guards:
            location = getattr(cond, "location", None)
            if location is not None and location.line:
                lines.append(location.line)
        return tuple(dict.fromkeys(lines))


@dataclass
class DataFlowGraph:
    """Definition sites indexed by target signal."""

    module: ast.Module
    sites: List[DefSite] = field(default_factory=list)

    def defs_of(self, signal):
        return [site for site in self.sites if site.target == signal]

    def readers_of(self, signal):
        return [site for site in self.sites if signal in site.reads]

    def dependencies(self, signal):
        """All signals ``signal`` transitively depends on."""
        seen = set()
        frontier = [signal]
        while frontier:
            current = frontier.pop()
            for site in self.defs_of(current):
                for read in site.reads:
                    if read not in seen:
                        seen.add(read)
                        frontier.append(read)
        return seen

    def lines_for(self, signal):
        """Source lines of all definition sites of ``signal``."""
        return sorted({site.line for site in self.defs_of(signal)})


def _expr_reads(expr):
    if expr is None:
        return []
    return [
        node.name for node in expr.walk() if isinstance(node, ast.Identifier)
    ]


def _target_name(target):
    node = target
    while isinstance(node, (ast.Index, ast.PartSelect)):
        node = node.base
    if isinstance(node, ast.Identifier):
        return node.name
    return None


def _target_index_reads(target):
    reads = []
    node = target
    while isinstance(node, (ast.Index, ast.PartSelect)):
        if isinstance(node, ast.Index):
            reads.extend(_expr_reads(node.index))
        else:
            reads.extend(_expr_reads(node.msb))
            reads.extend(_expr_reads(node.lsb))
        node = node.base
    return reads


class _DfgBuilder:
    def __init__(self, module):
        self.module = module
        self.sites = []

    def build(self):
        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._add_assign(
                    item.target, item.value, item.location.line, (), "assign"
                )
            elif isinstance(item, ast.Always):
                kind = "seq" if item.sensitivity.is_clocked else "comb"
                self._visit_stmt(item.body, (), kind)
            elif isinstance(item, ast.Instance):
                self._add_instance(item)
        return DataFlowGraph(self.module, self.sites)

    def _add_assign(self, target, value, line, guards, kind):
        targets = []
        if isinstance(target, ast.Concat):
            for part in target.parts:
                name = _target_name(part)
                if name:
                    targets.append((name, part))
        else:
            name = _target_name(target)
            if name:
                targets.append((name, target))
        reads = tuple(_expr_reads(value))
        for name, target_node in targets:
            index_reads = tuple(_target_index_reads(target_node))
            guard_reads = tuple(
                read for cond, _ in guards for read in _expr_reads(cond)
            )
            self.sites.append(
                DefSite(
                    target=name,
                    line=line,
                    reads=tuple(dict.fromkeys(
                        reads + index_reads + guard_reads
                    )),
                    guards=guards,
                    kind=kind,
                )
            )

    def _visit_stmt(self, stmt, guards, kind):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._visit_stmt(inner, guards, kind)
        elif isinstance(stmt, ast.Assign):
            self._add_assign(
                stmt.target, stmt.value, stmt.location.line, guards, kind
            )
        elif isinstance(stmt, ast.If):
            self._visit_stmt(
                stmt.then_stmt, guards + ((stmt.cond, True),), kind
            )
            if stmt.else_stmt is not None:
                self._visit_stmt(
                    stmt.else_stmt, guards + ((stmt.cond, False),), kind
                )
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                if item.is_default:
                    # Default arm: guard on the subject only (weak guard).
                    self._visit_stmt(
                        item.body, guards + ((stmt.subject, None),), kind
                    )
                else:
                    for label in item.labels:
                        cond = ast.Binary(
                            op="==", left=stmt.subject, right=label,
                            location=stmt.location,
                        )
                        self._visit_stmt(
                            item.body, guards + ((cond, True),), kind
                        )
        elif isinstance(stmt, ast.For):
            inner_guards = guards + ((stmt.cond, True),)
            self._visit_stmt(stmt.init, guards, kind)
            self._visit_stmt(stmt.body, inner_guards, kind)
            self._visit_stmt(stmt.step, inner_guards, kind)
        elif isinstance(stmt, ast.While):
            self._visit_stmt(stmt.body, guards + ((stmt.cond, True),), kind)

    def _add_instance(self, item):
        """Treat an instance as: every output conn depends on all inputs."""
        input_reads = []
        output_targets = []
        for conn in item.connections:
            if conn.expr is None:
                continue
            name = _target_name(conn.expr)
            # Without child module info here, classify by usage: a plain
            # identifier/select could be either; record both directions.
            reads = _expr_reads(conn.expr)
            input_reads.extend(reads)
            if name:
                output_targets.append(name)
        for target in output_targets:
            self.sites.append(
                DefSite(
                    target=target,
                    line=item.location.line,
                    reads=tuple(
                        r for r in dict.fromkeys(input_reads) if r != target
                    ),
                    guards=(),
                    kind="assign",
                )
            )


def build_dfg(module):
    """Build the :class:`DataFlowGraph` for a module AST."""
    return _DfgBuilder(module).build()

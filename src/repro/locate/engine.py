"""The localization engine: UVM log + waveform -> ErrorInfo.

This is UVLLM's post-processing stage (Fig. 2, step 3).  The engine runs
in two escalating modes, matching the paper's segmented information
extraction strategy:

- **MS mode** (early iterations): only mismatch signals and the input
  values at the first mismatch timestamps go into the prompt — cheap in
  tokens, enough for most shallow errors.
- **SL mode** (after ``ms_iterations`` failed repairs): the dynamic
  slicer adds actual-execution-path suspicious lines, giving the LLM
  precise candidate locations at higher token cost.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hdl.parser import parse_source
from repro.locate.dfg import build_dfg
from repro.locate.slicing import dynamic_slice, related_signals


@dataclass
class ErrorInfo:
    """Distilled error information handed to the repair agent."""

    mode: str = "MS"                      # "MS" or "SL"
    pass_rate: float = 0.0
    mismatch_signals: List[str] = field(default_factory=list)
    mismatch_times: List[int] = field(default_factory=list)
    input_values: List[dict] = field(default_factory=list)
    expected_actual: List[tuple] = field(default_factory=list)
    suspicious_lines: List = field(default_factory=list)
    lint_notes: List[str] = field(default_factory=list)
    sim_error: str = ""

    def summary(self, source_lines=None, max_cases=3):
        """Human/LLM-readable rendering used inside prompts."""
        parts = []
        if self.sim_error:
            parts.append(f"Simulation failed: {self.sim_error}")
        if self.mismatch_signals:
            parts.append(
                "Mismatch signals: " + ", ".join(self.mismatch_signals)
            )
        parts.append(f"Test pass rate: {self.pass_rate:.2%}")
        for index, (signal, expected, actual) in enumerate(
            self.expected_actual[:max_cases]
        ):
            time = (
                self.mismatch_times[index]
                if index < len(self.mismatch_times) else "?"
            )
            inputs = (
                self.input_values[index]
                if index < len(self.input_values) else {}
            )
            rendered_inputs = ", ".join(
                f"{k}={v}" for k, v in sorted(inputs.items())
            )
            parts.append(
                f"@t={time}: signal '{signal}' expected {expected} got "
                f"{actual} (inputs: {rendered_inputs})"
            )
        if self.lint_notes:
            parts.append("Static analysis notes:")
            parts.extend(f"  {note}" for note in self.lint_notes)
        if self.mode == "SL" and self.suspicious_lines:
            parts.append("Suspicious lines (most likely first):")
            for item in self.suspicious_lines:
                text = ""
                if source_lines and 1 <= item.line <= len(source_lines):
                    text = source_lines[item.line - 1].strip()
                marker = "*" if item.active else " "
                parts.append(
                    f"  {marker} line {item.line} (drives '{item.signal}'): "
                    f"{text}"
                )
        return "\n".join(parts)


class LocalizationEngine:
    """Builds :class:`ErrorInfo` from a UVM test result."""

    def __init__(self, ms_iterations=2, max_lines=12, max_depth=4):
        self.ms_iterations = ms_iterations
        self.max_lines = max_lines
        self.max_depth = max_depth

    def analyze(self, source, result, iteration=0):
        """Produce error info for one failed UVM run.

        ``iteration`` selects MS vs SL mode (Algorithm 2, line 21:
        ``ErrInfo = (Iter < TH) ? MS : SL``).
        """
        mode = "MS" if iteration < self.ms_iterations else "SL"
        info = ErrorInfo(mode=mode, pass_rate=result.pass_rate)
        if not result.ok:
            info.sim_error = result.error
            return info

        # Static width diagnostics sharpen bitwidth-class repairs.
        try:
            from repro.lint.linter import Linter

            lint = Linter(enabled_rules=["WIDTH"]).lint(source)
            for diag in lint.warnings_with_code("WIDTHTRUNC", "WIDTHEXPAND"):
                info.lint_notes.append(
                    f"Lint line {diag.location.line}: {diag.message}"
                )
        except Exception:
            pass

        # ErrChk: mismatch timestamps, signals, and the input values at
        # those timestamps (from the recorded waveform / transactions).
        seen_signals = []
        for record in result.mismatches:
            if record.signal not in seen_signals:
                seen_signals.append(record.signal)
                info.mismatch_times.append(record.time)
                info.input_values.append(dict(record.inputs))
                info.expected_actual.append(
                    (
                        record.signal,
                        record.expected.to_display(),
                        record.actual.to_display(),
                    )
                )
        info.mismatch_signals = list(seen_signals)

        if mode == "SL" and info.mismatch_signals:
            try:
                source_file = parse_source(source)
                module = source_file.modules[-1]
            except Exception:
                return info
            dfg = build_dfg(module)
            promoted = list(info.mismatch_signals)
            for signal in info.mismatch_signals:
                for extra in related_signals(dfg, signal, max_depth=2):
                    if extra not in promoted:
                        promoted.append(extra)
            collected = []
            seen_lines = set()
            for index, signal in enumerate(info.mismatch_signals):
                time = (
                    info.mismatch_times[index]
                    if index < len(info.mismatch_times) else None
                )
                for item in dynamic_slice(
                    dfg, signal, trace=result.trace, time=time,
                    max_depth=self.max_depth, max_lines=self.max_lines,
                ):
                    if item.line not in seen_lines:
                        seen_lines.add(item.line)
                        collected.append(item)
            collected.sort(key=lambda s: s.sort_key())
            info.suspicious_lines = collected[: self.max_lines]
        return info

"""Hit Rate and Fix Rate (paper Eqs. 1 and 2).

- **HR** — the repaired code passes every test case of the repair-time
  suite (the method's own acceptance criterion).
- **FR** — the repaired code survives *independent expert validation*;
  mechanized here as the extended held-out suite (more vectors,
  different seeds, corner-biased batches, mid-stream resets).  A repair
  that overfits the repair-time suite inflates HR but not FR.
"""

from dataclasses import dataclass, field
from typing import List


@dataclass
class RateSummary:
    """Aggregated HR/FR over a set of instances."""

    total: int = 0
    hits: int = 0
    fixes: int = 0

    def add(self, hit, fixed):
        self.total += 1
        self.hits += 1 if hit else 0
        self.fixes += 1 if fixed else 0

    @property
    def hr(self):
        return 100.0 * self.hits / self.total if self.total else 0.0

    @property
    def fr(self):
        return 100.0 * self.fixes / self.total if self.total else 0.0

    @property
    def gap(self):
        """The HR-FR deviation (shaded regions of Figs. 5-6)."""
        return self.hr - self.fr

    def merge(self, other):
        self.total += other.total
        self.hits += other.hits
        self.fixes += other.fixes
        return self


def hit_rate(outcomes):
    """HR over an iterable of objects with a boolean ``hit``."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return 100.0 * sum(1 for o in outcomes if o.hit) / len(outcomes)


def fix_rate(outcomes):
    """FR over an iterable of objects with a boolean ``fixed``."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return 100.0 * sum(1 for o in outcomes if o.fixed) / len(outcomes)

"""Evaluation metrics: Hit Rate, Fix Rate, and the execution-time model."""

from repro.metrics.rates import hit_rate, fix_rate, RateSummary
from repro.metrics.timing import SimClock, TimingModel

__all__ = ["hit_rate", "fix_rate", "RateSummary", "SimClock", "TimingModel"]

"""Deterministic execution-time model.

Wall-clock on the authors' EPYC testbed cannot be reproduced, but the
paper's timing claims are *structural*: pre-processing is cheap, MS-mode
repairs cost one focused LLM round-trip each, and MEIC is ~10x slower
because it ships raw logs (large prompts), regenerates whole modules
(large completions), and iterates more.  All of those quantities are
token and event counts this model converts to seconds with fixed
GPT-4-turbo-era constants — so the *shape* of Table II's Texec columns
is genuinely produced by the pipeline, not hard-coded.
"""

from dataclasses import dataclass, field

#: Model constants (seconds).
LLM_LATENCY_BASE = 0.9          # request overhead per API call
LLM_SECONDS_PER_1K_PROMPT = 0.35
LLM_SECONDS_PER_1K_COMPLETION = 12.0   # ~80 tok/s decode
LINT_SECONDS = 0.25             # one Verilator pass
SIM_SECONDS_BASE = 0.40         # elaboration + testbench start
SIM_SECONDS_PER_KEVENT = 0.08   # per thousand simulator events
TEMPLATE_FIX_SECONDS = 0.02     # scripted warning fix


@dataclass
class SimClock:
    """Accumulates modelled seconds, attributable to named stages."""

    seconds: float = 0.0
    by_stage: dict = field(default_factory=dict)

    def charge(self, stage, seconds):
        self.seconds += seconds
        self.by_stage[stage] = self.by_stage.get(stage, 0.0) + seconds
        return seconds

    def stage_seconds(self, stage):
        return self.by_stage.get(stage, 0.0)


class TimingModel:
    """Converts pipeline events into modelled seconds on a SimClock."""

    def __init__(self, clock=None):
        self.clock = clock or SimClock()

    def llm_call(self, stage, response):
        seconds = (
            LLM_LATENCY_BASE
            + response.prompt_tokens / 1000.0 * LLM_SECONDS_PER_1K_PROMPT
            + response.completion_tokens / 1000.0
            * LLM_SECONDS_PER_1K_COMPLETION
        )
        return self.clock.charge(stage, seconds)

    def lint(self, stage="preprocess"):
        return self.clock.charge(stage, LINT_SECONDS)

    def template_fix(self, count=1, stage="preprocess"):
        return self.clock.charge(stage, TEMPLATE_FIX_SECONDS * count)

    def simulation(self, event_count, stage="uvm"):
        seconds = SIM_SECONDS_BASE + event_count / 1000.0 * \
            SIM_SECONDS_PER_KEVENT
        return self.clock.charge(stage, seconds)

    @property
    def seconds(self):
        return self.clock.seconds

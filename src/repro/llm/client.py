"""Abstract LLM client and token accounting.

Token counts drive two things: the simulated cost model (GPT-4-turbo
pricing, as quoted in the paper: $0.01 / 1K input, $0.03 / 1K output
tokens) and the deterministic execution-time model (tokens / throughput
= seconds of API latency).
"""

from dataclasses import dataclass, field

#: GPT-4-turbo pricing per 1K tokens (paper Section II).
INPUT_COST_PER_1K = 0.01
OUTPUT_COST_PER_1K = 0.03


def estimate_tokens(text):
    """Crude GPT-style token estimate (~4 characters per token)."""
    return max(1, len(text) // 4)


@dataclass
class LLMResponse:
    """One completion."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str = ""

    @property
    def total_tokens(self):
        return self.prompt_tokens + self.completion_tokens


@dataclass
class TokenBudget:
    """Cumulative token/cost accounting across a verification run."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    calls: int = 0

    def add(self, response):
        self.prompt_tokens += response.prompt_tokens
        self.completion_tokens += response.completion_tokens
        self.calls += 1

    @property
    def cost_usd(self):
        return (
            self.prompt_tokens / 1000.0 * INPUT_COST_PER_1K
            + self.completion_tokens / 1000.0 * OUTPUT_COST_PER_1K
        )


class LLMClient:
    """Interface every model backend implements.

    ``complete(prompt, task=..., temperature=...)`` returns an
    :class:`LLMResponse`.  ``task`` is a routing hint ("syntax",
    "repair", "refmodel", "judge") that real deployments would encode in
    the system prompt; the mock uses it to select its internal engine.
    """

    model_name = "abstract"

    def __init__(self):
        self.budget = TokenBudget()

    def complete(self, prompt, task="repair", temperature=0.0):
        raise NotImplementedError

    def _record(self, prompt, text):
        response = LLMResponse(
            text=text,
            prompt_tokens=estimate_tokens(prompt),
            completion_tokens=estimate_tokens(text),
            model=self.model_name,
        )
        self.budget.add(response)
        return response

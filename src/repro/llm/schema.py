"""Structured-output handling (paper Fig. 4 / Section III-D).

The repair agents require responses in JSON conforming to a schema with
a ``correct`` element holding original/patched code pairs.  This module
carries the schema, a small JSON-Schema-subset validator (type,
required, properties, items, enum, minItems), and a tolerant parser
that strips markdown fences the way production harnesses do.
"""

import json

#: The repair-agent output schema (Fig. 4).
REPAIR_SCHEMA = {
    "type": "object",
    "required": ["module_name", "analysis", "correct"],
    "properties": {
        "module_name": {"type": "string"},
        "analysis": {"type": "string"},
        "correct": {
            "type": "array",
            "items": {
                "type": "array",
                "items": {"type": "string"},
                "minItems": 2,
            },
        },
    },
}

#: Whole-module regeneration schema (ablation UVLLM_comp, Table III).
COMPLETE_SCHEMA = {
    "type": "object",
    "required": ["module_name", "analysis", "code"],
    "properties": {
        "module_name": {"type": "string"},
        "analysis": {"type": "string"},
        "code": {"type": "string"},
    },
}


class SchemaValidationError(Exception):
    """The response does not conform to the requested schema."""


def validate_schema(data, schema, path="$"):
    """Validate ``data`` against the supported JSON-Schema subset.

    Raises :class:`SchemaValidationError` with a JSON-path on failure;
    returns ``data`` on success.
    """
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(data, dict):
            raise SchemaValidationError(f"{path}: expected object")
        for key in schema.get("required", []):
            if key not in data:
                raise SchemaValidationError(
                    f"{path}: missing required key '{key}'"
                )
        for key, sub in schema.get("properties", {}).items():
            if key in data:
                validate_schema(data[key], sub, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(data, list):
            raise SchemaValidationError(f"{path}: expected array")
        minimum = schema.get("minItems")
        if minimum is not None and len(data) < minimum:
            raise SchemaValidationError(
                f"{path}: expected at least {minimum} items"
            )
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, item in enumerate(data):
                validate_schema(item, item_schema, f"{path}[{index}]")
    elif expected == "string":
        if not isinstance(data, str):
            raise SchemaValidationError(f"{path}: expected string")
    elif expected == "integer":
        if not isinstance(data, int) or isinstance(data, bool):
            raise SchemaValidationError(f"{path}: expected integer")
    elif expected == "number":
        if not isinstance(data, (int, float)) or isinstance(data, bool):
            raise SchemaValidationError(f"{path}: expected number")
    elif expected == "boolean":
        if not isinstance(data, bool):
            raise SchemaValidationError(f"{path}: expected boolean")
    if "enum" in schema and data not in schema["enum"]:
        raise SchemaValidationError(f"{path}: {data!r} not in enum")
    return data


def parse_structured_response(text, schema=REPAIR_SCHEMA):
    """Parse an LLM response into validated JSON.

    Tolerates ```json fences and leading/trailing prose (finds the
    outermost ``{...}``), then validates against ``schema``.
    """
    stripped = text.strip()
    if stripped.startswith("```"):
        first_newline = stripped.find("\n")
        stripped = stripped[first_newline + 1:]
        if stripped.rstrip().endswith("```"):
            stripped = stripped.rstrip()[:-3]
    start = stripped.find("{")
    end = stripped.rfind("}")
    if start < 0 or end < start:
        raise SchemaValidationError("no JSON object found in response")
    try:
        data = json.loads(stripped[start:end + 1])
    except json.JSONDecodeError as exc:
        raise SchemaValidationError(f"invalid JSON: {exc}") from exc
    return validate_schema(data, schema)

"""LLM layer: client interface, prompts, structured output, mock model.

The :class:`LLMClient` interface matches what an OpenAI-API wrapper
would expose (prompt in, text + token counts out).  The default
implementation is :class:`MockLLM` — a deterministic simulated LLM whose
repair competence genuinely depends on the error information quality in
the prompt (see DESIGN.md, substitutions).  Swapping in a real API
client requires implementing ``complete`` only.
"""

from repro.llm.client import LLMClient, LLMResponse, TokenBudget
from repro.llm.schema import (
    REPAIR_SCHEMA,
    SchemaValidationError,
    parse_structured_response,
    validate_schema,
)
from repro.llm.prompts import (
    build_repair_prompt,
    build_syntax_prompt,
    extract_section,
)
from repro.llm.mock import MockLLM, MockLLMProfile

__all__ = [
    "LLMClient",
    "LLMResponse",
    "TokenBudget",
    "REPAIR_SCHEMA",
    "SchemaValidationError",
    "parse_structured_response",
    "validate_schema",
    "build_repair_prompt",
    "build_syntax_prompt",
    "extract_section",
    "MockLLM",
    "MockLLMProfile",
]

"""Heuristic functional-repair engine.

Encodes the "common Verilog error" patterns of Table I the way a
code-trained LLM would have absorbed them: operator misuses, wrong
constants/judgment values, polarity flips, bitwidth declaration slips,
sensitivity-list omissions, and near-name variable confusion.

Given the DUT text and *focus lines* (whose quality depends on the
caller's localization — this is the paper's whole point), the engine
enumerates candidate single-line patches, ranked by error-pattern
priors plus hints mined from the expected/actual value pairs.  The
better the focus, the shorter the candidate list, the more likely the
correct patch is reached within the iteration budget.
"""

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass
class CandidatePatch:
    """One single-line repair candidate."""

    line_no: int
    original: str
    patched: str
    kind: str
    score: float = 0.0

    def as_pair(self):
        return (self.original, self.patched)


# Operator confusion pairs, ordered by real-world frequency
# (Sudakrishnan et al., "Understanding bug fix patterns in Verilog").
_OP_SWAPS = [
    ("+", "-"), ("-", "+"),
    ("&", "|"), ("|", "&"),
    ("^", "&"), ("^", "|"),
    ("<<", ">>"), (">>", "<<"),
    ("<", "<="), ("<=", "<"), (">", ">="), (">=", ">"),
    ("<", ">"), (">", "<"),
    ("==", "!="), ("!=", "=="),
    ("&&", "||"), ("||", "&&"),
]

_SIZED_LITERAL = re.compile(r"(\d+)'([bdh])([0-9a-fA-F_xXzZ?]+)")
_RANGE = re.compile(r"\[(\d+)\s*:\s*(\d+)\]")
_RESET_ZERO_LINE = re.compile(r"^\s*\w+\s*<?=\s*\d+'[bdh]_?0+\s*;\s*$")
_RESET_NAME = re.compile(r"(rst|reset)", re.IGNORECASE)


def _derive_hints(hints):
    """Classify the expected/actual discrepancy into repair priors.

    - *truncation*: actual equals expected with high bits dropped →
      bitwidth-class defect;
    - *arith*: small even difference → +/- confusion on an arithmetic
      line;
    - *inverted*: actual is the bitwise complement of expected →
      polarity defect;
    - *offby*: |expected-actual| == 1 → constant off-by-one.
    """
    expected = hints.get("expected")
    actual = hints.get("actual")
    if expected is None or actual is None:
        return
    if expected != actual and actual >= 0 and expected >= 0:
        for bits in range(1, 64):
            mask_value = (1 << bits) - 1
            if mask_value >= expected:
                break
            if actual == (expected & mask_value):
                hints["truncation"] = True
                break
        diff = abs(expected - actual)
        if diff in (1,):
            hints["offby"] = True
        if 0 < diff <= 64 and diff % 2 == 0:
            hints["arith"] = True
        if diff >= 2 and (diff & (diff - 1)) == 0:
            # A single dropped/flipped bit: width or indexing defect.
            hints["truncation"] = True
            if diff >= 16:
                # A high dropped bit is near-certain declaration
                # truncation (operator slips rarely produce exact
                # high powers of two).
                hints.setdefault("truncation_strong", True)
        for bits in (1, 2, 3, 4, 5, 8, 16, 17, 32):
            if expected ^ actual == (1 << bits) - 1:
                hints["inverted"] = True
                break


def _literal_value(base, digits):
    radix = {"b": 2, "d": 10, "h": 16}[base]
    try:
        return int(digits.replace("_", ""), radix)
    except ValueError:
        return None


def _render_literal(width, base, value):
    if base == "b":
        return f"{width}'b{value:b}"
    if base == "h":
        return f"{width}'h{value:x}"
    return f"{width}'d{value}"


def _find_assign_lines(lines, signal):
    """Lines that assign ``signal`` (textual scan, MS-mode focus)."""
    found = []
    pattern = re.compile(
        rf"^\s*(?:assign\s+)?{re.escape(signal)}\s*(?:\[[^\]]*\]\s*)?<?=[^=]"
    )
    brace_pattern = re.compile(
        rf"^\s*(?:assign\s+)?\{{[^}}]*\b{re.escape(signal)}\b[^}}]*\}}\s*<?="
    )
    for index, line in enumerate(lines, 1):
        if pattern.match(line) or brace_pattern.match(line):
            found.append(index)
    return found


def _driver_names(lines, focus_lines):
    """Identifiers read on the focus lines (one-hop back slice)."""
    names = set()
    for line_no in focus_lines:
        if 1 <= line_no <= len(lines):
            text = lines[line_no - 1]
            rhs = text.split("=", 1)[-1]
            names.update(_WORD.findall(rhs))
    return names


def _enclosing_condition_lines(lines, line_no):
    """Control-flow lines above ``line_no`` in the same always block."""
    found = []
    for index in range(line_no - 1, 0, -1):
        text = lines[index - 1]
        if "always" in text or re.match(r"\s*module\b", text):
            break
        if re.search(r"\b(if|case|casez|casex|while|for)\s*\(", text):
            found.append(index)
    return found


def _condition_names(lines, focus_lines):
    """Identifiers inside if/case/while conditions on focus lines."""
    names = set()
    for line_no in focus_lines:
        if 1 <= line_no <= len(lines):
            text = lines[line_no - 1]
            for match in re.finditer(r"\b(?:if|case|while)\s*\(([^)]*)\)",
                                     text):
                names.update(_WORD.findall(match.group(1)))
    return names


class FunctionalRepairEngine:
    """Candidate patch enumeration over focus lines."""

    def __init__(self, max_candidates=40):
        self.max_candidates = max_candidates

    def focus_lines_for(self, source, mismatch_signals, suspicious_lines,
                        hints=None):
        """Choose the lines to mutate.

        Suspicious lines (SL mode) take priority; otherwise MS mode
        derives focus from textual assignments to mismatch signals plus
        one hop of their drivers; with no information at all (raw-log
        baselines) every code line is in scope.  With truncation
        evidence in ``hints`` the declarations come first.
        """
        hints = hints or {}
        lines = source.splitlines()
        if hints.get("truncation_strong") and mismatch_signals:
            # Truncation evidence: inspect declarations first — the
            # narrow range is almost certainly the defect.
            decls = []
            for index, line in enumerate(lines, 1):
                if re.match(r"\s*(?:input|output|inout|reg|wire)\b", line) \
                        and _RANGE.search(line):
                    decls.append(index)
            rest = self.focus_lines_for(
                source, mismatch_signals, suspicious_lines, hints=None
            )
            return decls + [l for l in rest if l not in decls]
        if suspicious_lines:
            ordered = []
            for item in suspicious_lines:
                line_no = item.line if hasattr(item, "line") else int(item)
                if 1 <= line_no <= len(lines) and line_no not in ordered:
                    ordered.append(line_no)
            # Declarations of the mismatching signals are never DFG
            # sites but hold the bitwidth-class defects.
            for signal in mismatch_signals or ():
                for index, line in enumerate(lines, 1):
                    if re.match(
                        rf"\s*(?:input|output|inout|reg|wire)"
                        rf"(?:\s+(?:reg|wire|signed))*\s*"
                        rf"\[[^\]]*\]\s*{re.escape(signal)}\s*[;,)]",
                        line,
                    ) and index not in ordered:
                        ordered.append(index)
            return ordered
        if mismatch_signals:
            ordered = []
            for signal in mismatch_signals:
                for line_no in _find_assign_lines(lines, signal):
                    if line_no not in ordered:
                        ordered.append(line_no)
            # Any other line mentioning the signal (conditions, case
            # subjects) — wrong-judgment-value bugs live there.
            for signal in mismatch_signals:
                mention = re.compile(rf"\b{re.escape(signal)}\b")
                for index, line in enumerate(lines, 1):
                    if index not in ordered and mention.search(line) and \
                            line.strip() and "module" not in line:
                        ordered.append(index)
            # Control context: if/case/while lines above each focus
            # assignment inside the same always block (guards live on
            # separate lines in block style).
            for line_no in list(ordered):
                for guard_line in _enclosing_condition_lines(lines, line_no):
                    if guard_line not in ordered:
                        ordered.append(guard_line)
            # One hop back: everything read on those lines (including
            # guard signals), then their assignment/condition lines.
            drivers = _driver_names(lines, ordered) | _condition_names(
                lines, ordered
            )
            for name in sorted(drivers):
                for line_no in _find_assign_lines(lines, name):
                    if line_no not in ordered:
                        ordered.append(line_no)
            for name in sorted(drivers):
                mention = re.compile(
                    rf"\b(if|case|while)\b.*\b{re.escape(name)}\b"
                )
                for index, line in enumerate(lines, 1):
                    if index not in ordered and mention.search(line):
                        ordered.append(index)
            # Declarations of the involved signals (bitwidth bugs).
            for signal in list(mismatch_signals) + sorted(drivers):
                for index, line in enumerate(lines, 1):
                    if re.match(
                        rf"\s*(?:input|output|inout|reg|wire)"
                        rf"(?:\s+(?:reg|wire|signed))*\s*"
                        rf"\[[^\]]*\]\s*{re.escape(signal)}\s*[;,)]",
                        line,
                    ) and index not in ordered:
                        ordered.append(index)
            # Parameter definitions feeding the cone (state encodings,
            # wrong-constant bugs inside localparams).
            for name in sorted(drivers):
                for index, line in enumerate(lines, 1):
                    if index not in ordered and re.match(
                        r"\s*(?:parameter|localparam)\b", line
                    ) and re.search(rf"\b{re.escape(name)}\b", line):
                        ordered.append(index)
            if ordered:
                return ordered
        return [
            index for index, line in enumerate(lines, 1)
            if line.strip() and not line.strip().startswith("//")
        ]

    def candidates(self, source, focus_lines, hints=None):
        """Enumerate ranked :class:`CandidatePatch` objects."""
        lines = source.splitlines()
        hints = dict(hints or {})
        _derive_hints(hints)
        out: List[CandidatePatch] = []
        for rank, line_no in enumerate(focus_lines):
            if not (1 <= line_no <= len(lines)):
                continue
            text = lines[line_no - 1]
            base_score = 10.0 / (1.0 + rank)
            # Reset-style constant-zero assignments are rarely the bug.
            if _RESET_ZERO_LINE.match(text):
                base_score *= 0.3
            out.extend(
                self._operator_candidates(line_no, text, base_score, hints)
            )
            out.extend(
                self._constant_candidates(line_no, text, base_score, hints)
            )
            out.extend(
                self._polarity_candidates(line_no, text, base_score, hints)
            )
            out.extend(
                self._width_candidates(line_no, text, base_score, hints)
            )
            out.extend(
                self._sensitivity_candidates(line_no, text, base_score, source)
            )
            out.extend(
                self._identifier_candidates(line_no, text, base_score, source)
            )
        # Deduplicate on (line, patched) keeping the best score.
        best = {}
        for candidate in out:
            key = (candidate.line_no, candidate.patched)
            if key not in best or best[key].score < candidate.score:
                best[key] = candidate
        ranked = sorted(best.values(), key=lambda c: -c.score)
        return ranked[: self.max_candidates]

    # -- candidate families ----------------------------------------------------

    def _operator_candidates(self, line_no, text, base, hints=None):
        hints = hints or {}
        results = []
        arith_boost = 1.8 if hints.get("arith") else 1.0
        # Never touch the assignment operator itself; split around it.
        assign_match = re.search(r"<=|(?<![<>=!])=(?!=)", text)
        rhs_start = assign_match.end() if assign_match else 0
        for priority, (old, new) in enumerate(_OP_SWAPS):
            for match in re.finditer(re.escape(old), text):
                position = match.start()
                if position < rhs_start and old not in ("<", ">", "<=", ">="):
                    continue
                # Skip when part of a longer operator.
                before = text[position - 1] if position else ""
                after_index = position + len(old)
                after = text[after_index] if after_index < len(text) else ""
                window = before + old + after
                if old in ("<", ">") and ("<<" in window or ">>" in window
                                          or "=" in window):
                    continue
                if old in ("+", "-") and (before == old or after == old):
                    continue
                if old == "<=" and position < rhs_start:
                    continue  # non-blocking assignment operator
                patched = text[:position] + new + text[after_index:]
                score = base * (1.0 - 0.02 * priority) * 1.2
                if old in ("+", "-") and new in ("+", "-"):
                    score *= arith_boost
                results.append(
                    CandidatePatch(
                        line_no, text, patched, f"op:{old}->{new}", score
                    )
                )
        return results

    def _constant_candidates(self, line_no, text, base, hints):
        results = []
        expected = hints.get("expected")
        actual = hints.get("actual")
        for match in _SIZED_LITERAL.finditer(text):
            width = int(match.group(1))
            base_char = match.group(2)
            value = _literal_value(base_char, match.group(3))
            if value is None:
                continue
            top = (1 << width) - 1
            replacements = {value + 1, max(0, value - 1), 0, 1, top}
            if value:
                replacements.add(value // 2)
                replacements.add(min(top, value * 2 + 1))
            replacements.discard(value)
            in_comparison = bool(
                re.search(r"(==|!=|<=?|>=?)\s*" + re.escape(match.group(0)),
                          text)
                or re.search(re.escape(match.group(0)) + r"\s*(==|!=|<=?|>=?)",
                             text)
            )
            for replacement in sorted(replacements):
                if replacement > top:
                    continue
                new_literal = _render_literal(width, base_char, replacement)
                patched = (
                    text[: match.start()] + new_literal + text[match.end():]
                )
                score = base * (1.1 if in_comparison else 0.9)
                if expected is not None and actual is not None:
                    delta = abs(expected - actual)
                    if delta in (replacement, abs(replacement - value)):
                        score *= 1.5
                    if expected in (replacement,):
                        score *= 1.4
                if replacement in (0, 1):
                    score *= 1.05
                if hints.get("offby") and abs(replacement - value) == 1:
                    score *= 1.4
                results.append(
                    CandidatePatch(
                        line_no, text, patched,
                        f"const:{value}->{replacement}", score,
                    )
                )
        return results

    def _polarity_candidates(self, line_no, text, base, hints=None):
        hints = hints or {}
        inv_boost = 1.8 if hints.get("inverted") else 1.0
        results = []
        for match in re.finditer(r"\(\s*!\s*(\w+)\s*\)", text):
            weight = 0.8 * inv_boost
            # Flipping reset polarity is almost never the right repair.
            if _RESET_NAME.search(match.group(1)):
                weight *= 0.3
            patched = (
                text[: match.start()] + f"({match.group(1)})"
                + text[match.end():]
            )
            results.append(
                CandidatePatch(line_no, text, patched, "polarity:drop!",
                               base * weight)
            )
        for match in re.finditer(r"\(\s*(\w+)\s*\)", text):
            name = match.group(1)
            if name in ("begin", "end") or name.isdigit():
                continue
            if re.search(r"(if|while)\s*$", text[: match.start()]):
                patched = (
                    text[: match.start()] + f"(!{name})" + text[match.end():]
                )
                results.append(
                    CandidatePatch(line_no, text, patched, "polarity:add!",
                                   base * 0.7)
                )
        for match in re.finditer(r"~\s*(\w+)", text):
            patched = text[: match.start()] + match.group(1) + text[match.end():]
            results.append(
                CandidatePatch(line_no, text, patched, "polarity:drop~",
                               base * 0.6)
            )
        return results

    def _width_candidates(self, line_no, text, base, hints=None):
        hints = hints or {}
        results = []
        if not re.match(r"\s*(input|output|inout|wire|reg)\b", text):
            return results
        trunc_boost = 3.0 if hints.get("truncation") else 1.0
        for match in _RANGE.finditer(text):
            msb = int(match.group(1))
            lsb = int(match.group(2))
            for new_msb in (msb + 1, msb - 1):
                if new_msb < lsb:
                    continue
                if new_msb < msb and hints.get("truncation_strong"):
                    continue  # evidence says the range is too NARROW
                weight = 0.85
                if new_msb > msb:
                    weight *= trunc_boost  # widen when output truncated
                patched = (
                    text[: match.start()] + f"[{new_msb}:{lsb}]"
                    + text[match.end():]
                )
                results.append(
                    CandidatePatch(
                        line_no, text, patched,
                        f"width:{msb}->{new_msb}", base * weight,
                    )
                )
        return results

    def _sensitivity_candidates(self, line_no, text, base, source):
        results = []
        match = re.search(r"always\s*@\s*\(([^)]*)\)", text)
        if not match:
            return results
        sens = match.group(1)
        if "posedge" in sens and "negedge" not in sens:
            reset = None
            for name in re.findall(r"\bif\s*\(\s*!\s*(\w+)\s*\)", source):
                reset = name
                break
            if reset and reset not in sens:
                patched = text.replace(
                    match.group(0),
                    f"always @({sens.strip()} or negedge {reset})",
                )
                results.append(
                    CandidatePatch(
                        line_no, text, patched, "sens:add-reset", base * 1.3
                    )
                )
        if "negedge" in sens and "posedge" not in sens:
            patched = text.replace("negedge", "posedge", 1)
            results.append(
                CandidatePatch(line_no, text, patched, "sens:neg->pos",
                               base * 0.6)
            )
        if "*" not in sens and "edge" not in sens:
            patched = text.replace(match.group(0), "always @(*)")
            results.append(
                CandidatePatch(line_no, text, patched, "sens:star",
                               base * 0.9)
            )
        return results

    def _identifier_candidates(self, line_no, text, base, source):
        """Swap an identifier for a similarly named declared one
        (variable-name misuse: r1_temp vs r2_temp)."""
        declared = set()
        for match in re.finditer(
            r"\b(?:input|output|inout|wire|reg|integer)\b[^;]*;", source
        ):
            declared.update(_WORD.findall(match.group(0)))
        declared -= {
            "input", "output", "inout", "wire", "reg", "integer", "signed",
        }
        results = []
        assign_match = re.search(r"<=|(?<![<>=!])=(?!=)", text)
        rhs_start = assign_match.end() if assign_match else 0
        for match in _WORD.finditer(text, rhs_start):
            name = match.group(0)
            if name not in declared:
                continue
            for other in sorted(declared):
                if other == name:
                    continue
                similarity = _name_similarity(name, other)
                if similarity < 0.25 and len(declared) > 8:
                    continue  # keep the search space sane on big modules
                patched = (
                    text[: match.start()] + other + text[match.end():]
                )
                results.append(
                    CandidatePatch(
                        line_no, text, patched, f"ident:{name}->{other}",
                        base * 0.45 * (0.5 + similarity),
                    )
                )
        return results


def _name_similarity(a, b):
    """Cheap similarity: shared prefix/suffix fraction."""
    if not a or not b:
        return 0.0
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        prefix += 1
    suffix = 0
    for ca, cb in zip(reversed(a), reversed(b)):
        if ca != cb:
            break
        suffix += 1
    return (prefix + suffix) / max(len(a), len(b))

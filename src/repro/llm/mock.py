"""The simulated LLM (GPT-4-turbo stand-in).

``MockLLM`` implements :class:`~repro.llm.client.LLMClient` with a
deterministic, seeded model of an expert-but-imperfect Verilog debugger:

- **Syntax task** — runs the heuristic syntax-repair engine over the
  code in the prompt (keyword typos, missing ``;``/``end``/`endmodule``,
  missing declarations, wire/reg kinds).
- **Repair task** — mines the ERROR INFORMATION section for mismatch
  signals / suspicious lines / expected-vs-actual hints, asks the
  functional repair engine for ranked candidate patches, honours the
  DAMAGE REPAIRS exclusion list, and returns the best untried candidate
  as structured JSON.
- **Imperfection model** — with seeded probabilities the model
  *derails* (returns a lower-ranked candidate — the LLM "reasoning
  slip") or *hallucinates* (patches an unrelated line, or emits a patch
  that breaks the syntax).  Both rates grow with code size, mirroring
  the paper's observation that complex modules repair worse.

Everything is a pure function of (seed, prompt), so experiment runs are
exactly reproducible — the property the paper approximates by querying
GPT-4-turbo five times per instance.
"""

import hashlib
import json
import random
import re
from dataclasses import dataclass

from repro.llm.client import LLMClient
from repro.llm.prompts import (
    SECTION_CODE,
    SECTION_DAMAGE,
    SECTION_ERROR,
    SECTION_INSTRUCTIONS,
    extract_section,
)
from repro.llm.repair_knowledge import FunctionalRepairEngine
from repro.llm.syntax_knowledge import SyntaxRepairEngine


@dataclass
class MockLLMProfile:
    """Competence/imperfection knobs (calibrated against the paper)."""

    name: str = "gpt-4-turbo-sim"
    #: Probability a correct syntax-engine result is returned intact.
    syntax_skill: float = 0.96
    #: Base probability of skipping the top-ranked functional candidate.
    derail_rate: float = 0.12
    #: Base probability of an off-target / syntax-breaking patch.
    hallucination_rate: float = 0.05
    #: Extra derail/hallucination per 100 lines of DUT code.
    complexity_penalty: float = 0.45
    #: Complete-code regeneration: chance of corrupting an unrelated line.
    regen_corruption_rate: float = 0.35

    def scaled(self, rate, line_count):
        return min(0.9, rate * (1.0 + self.complexity_penalty *
                                (line_count / 100.0)))


class MockLLM(LLMClient):
    """Deterministic simulated LLM behind the standard client API."""

    def __init__(self, profile=None, seed=0):
        super().__init__()
        self.profile = profile or MockLLMProfile()
        self.seed = seed
        self.model_name = self.profile.name
        self._syntax_engine = SyntaxRepairEngine()
        self._repair_engine = FunctionalRepairEngine()

    # -- public API --------------------------------------------------------------

    def complete(self, prompt, task="repair", temperature=0.0):
        rng = self._rng_for(prompt, task)
        if task == "syntax":
            text = self._complete_syntax(prompt, rng)
        elif task == "repair":
            text = self._complete_repair(prompt, rng)
        elif task == "judge":
            text = self._complete_judge(prompt, rng)
        elif task == "refmodel":
            text = (
                "// cycle-accurate reference model\n"
                "// (generated from the specification)\n"
            )
        else:
            text = json.dumps({"module_name": "", "analysis": "", "correct": []})
        return self._record(prompt, text)

    # -- internals ----------------------------------------------------------------

    def _rng_for(self, prompt, task):
        # The call counter plays the role of sampling temperature:
        # repeating the same prompt can give a different completion,
        # while the whole sequence stays reproducible per seed.
        digest = hashlib.sha256(
            f"{self.seed}|{task}|{self.budget.calls}|{prompt}".encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    @staticmethod
    def _module_name(code):
        match = re.search(r"\bmodule\s+(\w+)", code)
        return match.group(1) if match else "unknown"

    def _complete_syntax(self, prompt, rng):
        code = extract_section(prompt, SECTION_CODE)
        instructions = extract_section(prompt, SECTION_INSTRUCTIONS)
        complete_form = "complete corrected module" in instructions
        fixed, pairs, fixed_all = self._syntax_engine.repair(code)
        line_count = code.count("\n") + 1
        skill = self.profile.syntax_skill - self.profile.complexity_penalty \
            * 0.1 * (line_count / 100.0)
        if pairs and rng.random() > max(0.3, skill):
            # Imperfect day: return only a prefix of the needed edits.
            keep = rng.randint(0, max(0, len(pairs) - 1))
            pairs = pairs[:keep]
            from repro.core.patches import apply_pairs

            fixed, _ = apply_pairs(code, pairs)
        if complete_form:
            # Whole-module regeneration: the fix is embedded in a full
            # rewrite, which risks corrupting unrelated lines.
            out_lines = fixed.splitlines()
            if rng.random() < self.profile.regen_corruption_rate and \
                    len(out_lines) > 4:
                victim = rng.randrange(len(out_lines))
                text = out_lines[victim]
                if "<=" in text:
                    out_lines[victim] = text.replace("<=", "=", 1)
                elif text.strip() == "end":
                    del out_lines[victim]
                elif "+" in text:
                    out_lines[victim] = text.replace("+", "-", 1)
            return json.dumps(
                {
                    "module_name": self._module_name(code),
                    "analysis": "Regenerated the module with syntax fixed.",
                    "code": "\n".join(out_lines) + "\n",
                },
                indent=1,
            )
        analysis = (
            "Identified lexical/structural problems and corrected them."
            if pairs else "No fixable syntax problem identified."
        )
        return json.dumps(
            {
                "module_name": self._module_name(code),
                "analysis": analysis,
                "correct": [list(pair) for pair in pairs],
            },
            indent=1,
        )

    def _parse_error_info(self, error_text):
        signals = []
        match = re.search(r"Mismatch signals:\s*(.+)", error_text)
        if match:
            signals = [s.strip() for s in match.group(1).split(",") if s.strip()]
        lines = [
            int(m.group(1))
            for m in re.finditer(r"line (\d+) \(drives", error_text)
        ]
        hints = {}
        for index, value_match in enumerate(
            re.finditer(r"expected (\S+) got (\S+)", error_text)
        ):
            if index == 0:
                hints["expected"] = _display_to_int(value_match.group(1))
                hints["actual"] = _display_to_int(value_match.group(2))
            # Display widths differing is direct truncation evidence:
            # the DUT's port is narrower than the spec's value.
            exp_width = re.match(r"(\d+)'", value_match.group(1))
            act_width = re.match(r"(\d+)'", value_match.group(2))
            if exp_width and act_width and \
                    int(exp_width.group(1)) != int(act_width.group(1)):
                hints["truncation"] = True
                hints["truncation_strong"] = True
        if "truncates" in error_text or "expands" in error_text:
            hints["truncation"] = True
            hints["truncation_strong"] = True
        return signals, lines, hints

    def _parse_damage(self, damage_text):
        """Tried-patch exclusion keys: full contextualized quote text."""
        tried = set()
        for match in re.finditer(r"- BAD: `(.*?)` -> `(.*?)`",
                                 damage_text, re.S):
            tried.add((match.group(1).strip(), match.group(2).strip()))
        return tried

    def _complete_repair(self, prompt, rng):
        code = extract_section(prompt, SECTION_CODE)
        error_text = extract_section(prompt, SECTION_ERROR)
        damage_text = extract_section(prompt, SECTION_DAMAGE)
        instructions = extract_section(prompt, SECTION_INSTRUCTIONS)
        complete_form = "complete corrected module" in instructions

        signals, suspicious, hints = self._parse_error_info(error_text)
        tried = self._parse_damage(damage_text)
        lines = code.splitlines()
        line_count = len(lines)

        from repro.llm.repair_knowledge import _derive_hints

        _derive_hints(hints)
        focus = self._repair_engine.focus_lines_for(
            code, signals, suspicious, hints=hints
        )
        candidates = self._repair_engine.candidates(code, focus, hints)
        # Exclusion works on the contextualized quotes (what the prompt
        # actually showed as damage repairs), so identical-text lines at
        # different locations stay distinguishable.
        untried = []
        for candidate in candidates:
            original, patched = self._contextualize(lines, candidate)
            if (original.strip(), patched.strip()) not in tried:
                untried.append((candidate, original, patched))

        chosen = None
        chosen_pair = None
        if untried:
            derail = self.profile.scaled(self.profile.derail_rate, line_count)
            if rng.random() < derail and len(untried) > 1:
                window = untried[1: min(6, len(untried))]
                chosen, *chosen_pair = rng.choice(window)
            else:
                chosen, *chosen_pair = untried[0]

        halluc = self.profile.scaled(
            self.profile.hallucination_rate, line_count
        )
        if rng.random() < halluc:
            chosen = self._hallucinate(lines, rng, chosen)
            if chosen is not None:
                chosen_pair = list(self._contextualize(lines, chosen))

        analysis = self._analysis_text(signals, suspicious, chosen)
        if complete_form:
            return self._render_complete(code, chosen, rng)
        pairs = [chosen_pair] if chosen_pair else []
        return json.dumps(
            {
                "module_name": self._module_name(code),
                "analysis": analysis,
                "correct": pairs,
            },
            indent=1,
        )

    @staticmethod
    def _contextualize(lines, chosen):
        """Quote enough leading context to make the pair unambiguous.

        Structured-output pairs are pure text; when the quoted line
        occurs several times (e.g. repeated reset assignments), a good
        model quotes the preceding line(s) too so the patch lands on the
        intended occurrence.
        """
        original = chosen.original
        matches = sum(1 for line in lines if line == original)
        if matches <= 1:
            return original, chosen.patched
        index = chosen.line_no - 1
        if not (0 <= index < len(lines)):
            return original, chosen.patched
        joined = "\n".join(lines)
        for back in range(1, 5):
            start = index - back
            if start < 0:
                break
            block = "\n".join(lines[start:index + 1])
            if joined.count(block) == 1:
                patched_block = "\n".join(
                    lines[start:index] + [chosen.patched]
                )
                return block, patched_block
        return original, chosen.patched

    def _hallucinate(self, lines, rng, fallback):
        """Produce an off-target or syntax-breaking patch."""
        from repro.llm.repair_knowledge import CandidatePatch

        code_lines = [
            (no, text) for no, text in enumerate(lines, 1)
            if text.strip() and not text.strip().startswith("//")
        ]
        if not code_lines:
            return fallback
        line_no, text = rng.choice(code_lines)
        mode = rng.random()
        if mode < 0.4 and text.rstrip().endswith(";"):
            patched = text.rstrip()[:-1]  # drop the semicolon
        elif mode < 0.7 and "+" in text:
            patched = text.replace("+", "*", 1)
        else:
            patched = text + " "
            patched = patched.replace("1'b1", "1'b0") if "1'b1" in text \
                else text.rstrip() + " // reviewed"
        return CandidatePatch(line_no, text, patched, "hallucination", -1.0)

    def _render_complete(self, code, chosen, rng):
        """Whole-module regeneration (UVLLM_comp ablation)."""
        lines = code.splitlines()
        if chosen is not None and 1 <= chosen.line_no <= len(lines):
            lines[chosen.line_no - 1] = chosen.patched
        if rng.random() < self.profile.regen_corruption_rate:
            lines = self._corrupt_regeneration(lines, rng)
        new_code = "\n".join(lines) + "\n"
        return json.dumps(
            {
                "module_name": self._module_name(code),
                "analysis": "Regenerated the complete corrected module.",
                "code": new_code,
            },
            indent=1,
        )

    @staticmethod
    def _corrupt_regeneration(lines, rng):
        """Damage an unrelated detail while rewriting a whole module.

        Regenerated code plausibly "simplifies" things the model deems
        redundant.  The menu deliberately includes a *test-invisible*
        corruption (dropping the async-reset edge) — the error class
        finite testbenches miss, which is what opens the HR-FR gap for
        regeneration-based baselines.
        """
        if len(lines) <= 4:
            return lines
        menu = []
        for index, text in enumerate(lines):
            if re.search(r"\s+or\s+negedge\s+\w+", text):
                menu.append(("drop_reset_edge", index))
            if "1'b1" in text and "<=" in text:
                menu.append(("flip_bit", index))
            if "+" in text and "=" in text and "//" not in text:
                menu.append(("flip_op", index))
            if text.rstrip().endswith(";") and "<=" in text:
                menu.append(("drop_semi", index))
        if not menu:
            return lines
        kind, index = rng.choice(menu)
        text = lines[index]
        if kind == "drop_reset_edge":
            lines[index] = re.sub(r"\s+or\s+negedge\s+\w+", "", text,
                                  count=1)
        elif kind == "flip_bit":
            lines[index] = text.replace("1'b1", "1'b0", 1)
        elif kind == "flip_op":
            lines[index] = text.replace("+", "-", 1)
        else:
            lines[index] = text.rstrip()[:-1]
        return lines

    def _analysis_text(self, signals, suspicious, chosen):
        parts = []
        if signals:
            parts.append(
                f"The mismatching signal(s) {', '.join(signals)} point to"
            )
        if chosen is not None:
            parts.append(
                f"a defect on line {chosen.line_no} ({chosen.kind})."
            )
        else:
            parts.append("no further untried repair candidates.")
        return " ".join(parts) if parts else "No analysis available."

    def _complete_judge(self, prompt, rng):
        """MEIC-style LLM-as-reward-model: noisy better/worse verdict."""
        verdict = "better" if rng.random() < 0.7 else "worse"
        return json.dumps({"verdict": verdict})


def _last_line(text):
    """Normalize a (possibly multi-line, contextualized) quote to its
    final non-empty line for exclusion-list comparisons."""
    lines = [line.strip() for line in text.strip().splitlines()
             if line.strip()]
    return lines[-1] if lines else ""


def _display_to_int(text):
    """Parse a scoreboard display value like 8'h2d or 16'b0011."""
    match = re.match(r"(\d+)'([bdh])([0-9a-fA-F_xXzZ]+)", text)
    if not match:
        try:
            return int(text, 0)
        except ValueError:
            return None
    radix = {"b": 2, "d": 10, "h": 16}[match.group(2)]
    digits = match.group(3).replace("_", "")
    if any(c in "xXzZ" for c in digits):
        return None
    return int(digits, radix)

"""Prompt construction (paper Fig. 4).

Every agent prompt is assembled from clearly delimited sections
(specification, DUT code, error information, damage repairs, repair
instructions).  The section markers double as the machine-readable
interface the mock LLM parses — exactly the "standard interfaces
between the pipelines" modularity the paper describes.
"""

SECTION_SPEC = "## SPECIFICATION"
SECTION_CODE = "## DUT CODE"
SECTION_ERROR = "## ERROR INFORMATION"
SECTION_DAMAGE = "## DAMAGE REPAIRS"
SECTION_INSTRUCTIONS = "## REPAIR INSTRUCTIONS"

_SYSTEM_PREAMBLE = (
    "You are an expert in Verilog verification and RTL debugging. "
    "Analyze the design below, locate the error, and propose a minimal "
    "repair."
)

_PAIR_INSTRUCTIONS = (
    "Respond ONLY with JSON matching this schema: "
    '{"module_name": string, "analysis": string, '
    '"correct": [[original_code, patched_code], ...]}. '
    "Each pair must quote an exact line (or contiguous lines) from the "
    "DUT and its replacement."
)

_COMPLETE_INSTRUCTIONS = (
    "Respond ONLY with JSON matching this schema: "
    '{"module_name": string, "analysis": string, "code": string}. '
    "The 'code' element must contain the complete corrected module."
)


def build_syntax_prompt(source, lint_output, spec=None, patch_form="pair"):
    """Prompt for the pre-processing syntax-fix agent (Algorithm 1).

    ``patch_form="complete"`` requests whole-module regeneration (how
    MEIC-style baselines consume syntax fixes).
    """
    parts = [_SYSTEM_PREAMBLE]
    if spec:
        parts.extend([SECTION_SPEC, spec])
    instructions = (
        _PAIR_INSTRUCTIONS if patch_form == "pair" else _COMPLETE_INSTRUCTIONS
    )
    parts.extend([
        SECTION_CODE, source,
        SECTION_ERROR,
        "The linter reported the following problems:",
        lint_output,
        SECTION_INSTRUCTIONS,
        "Fix ALL syntax errors. Do not change the design's intended "
        "behaviour. " + instructions,
    ])
    return "\n".join(parts)


def build_repair_prompt(source, spec, error_summary, damage_repairs=None,
                        patch_form="pair"):
    """Prompt for the functional repair agent (Fig. 4).

    ``damage_repairs`` lists previously attempted patches that lowered
    the score (from the rollback register); the agent must avoid them.
    ``patch_form`` selects original-patch pairs vs complete-code output
    (the Table III ablation).
    """
    parts = [_SYSTEM_PREAMBLE, SECTION_SPEC, spec, SECTION_CODE, source,
             SECTION_ERROR, error_summary]
    if damage_repairs:
        parts.append(SECTION_DAMAGE)
        parts.append(
            "The following patches were tried and REDUCED the test pass "
            "rate. Do not propose them again:"
        )
        for original, patched in damage_repairs:
            parts.append(f"- BAD: `{original.strip()}` -> `{patched.strip()}`")
    parts.append(SECTION_INSTRUCTIONS)
    if patch_form == "pair":
        parts.append(
            "Repair the functional error indicated by the mismatch "
            "information. " + _PAIR_INSTRUCTIONS
        )
    else:
        parts.append(
            "Repair the functional error indicated by the mismatch "
            "information. " + _COMPLETE_INSTRUCTIONS
        )
    return "\n".join(parts)


def extract_section(prompt, header):
    """Pull one delimited section back out of a prompt.

    Returns the text between ``header`` and the next ``## `` header (or
    end of prompt); empty string when the section is absent.
    """
    start = prompt.find(header)
    if start < 0:
        return ""
    start += len(header)
    next_header = prompt.find("\n## ", start)
    section = prompt[start:next_header] if next_header >= 0 else prompt[start:]
    return section.strip("\n")

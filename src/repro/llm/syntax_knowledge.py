"""Heuristic syntax-repair engine (the mock LLM's "training" on Verilog).

Given source text that fails to parse or lint, propose textual fixes the
way a code-trained LLM does: keyword-typo correction, inserting missing
semicolons / ``end`` / ``endmodule``, re-declaring missing variables
with widths guessed from usage, and wire/reg kind corrections.

The engine is honest: it sees only the broken code plus the linter
message, never the golden source.  Width guesses can be wrong, balance
insertions can land in the wrong scope — those imperfect fixes then
surface as functional errors for the main repair loop, reproducing the
cross-stage compensation the paper reports (Result 4).
"""

import re

from repro.hdl.lexer import KEYWORDS
from repro.lint.linter import Linter

_MAX_EDITS = 12


def edit_distance(a, b, limit=3):
    """Levenshtein distance with early cutoff."""
    if abs(len(a) - len(b)) > limit:
        return limit + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        current = [i]
        best = i
        for j, cb in enumerate(b, 1):
            cost = 0 if ca == cb else 1
            value = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
            )
            current.append(value)
            best = min(best, value)
        if best > limit:
            return limit + 1
        previous = current
    return previous[-1]


_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Keywords commonly corrupted in real codebases; short identifiers are
#: excluded to avoid clobbering legitimate names (e.g. ``i``, ``en``).
_FIXABLE_KEYWORDS = [
    kw for kw in sorted(KEYWORDS) if len(kw) >= 4
]


def fix_keyword_typos(source, declared_names=frozenset()):
    """Replace near-miss keywords (edit distance 1) that are not
    declared identifiers.  Returns (new_source, pairs)."""
    pairs = []

    def replace(match):
        word = match.group(0)
        if word in KEYWORDS or word in declared_names:
            return word
        for keyword in _FIXABLE_KEYWORDS:
            if edit_distance(word, keyword, 1) == 1:
                pairs.append((word, keyword))
                return keyword
        return word

    new_source = _WORD.sub(replace, source)
    return new_source, pairs


def _declared_names(source):
    names = set()
    for match in re.finditer(
        r"\b(?:input|output|inout|wire|reg|integer|parameter|localparam)\b"
        r"[^;]*;",
        source,
    ):
        for word in _WORD.findall(match.group(0)):
            names.add(word)
    # Module and instance names.
    for match in re.finditer(r"\bmodule\s+(\w+)", source):
        names.add(match.group(1))
    return names


def _guess_width(source, name):
    """Guess a missing signal's width from its usage context.

    Sized literals and bit selects on lines using the signal give a
    lower bound; parameters assigned to it (``state <= S0`` with
    ``localparam S0 = 2'd0``) contribute their declared widths.
    """
    best = 1
    param_widths = {
        match.group(1): int(match.group(2))
        for match in re.finditer(
            r"(?:parameter|localparam)\s+(\w+)\s*=\s*(\d+)\s*'", source
        )
    }
    # Multi-declaration lines: localparam A = 2'd0, B = 2'd1;
    for match in re.finditer(
        r"(?:parameter|localparam)\b([^;]*);", source
    ):
        for inner in re.finditer(r"(\w+)\s*=\s*(\d+)\s*'", match.group(1)):
            param_widths[inner.group(1)] = int(inner.group(2))
    for match in re.finditer(
        rf"[^\n]*\b{re.escape(name)}\b[^\n]*", source
    ):
        line = match.group(0)
        if re.match(r"\s*(?:parameter|localparam)\b", line):
            continue
        for literal in re.finditer(r"(\d+)\s*'", line):
            best = max(best, int(literal.group(1)))
        for select in re.finditer(rf"{re.escape(name)}\s*\[(\d+)(?::|\])",
                                  line):
            best = max(best, int(select.group(1)) + 1)
        for word in _WORD.findall(line):
            if word in param_widths:
                best = max(best, param_widths[word])
    return best


class SyntaxRepairEngine:
    """Iteratively repairs syntax/lint errors in Verilog text."""

    def __init__(self, linter=None):
        self.linter = linter or Linter()

    def repair(self, source):
        """Attempt a full repair; returns (new_source, pairs, fixed_all).

        ``pairs`` is the original→patched pair list for the structured
        JSON response.  ``fixed_all`` is True when the result parses and
        has no lint *errors* (warnings are the script templates' job).
        """
        pairs = []
        current = source
        declared = _declared_names(source)
        current, typo_pairs = fix_keyword_typos(current, declared)
        pairs.extend(typo_pairs)

        for _ in range(_MAX_EDITS):
            report = self.linter.lint(current)
            errors = report.errors
            if not errors:
                return current, pairs, True
            updated = self._fix_one(current, errors[0])
            if updated is None or updated == current:
                return current, pairs, False
            pairs.append(self._diff_pair(current, updated))
            current = updated
        report = self.linter.lint(current)
        return current, pairs, not report.errors

    # -- single-error fixers --------------------------------------------------

    def _fix_one(self, source, diagnostic):
        message = diagnostic.message
        line_index = diagnostic.location.line - 1
        lines = source.splitlines()

        if "missing 'endmodule'" in message:
            return source.rstrip("\n") + "\nendmodule\n"
        if "missing 'end'" in message or "missing 'endcase'" in message:
            token = "endcase" if "endcase" in message else "end"
            return self._insert_before_closer(source, token)
        match = re.search(r"expected '(.+?)' but found", message)
        if match:
            expected = match.group(1)
            if expected in (";", ")", "]", "}", ":"):
                return self._insert_token(lines, diagnostic.location, expected)
            if expected == "keyword 'end'":
                return self._insert_before_closer(source, "end")
        if "unexpected keyword 'end'" in message and \
                0 <= line_index < len(lines) and \
                lines[line_index].strip() == "end":
            # Orphaned 'end' at module level: its 'begin' was lost.
            # Re-balance by opening a block at the nearest unopened
            # control line above; if none, drop the orphan (begin/end
            # is optional around a single statement).
            opened = self._open_missing_begin(lines, line_index)
            if opened is not None:
                return opened
            del lines[line_index]
            return "\n".join(lines) + "\n"
        if "unexpected keyword" in message and 0 <= line_index < len(lines):
            # Often a missing ';' on the previous non-empty line.
            for back in range(line_index - 1, -1, -1):
                stripped = lines[back].rstrip()
                if stripped:
                    if not stripped.endswith((";", "begin", "end", ")")):
                        lines[back] = lines[back].rstrip() + ";"
                        return "\n".join(lines) + "\n"
                    break
        if "expected assignment target" in message or (
            "expected identifier but found" in message and
            ("'<='" in message or "'='" in message)
        ):
            # A statement leaked to module level: a 'begin' is missing
            # above it.
            opened = self._open_missing_begin(lines, line_index)
            if opened is not None:
                return opened
        if "unexpected character" in message or "unexpected token" in \
                message and 0 <= line_index < len(lines):
            fixed = self._fix_operator_garbage(lines, line_index)
            if fixed is not None:
                return fixed
        if "procedural assignment to undeclared" in message:
            match = re.search(r"variable '(\w+)'", message)
            if match:
                return self._declare_variable(source, match.group(1))
        if "procedural assignment to wire" in message:
            match = re.search(r"wire '(\w+)'", message)
            if match:
                return self._rekind(source, match.group(1), to_reg=True)
        if "continuous assignment to reg" in message:
            match = re.search(r"reg '(\w+)'", message)
            if match:
                return self._rekind(source, match.group(1), to_reg=False)
        if "has no port" in message:
            return self._fix_port_name(source, message, diagnostic)
        return None

    def _open_missing_begin(self, lines, from_index):
        """Append ``begin`` to the nearest control line above
        ``from_index`` that should open a block but doesn't."""
        for back in range(min(from_index, len(lines)) - 1, -1, -1):
            stripped = lines[back].rstrip()
            bare = stripped.strip()
            if not bare:
                continue
            if bare.endswith("begin"):
                return None  # block structure looks intact above
            is_control = (
                bare == "else"
                or bare.endswith("else")
                or re.search(r"\b(if|else|for|while)\s*\(.*\)\s*$", bare)
                or re.search(r"always\s*@.*\)\s*$", bare)
            )
            if is_control:
                lines[back] = stripped + " begin"
                return "\n".join(lines) + "\n"
            if bare.endswith(";"):
                continue  # plain statement; keep walking up
            return None
        return None

    def _insert_token(self, lines, location, token):
        index = location.line - 1
        if index < 0 or index >= len(lines):
            return None
        column = max(0, location.column - 1)
        line = lines[index]
        if token == ";":
            # Attach to the end of the previous statement-ish line when
            # the error points at the start of a fresh construct.
            if column == 0 or line[:column].strip() == "":
                for back in range(index - 1, -1, -1):
                    if lines[back].strip():
                        lines[back] = lines[back].rstrip() + ";"
                        return "\n".join(lines) + "\n"
                return None
        column = min(column, len(line))
        lines[index] = line[:column] + token + line[column:]
        return "\n".join(lines) + "\n"

    def _insert_before_closer(self, source, token):
        lines = source.splitlines()
        closer = "endcase" if token == "endcase" else None
        for index in range(len(lines) - 1, -1, -1):
            stripped = lines[index].strip()
            if stripped.startswith("endmodule") or (
                closer is None and stripped == "endcase"
            ):
                indent = " " * 4
                lines.insert(index, indent + token)
                return "\n".join(lines) + "\n"
        return source.rstrip("\n") + "\n" + token + "\n"

    _GARBAGE_OPS = [
        ("<=+", "<="), ("=+", "="), ("==+", "=="), ("&&&", "&&"),
        ("|||", "||"), ("++", "+"), ("--", "-"), ("<<<<", "<<"),
        (">>>>", ">>"), ("=<", "<="), ("=>", ">="),
    ]

    def _fix_operator_garbage(self, lines, line_index):
        if not (0 <= line_index < len(lines)):
            return None
        line = lines[line_index]
        for bad, good in self._GARBAGE_OPS:
            if bad in line:
                lines[line_index] = line.replace(bad, good, 1)
                return "\n".join(lines) + "\n"
        return None

    def _declare_variable(self, source, name):
        width = _guess_width(source, name)
        range_text = f"[{width - 1}:0] " if width > 1 else ""
        declaration = f"    reg {range_text}{name};"
        lines = source.splitlines()
        # The insertion point must be INSIDE the module body: after the
        # header's ``);`` and after any body declarations, but never
        # inside an ANSI port list.
        header_end = 0
        for index, line in enumerate(lines):
            if ");" in line:
                header_end = index + 1
                break
        insert_at = header_end
        for index in range(header_end, len(lines)):
            if re.match(r"\s*(input|output|inout|wire|reg|integer|parameter|"
                        r"localparam)\b", lines[index]):
                insert_at = index + 1
        lines.insert(max(insert_at, 1), declaration)
        return "\n".join(lines) + "\n"

    def _rekind(self, source, name, to_reg):
        if to_reg:
            # output X -> output reg X; wire X -> reg X.
            pattern = rf"\b(output\s+)(\[[^\]]*\]\s*)?({re.escape(name)}\b)"
            replaced = re.sub(
                pattern, lambda m: m.group(1) + "reg " + (m.group(2) or "")
                + m.group(3), source, count=1,
            )
            if replaced != source:
                return replaced
            pattern = rf"\bwire(\s+(?:\[[^\]]*\]\s*)?{re.escape(name)}\b)"
            replaced = re.sub(pattern, r"reg\1", source, count=1)
            return replaced if replaced != source else None
        pattern = rf"\breg(\s+(?:\[[^\]]*\]\s*)?{re.escape(name)}\b)"
        replaced = re.sub(pattern, r"wire\1", source, count=1)
        if replaced != source:
            return replaced
        pattern = rf"\b(output\s+)reg\s+((?:\[[^\]]*\]\s*)?{re.escape(name)}\b)"
        replaced = re.sub(pattern, r"\1\2", source, count=1)
        return replaced if replaced != source else None

    def _fix_port_name(self, source, message, diagnostic):
        match = re.search(r"has no port '(\w+)'", message)
        module_match = re.search(r"module '(\w+)'", message)
        if not match or not module_match:
            return None
        bad_port = match.group(1)
        module_name = module_match.group(1)
        decl = re.search(
            rf"module\s+{re.escape(module_name)}\s*\(([^;]*?)\)\s*;",
            source, re.S,
        )
        if not decl:
            return None
        candidates = _WORD.findall(decl.group(1))
        best = None
        best_distance = 3
        for candidate in candidates:
            distance = edit_distance(bad_port, candidate, 2)
            if distance < best_distance:
                best_distance = distance
                best = candidate
        if best is None:
            return None
        return re.sub(
            rf"\.{re.escape(bad_port)}\s*\(", f".{best}(", source, count=1
        )

    @staticmethod
    def _diff_pair(old, new):
        """First divergence as an (original, patched) pair.

        Handles in-place edits, insertions (the pair re-quotes the
        context line so application inserts rather than replaces) and
        deletions.
        """
        old_lines = old.splitlines()
        new_lines = new.splitlines()
        index = 0
        while index < min(len(old_lines), len(new_lines)) and \
                old_lines[index] == new_lines[index]:
            index += 1
        if index >= len(old_lines) and index < len(new_lines):
            return ("", new_lines[index])  # pure append
        if index >= len(new_lines) and index < len(old_lines):
            return (old_lines[index], "")  # trailing deletion
        if index >= len(old_lines):
            return ("", "")
        old_line = old_lines[index]
        new_line = new_lines[index]
        if len(new_lines) > len(old_lines) and \
                index + 1 < len(new_lines) and new_lines[index + 1] == old_line:
            # Insertion before old_line: keep the context line.
            return (old_line, new_line + "\n" + old_line)
        if len(old_lines) > len(new_lines) and \
                index < len(new_lines) and (
                    index + 1 >= len(old_lines)
                    or old_lines[index + 1] == new_line
                ):
            return (old_line, "")  # deletion of old_line
        return (old_line, new_line)

"""Hole reports: the uncovered remainder of a coverage model.

A *hole* is one bin that never hit: a point bin, a cross bin, or a
transition sequence.  Holes are what closes the loop — the
coverage-driven stimulus engine (:mod:`repro.cover.closure`) reads
them and re-biases field distributions; humans read the same report
from ``repro.cli coverage --holes``.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class Hole:
    """One uncovered bin, with enough structure to target it.

    - ``kind`` — ``point`` / ``cross`` / ``transition``;
    - ``name`` — the owning point/cross/transition name;
    - ``fields`` — for point/cross holes, ``{field: (lo, hi)}`` value
      ranges a stimulus generator should draw from to hit the bin;
    - ``signal`` / ``seq`` — for transition holes, the observed
      signal and the missing value sequence (not directly drivable
      when the signal is a DUT-internal probe).
    """

    kind: str
    name: str
    fields: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    signal: Optional[str] = None
    seq: Optional[Tuple[int, ...]] = None

    def describe(self):
        if self.kind == "transition":
            arrow = " -> ".join(str(v) for v in self.seq or ())
            return f"transition {self.name}: {self.signal}: {arrow}"
        ranges = ", ".join(
            f"{name} in [{lo}, {hi}]"
            for name, (lo, hi) in sorted(self.fields.items())
        )
        return f"{self.kind} {self.name}: {ranges}"


def holes_of(model, drivable_fields=None):
    """All uncovered bins of a :class:`~repro.cover.model.CoverModel`.

    ``drivable_fields`` (optional) is the set of stimulus field names
    the caller can actually drive; holes over other signals (DUT
    probes) are still reported but carry no ``fields`` targeting info.
    Order is deterministic: points, then crosses, then transitions,
    each in model order, bins in index order.
    """
    drivable = None if drivable_fields is None else set(drivable_fields)
    found = []
    for point in model.points:
        for index, (lo, hi) in enumerate(point.bins):
            if index in point.hits:
                continue
            fields = {}
            if drivable is None or point.signal in drivable:
                fields[point.signal] = (lo, hi)
            found.append(Hole(kind="point", name=point.signal,
                              fields=fields, signal=point.signal))
    for cross in model.crosses:
        for key in cross.iter_keys():
            if key in cross.hits:
                continue
            values = cross.bin_values(key)
            fields = {
                name: span for name, span in values.items()
                if drivable is None or name in drivable
            }
            found.append(Hole(kind="cross", name=cross.name,
                              fields=fields))
    for trans in model.transitions:
        for index, seq in enumerate(trans.seqs):
            if index in trans.hits:
                continue
            fields = {}
            if drivable is None or trans.signal in drivable:
                # An input-field transition is directly drivable as a
                # back-to-back pair; expose the first step as a range
                # so generic targeting still applies.
                fields[trans.signal] = (seq[0], seq[0])
            found.append(Hole(kind="transition", name=trans.name,
                              fields=fields, signal=trans.signal,
                              seq=tuple(seq)))
    return found


def format_holes(holes, limit=None):
    """Human-readable hole report (``limit`` rows, None for all)."""
    rows = holes if limit is None else holes[:limit]
    lines = [hole.describe() for hole in rows]
    if limit is not None and len(holes) > limit:
        lines.append(f"... and {len(holes) - limit} more")
    return "\n".join(lines) if lines else "no holes: coverage closed"

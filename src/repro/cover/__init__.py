"""Coverage subsystem: functional crosses/transitions, structural
code coverage, a mergeable coverage database, and closed-loop
coverage-driven stimulus.

- :mod:`repro.cover.model` — :class:`CoverModel` (points, crosses,
  transition bins, probes), drop-in for the flat UVM covergroup;
- :mod:`repro.cover.code` — :class:`CodeCoverage`: backend-invariant
  statement/branch/toggle collection over both simulation backends;
- :mod:`repro.cover.db` — :class:`CoverageDB`: union-mergeable,
  content-addressed on-disk coverage (campaign workers and shards
  accumulate one global picture);
- :mod:`repro.cover.holes` — uncovered-bin reports;
- :mod:`repro.cover.closure` — :class:`CoverageDrivenSequence`, the
  hole-targeting stimulus closure loop.
"""

from repro.cover.closure import CoverageDrivenSequence, close_coverage
from repro.cover.code import CodeCoverage
from repro.cover.db import CoverageDB, CoverageMergeError
from repro.cover.holes import Hole, format_holes, holes_of
from repro.cover.model import (
    CoverModel,
    Cross,
    TransitionPoint,
    choice_bins,
    input_space_model,
    point_for_field,
)

__all__ = [
    "CodeCoverage",
    "CoverModel",
    "CoverageDB",
    "CoverageDrivenSequence",
    "CoverageMergeError",
    "Cross",
    "Hole",
    "TransitionPoint",
    "choice_bins",
    "close_coverage",
    "format_holes",
    "holes_of",
    "input_space_model",
    "point_for_field",
]

"""Structural code coverage: statement, branch, and toggle.

One :class:`CodeCoverage` collector attaches to one simulator (any
backend).  Collection is *backend-invariant by construction* — the
maps produced by the interpreter and the compiled backend for the
same DUT and stimulus are identical, which `scripts/ci_smoke.py`
enforces.  That invariance dictates where each metric is collected:

- **seq/initial processes** are instrumented live (interpreter hooks
  in :class:`repro.sim.engine._Executor`, emitted ``_CS``/``_CB``
  calls in :mod:`repro.sim.compile.codegen`): clocked activations
  and their branch decisions are schedule-independent because both
  backends run them only at comb quiescence, over bit-identical
  state;
- **comb processes** are NOT instrumented live — the event-driven
  worklist re-evaluates glitchy cones mid-wave while the levelized
  sweep evaluates each cone once, so live counts (and even hit sets)
  would diverge.  Instead :meth:`CodeCoverage.sample_stable` replays
  every comb body against *settled* state at each monitor sample
  point, through a shadow executor whose writes never touch the
  design.  "Settled-evaluation coverage at sample points" is the
  defined semantic, identical across schedulers;
- **toggle coverage** is derived post-run from the canonical
  value-change trace (same-time glitch entries are already dropped
  by the engine), which is bit-identical across backends.

Statement/branch identities are stable strings (``p<idx>.s<n>`` from
a pre-order walk of each process body), so maps from two separate
elaborations of the same source line up key-for-key.
"""

from repro.hdl import ast
from repro.sim.elaborate import Signal
from repro.sim.engine import SimulationError, _Executor
from repro.sim.eval import Evaluator, Memory


#: Per-process cap on memoized replay outcomes (wide input cones can
#: produce many distinct settled states; beyond the cap we just
#: re-execute, which is always correct).
_REPLAY_MEMO_LIMIT = 4096

#: Functions whose result is not a pure function of signal state — a
#: body containing one cannot be replay-memoized.
_IMPURE_CALLS = frozenset(("$time", "$stime", "$random"))


class CodeCoverage:
    """Statement/branch/toggle counters over one elaborated design."""

    def __init__(self, design):
        self.design = design
        #: id(ast stmt node) -> stable statement id "p<i>.s<n>".
        self.stmt_id = {}
        #: id(case item node) -> arm outcome key "a<i>".
        self.case_arm = {}
        #: stable statement id -> list of branch outcome keys.
        self.branch_domain = {}
        self.stmt_domain = []
        self.stmt_hits = {}
        self.branch_hits = {}
        self.toggle = {}
        self._replay_plan = None
        self._replay_memo = {}
        for index, process in enumerate(design.processes):
            counter = iter(range(1 << 30))
            for stmt in process.body:
                self._walk(stmt, index, counter)

    # -- stable id assignment ------------------------------------------------

    def _walk(self, stmt, pidx, counter):
        sid = f"p{pidx}.s{next(counter)}"
        self.stmt_id[id(stmt)] = sid
        self.stmt_domain.append(sid)
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._walk(inner, pidx, counter)
        elif isinstance(stmt, ast.If):
            self.branch_domain[sid] = ["T", "F"]
            self._walk(stmt.then_stmt, pidx, counter)
            if stmt.else_stmt is not None:
                self._walk(stmt.else_stmt, pidx, counter)
        elif isinstance(stmt, ast.Case):
            outcomes = []
            for index, item in enumerate(stmt.items):
                if not item.is_default:
                    key = f"a{index}"
                    self.case_arm[id(item)] = (sid, key)
                    outcomes.append(key)
                self._walk(item.body, pidx, counter)
            outcomes.append("default")
            self.branch_domain[sid] = outcomes
        elif isinstance(stmt, (ast.For, ast.While)):
            self._walk(stmt.body, pidx, counter)

    # -- recording (hot paths: called from both backends) --------------------

    def hit_stmt(self, sid):
        self.stmt_hits[sid] = self.stmt_hits.get(sid, 0) + 1

    def hit_stmt_node(self, stmt):
        sid = self.stmt_id.get(id(stmt))
        if sid is not None:
            self.stmt_hits[sid] = self.stmt_hits.get(sid, 0) + 1

    def hit_branch(self, sid, outcome):
        key = f"{sid}:{outcome}"
        self.branch_hits[key] = self.branch_hits.get(key, 0) + 1

    def hit_branch_node(self, stmt, outcome):
        sid = self.stmt_id.get(id(stmt))
        if sid is not None:
            self.hit_branch(sid, outcome)

    def hit_case_item(self, item):
        entry = self.case_arm.get(id(item))
        if entry is not None:
            self.hit_branch(*entry)

    # -- stable-point comb replay --------------------------------------------

    def sample_stable(self):
        """Replay every comb process against settled state (see module
        docstring); call once per monitor sample point.  Reads the
        settled values directly off this collector's own design — the
        simulator that owns it — so it takes no argument.

        Replays are memoized per process on the settled values of the
        signals the engine registered it as reading (the same cone
        that decides re-evaluation): a repeated settled state replays
        as a cached counter bump instead of a tree walk.  Processes
        reading memories or impure functions are re-executed every
        time.
        """
        if self._replay_plan is None:
            self._replay_plan = self._build_replay_plan()
        for index, (process, key_signals) in enumerate(self._replay_plan):
            if key_signals is None:
                self._replay(process, self)
                continue
            key = tuple(
                (s.value.bits, s.value.xmask) for s in key_signals
            )
            memo, stats = self._replay_memo.setdefault(
                id(process), ({}, [0, 0])
            )
            stats[0] += 1
            deltas = memo.get(key)
            if deltas is None:
                recorder = _DeltaRecorder(self)
                self._replay(process, recorder)
                deltas = (recorder.stmts, recorder.branches)
                if len(memo) < _REPLAY_MEMO_LIMIT:
                    memo[key] = deltas
                # Adaptive bail-out: a wide input cone rarely repeats
                # a settled state, so the memo only adds key-building
                # overhead — demote the process to direct replay.
                if stats[0] >= 32 and stats[1] * 2 < stats[0]:
                    self._replay_plan[index] = (process, None)
                    memo.clear()
            else:
                stats[1] += 1
            for sid, count in deltas[0].items():
                self.stmt_hits[sid] = self.stmt_hits.get(sid, 0) + count
            for bid, count in deltas[1].items():
                self.branch_hits[bid] = \
                    self.branch_hits.get(bid, 0) + count

    def _build_replay_plan(self):
        """``[(comb_process, key_signals_or_None)]`` in design order.

        ``key_signals`` is the tuple of signals whose value changes
        schedule the process (its read cone per the engine's own
        listener registration); ``None`` marks a process that must be
        re-executed every sample (memory reads, impure calls).  A
        process's own blocking temporaries need not be in the key: at
        a stable point their settled values are themselves functions
        of the cone.
        """
        from repro.hdl import ast as hdl_ast

        reads = {}
        for signal in self.design.signals.values():
            for process in signal.comb_listeners:
                reads.setdefault(id(process), []).append(signal)
        blocked = set()
        for memory in self.design.memories.values():
            for process in memory.comb_listeners:
                blocked.add(id(process))
        plan = []
        for process in self.design.processes:
            if process.kind != "comb":
                continue
            memoizable = id(process) not in blocked
            if memoizable:
                # Tiny bodies replay about as fast as a key builds;
                # only non-trivial cones are worth memoizing.
                stmt_count = sum(
                    1 for stmt in process.body
                    for node in stmt.walk() if id(node) in self.stmt_id
                )
                memoizable = stmt_count >= 4
            if memoizable:
                for stmt in process.body:
                    if any(
                        isinstance(node, hdl_ast.FunctionCall)
                        and node.name in _IMPURE_CALLS
                        for node in stmt.walk()
                    ):
                        memoizable = False
                        break
            key_signals = (
                tuple(reads.get(id(process), ())) if memoizable else None
            )
            plan.append((process, key_signals))
        return plan

    def _replay(self, process, recorder):
        executor = _ReplayExecutor(process, recorder)
        try:
            for stmt in process.body:
                executor.execute(stmt)
        except SimulationError:
            # A body the real engine also cannot execute (the real
            # run surfaces the error); replay must not re-raise.
            # Partial hits up to the error stand (deterministic).
            pass

    # -- toggle (post-run, from the canonical trace) -------------------------

    def finalize(self, simulator):
        """Derive toggle coverage from the value-change trace."""
        if not getattr(simulator, "trace_enabled", False):
            return self
        self.toggle = {}
        for name in sorted(simulator.trace):
            signal = self.design.signals.get(name)
            if signal is None:
                continue
            history = simulator.trace[name]
            mask = (1 << signal.width) - 1
            rise = fall = 0
            for (_, prev), (_, curr) in zip(history, history[1:]):
                known = ~prev.xmask & ~curr.xmask
                rise |= ~prev.bits & curr.bits & known
                fall |= prev.bits & ~curr.bits & known
            self.toggle[name] = {
                "rise": rise & mask,
                "fall": fall & mask,
                "width": signal.width,
            }
        return self

    # -- aggregation ---------------------------------------------------------

    @property
    def stmt_total(self):
        return len(self.stmt_domain)

    @property
    def branch_total(self):
        return sum(len(v) for v in self.branch_domain.values())

    @property
    def stmt_coverage(self):
        total = self.stmt_total
        return len(self.stmt_hits) / total if total else 1.0

    @property
    def branch_coverage(self):
        total = self.branch_total
        return len(self.branch_hits) / total if total else 1.0

    @property
    def toggle_coverage(self):
        total = covered = 0
        for entry in self.toggle.values():
            total += 2 * entry["width"]
            covered += _popcount(entry["rise"]) + _popcount(entry["fall"])
        return covered / total if total else 1.0

    def to_dict(self):
        """JSON-pure serialization for the coverage database."""
        return {
            "stmts": {k: self.stmt_hits[k] for k in sorted(self.stmt_hits)},
            "branches": {
                k: self.branch_hits[k] for k in sorted(self.branch_hits)
            },
            "totals": {
                "stmt": self.stmt_total,
                "branch": self.branch_total,
            },
            "toggle": {
                name: dict(entry)
                for name, entry in sorted(self.toggle.items())
            },
        }

    def report(self):
        return (
            f"code coverage: stmt {len(self.stmt_hits)}/{self.stmt_total} "
            f"({100.0 * self.stmt_coverage:.1f}%), "
            f"branch {len(self.branch_hits)}/{self.branch_total} "
            f"({100.0 * self.branch_coverage:.1f}%), "
            f"toggle {100.0 * self.toggle_coverage:.1f}%"
        )


def _popcount(value):
    return bin(value).count("1")


# -- shadow replay machinery -------------------------------------------------


class _DeltaRecorder:
    """Collects one replay's stmt/branch hits for the replay memo."""

    def __init__(self, coverage):
        self.coverage = coverage
        self.stmts = {}
        self.branches = {}

    def hit_stmt_node(self, stmt):
        sid = self.coverage.stmt_id.get(id(stmt))
        if sid is not None:
            self.stmts[sid] = self.stmts.get(sid, 0) + 1

    def hit_branch(self, sid, outcome):
        key = f"{sid}:{outcome}"
        self.branches[key] = self.branches.get(key, 0) + 1

    def hit_branch_node(self, stmt, outcome):
        sid = self.coverage.stmt_id.get(id(stmt))
        if sid is not None:
            self.hit_branch(sid, outcome)

    def hit_case_item(self, item):
        entry = self.coverage.case_arm.get(id(item))
        if entry is not None:
            self.hit_branch(*entry)


class _ShadowMemory:
    """Read-through overlay over a real :class:`Memory`."""

    def __init__(self, memory, overlay):
        self.memory = memory
        self.overlay = overlay
        self.width = memory.width
        self.lo = memory.lo
        self.hi = memory.hi
        self.signed = memory.signed

    def read(self, address):
        word = self.overlay.get((id(self.memory), address))
        if word is not None:
            return word
        return self.memory.read(address)


class _ShadowSim:
    """Write sink for replay: all stores land in overlays, never the
    design.  Mimics the slice of the simulator API the executor's
    store closures touch."""

    code_coverage = None  # _Executor probes this; replay records itself

    def __init__(self):
        self.shadow = {}        # id(Signal) -> Value
        self.mem_overlay = {}   # (id(Memory), address) -> Value
        self._nba = []          # comb bodies are blocking-only anyway

    def read_signal(self, signal):
        return self.shadow.get(id(signal), signal.value)

    def _write_signal(self, signal, value):
        if value.width != signal.width or value.signed != signal.signed:
            value = value.resize(signal.width, signal.signed)
        self.shadow[id(signal)] = value

    def write_memory(self, memory, address, value):
        if address is None or address < memory.lo or address > memory.hi:
            return
        if value.width != memory.width:
            value = value.resize(memory.width)
        self.mem_overlay[(id(memory), address)] = value

    def _notify_memory_write(self, memory):
        pass


class _ShadowResolver:
    """Evaluator resolver: shadow values first, real state second."""

    def __init__(self, scope, shadow_sim):
        self.scope = scope
        self.shadow_sim = shadow_sim

    def read(self, name):
        entry = self.scope.lookup(name)
        if isinstance(entry, Signal):
            return self.shadow_sim.read_signal(entry)
        return self.scope.read(name)

    def read_memory(self, name):
        memory = self.scope.read_memory(name)
        if memory is None:
            return None
        return _ShadowMemory(memory, self.shadow_sim.mem_overlay)

    def width_of(self, name):
        return self.scope.width_of(name)

    def signed_of(self, name):
        return self.scope.signed_of(name)


class _ReplayExecutor(_Executor):
    """Side-effect-free re-execution of one comb process body.

    Reads see settled design state overlaid with the replay's own
    blocking writes (so intermediate temporaries behave exactly as in
    the real evaluation); all stores go to shadows.  Because a comb
    body is a deterministic function of its inputs and the design is
    quiescent, the branches taken here are precisely those of the
    settled evaluation — the backend-invariant semantic we record.
    """

    def __init__(self, process, coverage):
        super().__init__(_ShadowSim(), process)
        self.evaluator = Evaluator(_ShadowResolver(self.scope, self.sim))
        self.cov = coverage

    # Bit/word stores read current state directly off the entry in the
    # base class; replay must read the shadow instead.

    def _resolve_index_store(self, target):
        index = self.evaluator.const_or_runtime_int(target.index)
        if isinstance(target.base, ast.Identifier):
            entry = self._lookup_target(target.base.name)
            if isinstance(entry, Memory):
                def store_word(value, m=entry, i=index):
                    self.sim.write_memory(m, i, value)

                return store_word
            if isinstance(entry, Signal):
                def store_bit(value, e=entry, i=index):
                    if i is None:
                        return
                    current = self.sim.read_signal(e)
                    self.sim._write_signal(
                        e, current.replace_bits(i, value.resize(1))
                    )

                return store_bit
        raise SimulationError("unsupported indexed assignment target")

    def _resolve_part_select_store(self, target):
        if not isinstance(target.base, ast.Identifier):
            raise SimulationError("unsupported part-select target")
        entry = self._lookup_target(target.base.name)
        if not isinstance(entry, Signal):
            raise SimulationError("part-select on non-signal target")
        if target.mode == ":":
            msb = self.evaluator.const_or_runtime_int(target.msb)
            lsb = self.evaluator.const_or_runtime_int(target.lsb)
        elif target.mode == "+:":
            lsb = self.evaluator.const_or_runtime_int(target.msb)
            width = self.evaluator.const_or_runtime_int(target.lsb) or 1
            msb = None if lsb is None else lsb + width - 1
        else:
            msb = self.evaluator.const_or_runtime_int(target.msb)
            width = self.evaluator.const_or_runtime_int(target.lsb) or 1
            lsb = None if msb is None else msb - width + 1

        def store_slice(value, e=entry, hi=msb, lo=lsb):
            if hi is None or lo is None:
                return
            current = self.sim.read_signal(e)
            self.sim._write_signal(
                e,
                current.replace_bits(
                    min(hi, lo), value.resize(abs(hi - lo) + 1)
                ),
            )

        return store_slice

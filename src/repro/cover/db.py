"""The coverage database: mergeable, on-disk, content-addressed.

One :class:`CoverageDB` holds *groups* of serialized coverage:

- ``functional`` groups — one per benchmark module, the
  :meth:`repro.cover.model.CoverModel.to_dict` counters of the
  stimulus-space model (identical bin definitions for every error
  instance of a module, so campaign-wide merging accumulates one
  per-module picture);
- ``code`` groups — one per error instance (mutants have different
  ASTs, so their statement maps must not be conflated), the
  :meth:`repro.cover.code.CodeCoverage.to_dict` counters.

The **union-merge** operator sums hit counters and unions key sets;
it is commutative and associative, so ``--jobs N`` workers and
``--shard i/n`` hosts can accumulate in any order and land on the
same database.  :meth:`dumps` is deterministic bytes (sorted keys,
fixed separators), which makes "bit-identical across execution
plans" a checkable property — and is what the content address
(:meth:`save`) hashes, exactly like the campaign result cache.
"""

import hashlib
import json
import os
import tempfile

DB_SCHEMA_VERSION = 1


class CoverageMergeError(ValueError):
    """Two databases disagree on bin *definitions* (not counts)."""


class CoverageDB:
    """Groups of serialized functional + code coverage counters."""

    def __init__(self, functional=None, code=None):
        self.functional = dict(functional or {})
        self.code = dict(code or {})

    # -- accumulation --------------------------------------------------------

    def add_functional(self, group, model_dict):
        """Merge one covergroup dict (``CoverModel.to_dict``) into
        ``group``."""
        if group in self.functional:
            _merge_functional(self.functional[group], model_dict)
        else:
            self.functional[group] = _copy_json(model_dict)
        return self

    def add_code(self, group, code_dict):
        """Merge one code-coverage dict into ``group``."""
        if group in self.code:
            _merge_code(self.code[group], code_dict)
        else:
            self.code[group] = _copy_json(code_dict)
        return self

    def add_fragment(self, fragment):
        """Merge one record fragment: ``{"functional": {group: ...},
        "code": {group: ...}}`` (the shape carried by campaign
        records)."""
        for group, model_dict in (fragment.get("functional") or {}).items():
            self.add_functional(group, model_dict)
        for group, code_dict in (fragment.get("code") or {}).items():
            self.add_code(group, code_dict)
        return self

    def merge(self, other):
        """Union-merge another database into this one."""
        return self.add_fragment(
            {"functional": other.functional, "code": other.code}
        )

    @classmethod
    def from_records(cls, records):
        """Accumulate the ``coverage`` fragments of campaign records."""
        db = cls()
        for record in records:
            fragment = getattr(record, "coverage", None) or {}
            db.add_fragment(fragment)
        return db

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        return {
            "schema": DB_SCHEMA_VERSION,
            "functional": self.functional,
            "code": self.code,
        }

    @classmethod
    def from_dict(cls, data):
        if data.get("schema") != DB_SCHEMA_VERSION:
            raise ValueError(
                f"coverage DB schema {data.get('schema')!r} != "
                f"{DB_SCHEMA_VERSION}"
            )
        return cls(functional=data.get("functional"),
                   code=data.get("code"))

    def dumps(self):
        """Deterministic JSON bytes: equal databases serialize to
        equal bytes regardless of merge/insertion order."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def content_key(self):
        return hashlib.sha256(self.dumps()).hexdigest()

    def write(self, path):
        """Write the database to ``path`` atomically."""
        payload = self.dumps()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def save(self, directory):
        """Content-addressed store (like the campaign cache): writes
        ``<directory>/coverage/<sha256>.json``; returns the path.
        Shards sharing a directory never collide — identical content
        hashes to the identical path."""
        target_dir = os.path.join(os.fspath(directory), "coverage")
        os.makedirs(target_dir, exist_ok=True)
        path = os.path.join(target_dir, f"{self.content_key()}.json")
        return self.write(path)

    @classmethod
    def load(cls, path):
        with open(path, "rb") as handle:
            return cls.from_dict(json.loads(handle.read().decode("utf-8")))

    @classmethod
    def merge_paths(cls, paths):
        """Load and union-merge several database files."""
        db = cls()
        for path in paths:
            db.merge(cls.load(path))
        return db

    # -- reporting -----------------------------------------------------------

    def functional_summary(self):
        """``{group: coverage_fraction}`` from serialized counters."""
        return {
            group: _functional_coverage(model)
            for group, model in sorted(self.functional.items())
        }

    def functional_coverage(self):
        """Mean functional coverage over all groups (1.0 if empty)."""
        summary = self.functional_summary()
        if not summary:
            return 1.0
        return sum(summary.values()) / len(summary)

    def code_summary(self):
        """``{group: (stmt_cov, branch_cov)}`` fractions."""
        out = {}
        for group, code in sorted(self.code.items()):
            totals = code.get("totals", {})
            stmt_total = totals.get("stmt", 0)
            branch_total = totals.get("branch", 0)
            out[group] = (
                len(code.get("stmts", {})) / stmt_total
                if stmt_total else 1.0,
                len(code.get("branches", {})) / branch_total
                if branch_total else 1.0,
            )
        return out

    def report(self):
        lines = ["coverage database"]
        lines.append(f"  functional groups: {len(self.functional)}, "
                     f"code groups: {len(self.code)}")
        for group, fraction in self.functional_summary().items():
            model = self.functional[group]
            covered, total = _functional_bins(model)
            lines.append(
                f"  functional {group}: {covered}/{total} bins "
                f"({100.0 * fraction:.1f}%)"
            )
        code = self.code_summary()
        if code:
            stmt = sum(s for s, _ in code.values()) / len(code)
            branch = sum(b for _, b in code.values()) / len(code)
            lines.append(
                f"  code (mean over {len(code)} groups): "
                f"stmt {100.0 * stmt:.1f}%, branch {100.0 * branch:.1f}%"
            )
        lines.append(
            f"  TOTAL functional: "
            f"{100.0 * self.functional_coverage():.1f}%"
        )
        return "\n".join(lines)


# -- merge internals ---------------------------------------------------------


def _copy_json(data):
    return json.loads(json.dumps(data))


def _sum_counters(into, extra):
    for key, count in extra.items():
        into[key] = into.get(key, 0) + count


def _merge_functional(into, extra):
    for name, point in (extra.get("points") or {}).items():
        mine = into.setdefault("points", {}).get(name)
        if mine is None:
            into["points"][name] = _copy_json(point)
            continue
        if mine.get("bins") != point.get("bins"):
            raise CoverageMergeError(
                f"point '{name}' bin definitions differ"
            )
        _sum_counters(mine["hits"], point.get("hits", {}))
    for name, cross in (extra.get("crosses") or {}).items():
        mine = into.setdefault("crosses", {}).get(name)
        if mine is None:
            into["crosses"][name] = _copy_json(cross)
            continue
        if (mine.get("points") != cross.get("points")
                or mine.get("sizes") != cross.get("sizes")):
            raise CoverageMergeError(
                f"cross '{name}' definitions differ"
            )
        _sum_counters(mine["hits"], cross.get("hits", {}))
    for name, trans in (extra.get("transitions") or {}).items():
        mine = into.setdefault("transitions", {}).get(name)
        if mine is None:
            into["transitions"][name] = _copy_json(trans)
            continue
        if (mine.get("signal") != trans.get("signal")
                or mine.get("seqs") != trans.get("seqs")):
            raise CoverageMergeError(
                f"transition '{name}' definitions differ"
            )
        _sum_counters(mine["hits"], trans.get("hits", {}))


def _merge_code(into, extra):
    _sum_counters(into.setdefault("stmts", {}),
                  extra.get("stmts", {}))
    _sum_counters(into.setdefault("branches", {}),
                  extra.get("branches", {}))
    totals = into.setdefault("totals", {"stmt": 0, "branch": 0})
    for key, value in (extra.get("totals") or {}).items():
        totals[key] = max(totals.get(key, 0), value)
    toggle = into.setdefault("toggle", {})
    for name, entry in (extra.get("toggle") or {}).items():
        mine = toggle.get(name)
        if mine is None:
            toggle[name] = dict(entry)
            continue
        mine["rise"] = mine.get("rise", 0) | entry.get("rise", 0)
        mine["fall"] = mine.get("fall", 0) | entry.get("fall", 0)
        mine["width"] = max(mine.get("width", 0), entry.get("width", 0))


def _functional_bins(model):
    covered = total = 0
    for point in (model.get("points") or {}).values():
        covered += len(point.get("hits", {}))
        total += len(point.get("bins", []))
    for cross in (model.get("crosses") or {}).values():
        covered += len(cross.get("hits", {}))
        product = 1
        for size in cross.get("sizes", []):
            product *= max(1, size)
        total += product
    for trans in (model.get("transitions") or {}).values():
        covered += len(trans.get("hits", {}))
        total += len(trans.get("seqs", []))
    return covered, total


def _functional_coverage(model):
    """Mean-of-items coverage, mirroring ``CoverModel.coverage``."""
    fractions = []
    for point in (model.get("points") or {}).values():
        bins = len(point.get("bins", []))
        fractions.append(
            len(point.get("hits", {})) / bins if bins else 1.0
        )
    for cross in (model.get("crosses") or {}).values():
        product = 1
        for size in cross.get("sizes", []):
            product *= max(1, size)
        fractions.append(len(cross.get("hits", {})) / product)
    for trans in (model.get("transitions") or {}).values():
        seqs = len(trans.get("seqs", []))
        fractions.append(
            len(trans.get("hits", {})) / seqs if seqs else 1.0
        )
    if not fractions:
        return 1.0
    return sum(fractions) / len(fractions)

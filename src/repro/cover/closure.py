"""Closed-loop coverage-driven stimulus.

:class:`CoverageDrivenSequence` wraps constrained-random generation
(:class:`repro.uvm.sequence.RandomSequence` semantics) in a coverage
closure loop.  The transaction budget is split into epochs:

1. the first epoch is plain constrained-random exploration — the
   same stream a fixed-random testbench would start with;
2. after every epoch the engine reads the model's hole report
   (:func:`repro.cover.holes.holes_of`) and spends the next epoch on
   **hole targeting**: each uncovered point/cross bin gets a
   transaction whose fields are drawn *inside* the missing bin
   ranges, and each drivable input-transition hole gets the exact
   back-to-back value burst;
3. holes the generator cannot target directly (transition bins over
   DUT-internal probe signals, e.g. FSM arcs) are chased with
   **credit-weighted exploration**: every field bin is scored by how
   many first-hits coincided with it, and exploration draws bins
   proportionally to that credit — a bandit-style re-bias that, for
   example, learns to hold ``en=1`` because disabled cycles never
   produce new FSM arcs.

The loop stops at full closure or when the budget is spent.  The
whole construction is deterministic in ``seed``: the generated
stream, and therefore every downstream verification verdict, is
reproducible and cache-safe.

``evaluator(model, transactions) -> [new_hits_per_txn]`` abstracts
how candidate stimulus is scored.  The default scores against the
input-space model alone (no DUT needed); the bench registry supplies
a simulator-backed evaluator that drives the golden DUT so probe
transitions participate in the feedback.
"""

import random

from repro.cover.holes import holes_of
from repro.cover.model import input_space_model
from repro.uvm.sequence import RandomSequence, Sequence
from repro.uvm.transaction import Transaction


def default_model_factory(field_ranges):
    """Input-space model: a point per field + all pairwise crosses."""
    return lambda: input_space_model(field_ranges)


def input_space_evaluator(model, transactions):
    """Score transactions against the model without a DUT."""
    return [model.sample(txn.fields) for txn in transactions]


class _CreditTable:
    """Per-field, per-bin exploration weights (bandit-style)."""

    def __init__(self, model, field_names):
        self.points = {}
        for name in field_names:
            point = model.point(name)
            if point is not None and point.bins:
                self.points[name] = point

        self.credit = {
            name: [1.0] * len(point.bins)
            for name, point in self.points.items()
        }

    def reward(self, fields, new_hits):
        if not new_hits:
            return
        for name, point in self.points.items():
            value = fields.get(name)
            if value is None:
                continue
            index = point.bin_index(value)
            if index is not None:
                self.credit[name][index] += new_hits

    def draw(self, name, rng, spec):
        """One credit-weighted draw for ``name`` (uniform fallback)."""
        point = self.points.get(name)
        if point is None:
            return _uniform_draw(spec, rng)
        weights = self.credit[name]
        total = sum(weights)
        pick = rng.random() * total
        for index, weight in enumerate(weights):
            pick -= weight
            if pick <= 0.0:
                lo, hi = point.bins[index]
                return rng.randint(lo, hi)
        lo, hi = point.bins[-1]
        return rng.randint(lo, hi)


def _uniform_draw(spec, rng):
    if isinstance(spec, tuple) and len(spec) == 2 and \
            all(isinstance(v, int) for v in spec):
        return rng.randint(*spec)
    return rng.choice(list(spec))


def close_coverage(field_ranges, count, model, evaluator=None, seed=0,
                   epochs=4, corner_weight=0.15, hold_cycles=1,
                   target=1.0):
    """Run the closure loop; returns ``(transactions, model)``.

    Generates at most ``count`` transactions; stops early only when
    the model reports full closure (``coverage >= target``).
    """
    if evaluator is None:
        evaluator = input_space_evaluator
    rng = random.Random(seed)
    field_ranges = dict(field_ranges)
    credit = _CreditTable(model, field_ranges)
    chunk = max(1, -(-count // max(1, epochs)))  # ceil
    transactions = []

    def run_batch(batch):
        results = evaluator(model, batch)
        for txn, new_hits in zip(batch, results):
            credit.reward(txn.fields, new_hits)
        transactions.extend(batch)

    # Epoch 0: plain constrained-random exploration (the fixed-random
    # baseline's opening book, same corner-weight contract).
    opening = list(RandomSequence(
        field_ranges, count=min(chunk, count), seed=seed,
        corner_weight=corner_weight, hold_cycles=hold_cycles,
    ))
    run_batch(opening)

    while len(transactions) < count and model.coverage < target:
        remaining = count - len(transactions)
        size = min(chunk, remaining)
        holes = holes_of(model, drivable_fields=field_ranges)
        batch = _targeted_batch(field_ranges, holes, size, rng, credit,
                                hold_cycles)
        run_batch(batch)
    return transactions, model


def _targeted_batch(field_ranges, holes, size, rng, credit, hold_cycles):
    """One epoch of hole-targeted + credit-weighted transactions."""
    targetable = [hole for hole in holes if hole.fields]
    batch = []
    cursor = 0
    while len(batch) < size:
        hole = None
        if targetable:
            hole = targetable[cursor % len(targetable)]
            cursor += 1
        if hole is not None and hole.kind == "transition" and \
                hole.seq is not None and hole.signal in field_ranges:
            # Drivable input transition: emit the exact burst (clipped
            # to the remaining budget — a partial burst is still
            # useful exploration).
            for value in hole.seq:
                if len(batch) >= size:
                    break
                batch.append(_make_txn(field_ranges, {hole.signal: value},
                                       rng, credit, hold_cycles))
            continue
        pinned = {}
        if hole is not None:
            for name, (lo, hi) in hole.fields.items():
                pinned[name] = rng.randint(lo, hi)
        batch.append(_make_txn(field_ranges, pinned, rng, credit,
                               hold_cycles))
    return batch


def _make_txn(field_ranges, pinned, rng, credit, hold_cycles):
    fields = {}
    for name, spec in field_ranges.items():
        if name in pinned:
            fields[name] = pinned[name]
        else:
            fields[name] = credit.draw(name, rng, spec)
    return Transaction(fields, hold_cycles=hold_cycles)


class CoverageDrivenSequence(Sequence):
    """A :class:`~repro.uvm.sequence.Sequence` over the closure loop.

    Generation runs once, lazily, on first iteration (repair loops
    re-run their stimulus many times; the closed stream must be the
    same every pass) and is fully determined by ``seed``.
    """

    name = "coverage_driven"

    def __init__(self, field_ranges, count, seed=0, model_factory=None,
                 evaluator=None, epochs=4, corner_weight=0.15,
                 hold_cycles=1, target=1.0):
        self.field_ranges = dict(field_ranges)
        self.count = count
        self.seed = seed
        self.model_factory = model_factory or \
            default_model_factory(self.field_ranges)
        self.evaluator = evaluator
        self.epochs = epochs
        self.corner_weight = corner_weight
        self.hold_cycles = hold_cycles
        self.target = target
        self._cached = None
        self.model = None

    def _generate(self):
        if self._cached is None:
            model = self.model_factory()
            self._cached, self.model = close_coverage(
                self.field_ranges, self.count, model,
                evaluator=self.evaluator, seed=self.seed,
                epochs=self.epochs, corner_weight=self.corner_weight,
                hold_cycles=self.hold_cycles, target=self.target,
            )
        return self._cached

    def items(self):
        for txn in self._generate():
            yield txn.copy()

"""Rich functional coverage: crosses, transitions, probes.

The flat per-signal bin model (:mod:`repro.uvm.coverage`) cannot say
"did we ever drive a carry-in of 1 *while* both operands saturate" or
"did the FSM ever take the S2 -> S3 arc".  This module adds exactly
those two axes on top of the existing :class:`CoverPoint` primitive:

- :class:`Cross` — the cartesian product of several coverpoints'
  bins; a cross bin is hit when one sample lands every member point
  in the matching bin simultaneously;
- :class:`TransitionPoint` — value *sequences* over successive
  samples of one signal (FSM arcs, handshake orders).  An x-state
  sample breaks the chain (an unknown cannot witness a transition);
- :class:`CoverModel` — a named covergroup bundling points, crosses
  and transitions, drop-in for :class:`repro.uvm.coverage.Coverage`
  (same ``sample``/``coverage``/``report`` surface) plus hole
  reports (:mod:`repro.cover.holes`) and a JSON-pure serialization
  the coverage database (:mod:`repro.cover.db`) union-merges.

``probes`` names DUT-internal signals (e.g. an FSM state register)
the environment should read from the simulator and merge into every
sample — how transition coverage sees state the transaction fields
never carry.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.uvm.coverage import CoverPoint

#: Separator for cross-bin keys in serialized form ("2|0|1").
_KEY_SEP = "|"


def _known_int(value):
    """Normalize a sampled value to an int, or ``None`` for x-state."""
    if value is None:
        return None
    if hasattr(value, "has_x"):
        if value.has_x:
            return None
        return value.to_int()
    return int(value)


@dataclass
class Cross:
    """Cross coverage over two or more member coverpoints.

    A cross bin is a tuple of member bin indexes; it is hit when a
    single sample bins every member simultaneously.  ``total`` is the
    full cartesian product — crosses are deliberately the hardest
    bins to close, which is what makes them informative.
    """

    name: str
    points: List[CoverPoint]
    hits: Dict[Tuple[int, ...], int] = field(default_factory=dict)

    def sample(self, indexes):
        """Record one sample given ``{signal: bin_index}`` for this
        sample; returns the cross key hit, or ``None``."""
        key = []
        for point in self.points:
            index = indexes.get(point.signal)
            if index is None:
                return None
            key.append(index)
        key = tuple(key)
        self.hits[key] = self.hits.get(key, 0) + 1
        return key

    @property
    def total(self):
        product = 1
        for point in self.points:
            product *= max(1, len(point.bins))
        return product

    @property
    def covered(self):
        return len(self.hits)

    @property
    def coverage(self):
        return self.covered / self.total if self.total else 1.0

    def bin_values(self, key):
        """The ``{signal: (lo, hi)}`` ranges a cross key stands for."""
        return {
            point.signal: point.bins[index]
            for point, index in zip(self.points, key)
        }

    def iter_keys(self):
        """All cross keys in deterministic (row-major) order."""
        def rec(prefix, rest):
            if not rest:
                yield tuple(prefix)
                return
            for index in range(len(rest[0].bins)):
                yield from rec(prefix + [index], rest[1:])

        yield from rec([], self.points)


@dataclass
class TransitionPoint:
    """Transition bins: value sequences over successive samples.

    ``seqs`` is a list of value tuples; a bin is hit whenever the
    last ``len(seq)`` known samples of ``signal`` equal the sequence.
    The tracker resets on an x-state sample — four-state semantics:
    an unknown cannot witness a transition.
    """

    signal: str
    seqs: List[Tuple[int, ...]]
    name: Optional[str] = None
    hits: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.name is None:
            self.name = f"{self.signal}_trans"
        self._history = []
        self._depth = max((len(s) for s in self.seqs), default=1)

    def sample(self, value):
        """Feed one sample; returns the list of bin indexes hit."""
        value = _known_int(value)
        if value is None:
            self._history = []
            return []
        self._history.append(value)
        if len(self._history) > self._depth:
            del self._history[: len(self._history) - self._depth]
        hit = []
        for index, seq in enumerate(self.seqs):
            n = len(seq)
            if n <= len(self._history) and \
                    tuple(self._history[-n:]) == tuple(seq):
                self.hits[index] = self.hits.get(index, 0) + 1
                hit.append(index)
        return hit

    def reset_tracker(self):
        """Forget sample history (new stimulus stream), keep hits."""
        self._history = []

    @property
    def total(self):
        return len(self.seqs)

    @property
    def covered(self):
        return len(self.hits)

    @property
    def coverage(self):
        return self.covered / self.total if self.total else 1.0


class CoverModel:
    """A named covergroup: points + crosses + transitions + probes.

    Drop-in for :class:`repro.uvm.coverage.Coverage`: the environment
    calls ``sample({signal: value})`` per monitor observation and
    reads ``coverage``/``report()``.  ``sample`` returns the number of
    *newly covered* bins (first hits), which the coverage-driven
    stimulus engine uses as its reward signal.
    """

    def __init__(self, name="cover", points=None, crosses=None,
                 transitions=None, probes=None):
        self.name = name
        self.points = list(points or [])
        self.crosses = list(crosses or [])
        self.transitions = list(transitions or [])
        self.probes = list(probes or [])

    # -- construction --------------------------------------------------------

    def add_point(self, point):
        self.points.append(point)
        return point

    def add_cross(self, *points, name=None):
        if name is None:
            name = "x".join(p.signal for p in points)
        cross = Cross(name=name, points=list(points))
        self.crosses.append(cross)
        return cross

    def add_transitions(self, signal, seqs, name=None):
        point = TransitionPoint(signal=signal,
                                seqs=[tuple(s) for s in seqs], name=name)
        self.transitions.append(point)
        return point

    def point(self, signal):
        for point in self.points:
            if point.signal == signal:
                return point
        return None

    # -- sampling ------------------------------------------------------------

    def sample(self, values):
        """Sample everything from a ``{signal: int-or-Value}`` dict.

        Returns the count of bins covered for the first time by this
        sample (points + crosses + transitions).
        """
        new = 0
        indexes = {}
        for point in self.points:
            value = _known_int(values.get(point.signal))
            if value is None:
                continue
            index = point.bin_index(value)
            if index is None:
                continue
            if index not in point.hits:
                new += 1
            point.hits[index] = point.hits.get(index, 0) + 1
            indexes[point.signal] = index
        for cross in self.crosses:
            before = cross.covered
            cross.sample(indexes)
            new += cross.covered - before
        for trans in self.transitions:
            if trans.signal not in values:
                continue
            before = trans.covered
            trans.sample(values.get(trans.signal))
            new += trans.covered - before
        return new

    def reset_trackers(self):
        """Reset transition history (hits survive) — call between
        independent stimulus streams."""
        for trans in self.transitions:
            trans.reset_tracker()

    # -- aggregation ---------------------------------------------------------

    def _items(self):
        return list(self.points) + list(self.crosses) + \
            list(self.transitions)

    @property
    def coverage(self):
        items = self._items()
        if not items:
            return 1.0
        return sum(i.coverage for i in items) / len(items)

    @property
    def covered_bins(self):
        return sum(i.covered for i in self._items())

    @property
    def total_bins(self):
        return sum(i.total for i in self._items())

    def report(self):
        lines = [f"covergroup {self.name}:"]
        for point in self.points:
            lines.append(
                f"  coverpoint {point.signal}: "
                f"{point.covered}/{point.total} bins "
                f"({100.0 * point.coverage:.1f}%)"
            )
        for cross in self.crosses:
            lines.append(
                f"  cross {cross.name}: {cross.covered}/{cross.total} "
                f"bins ({100.0 * cross.coverage:.1f}%)"
            )
        for trans in self.transitions:
            lines.append(
                f"  transition {trans.name}: "
                f"{trans.covered}/{trans.total} bins "
                f"({100.0 * trans.coverage:.1f}%)"
            )
        lines.append(f"  TOTAL: {100.0 * self.coverage:.1f}%")
        return "\n".join(lines)

    # -- serialization (JSON-pure: dict/list/str/int only) -------------------

    def to_dict(self):
        points = {}
        for point in self.points:
            points[point.signal] = {
                "bins": [[lo, hi] for lo, hi in point.bins],
                "hits": {str(i): n for i, n in sorted(point.hits.items())},
            }
        crosses = {}
        for cross in self.crosses:
            crosses[cross.name] = {
                "points": [p.signal for p in cross.points],
                "sizes": [len(p.bins) for p in cross.points],
                "hits": {
                    _KEY_SEP.join(str(i) for i in key): n
                    for key, n in sorted(cross.hits.items())
                },
            }
        transitions = {}
        for trans in self.transitions:
            transitions[trans.name] = {
                "signal": trans.signal,
                "seqs": [list(s) for s in trans.seqs],
                "hits": {str(i): n for i, n in sorted(trans.hits.items())},
            }
        return {
            "points": points,
            "crosses": crosses,
            "transitions": transitions,
        }


def choice_bins(choices):
    """One bin per distinct explicit choice, in sorted value order."""
    return [(v, v) for v in sorted(set(choices))]


def point_for_field(name, spec, bin_count=4):
    """A coverpoint for one stimulus field spec.

    ``spec`` follows :class:`repro.uvm.sequence.RandomSequence`: a
    2-tuple ``(lo, hi)`` int range gets disjoint range+corner bins;
    anything else is an explicit choice list with one bin per value.
    """
    if isinstance(spec, tuple) and len(spec) == 2 and \
            all(isinstance(v, int) for v in spec):
        return CoverPoint(name, CoverPoint.range_bins(*spec,
                                                      bin_count=bin_count))
    return CoverPoint(name, choice_bins(spec))


def input_space_model(field_ranges, bin_count=4, name="stimulus"):
    """The canonical stimulus-space model: a point per field plus all
    pairwise crosses.  Shared by the bench registry (which then adds
    FSM transitions/probes) and the closure loop's default model."""
    points = [
        point_for_field(field, spec, bin_count=bin_count)
        for field, spec in field_ranges.items()
    ]
    model = CoverModel(name=name, points=points)
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            model.add_cross(points[i], points[j])
    return model


def model_from_counters(group, data):
    """Rebuild a :class:`CoverModel` skeleton (bins + hits) from
    serialized coverage-DB counters.

    ``data`` is one module's entry of a coverage database or a
    record's coverage fragment (``{"points": ..., "crosses": ...,
    "transitions": ...}``); the rebuilt model is what hole reports
    (:mod:`repro.cover.holes`) run over — both the ``repro.cli
    coverage --holes`` path and the coverage-hole section of a
    forensic debug bundle.
    """
    model = CoverModel(name=group)
    for name, entry in sorted((data.get("points") or {}).items()):
        point = CoverPoint(name, [tuple(b) for b in entry["bins"]])
        point.hits = {int(k): v for k, v in entry["hits"].items()}
        model.points.append(point)
    for name, entry in sorted((data.get("crosses") or {}).items()):
        members = [model.point(p) for p in entry["points"]]
        if any(m is None for m in members):
            continue
        cross = Cross(name=name, points=members)
        cross.hits = {
            tuple(int(i) for i in key.split("|")): count
            for key, count in entry["hits"].items()
        }
        model.crosses.append(cross)
    for name, entry in sorted((data.get("transitions") or {}).items()):
        trans = TransitionPoint(
            signal=entry["signal"],
            seqs=[tuple(s) for s in entry["seqs"]], name=name,
        )
        trans.hits = {int(k): v for k, v in entry["hits"].items()}
        model.transitions.append(trans)
    return model

"""UVLLM reproduction: an automated universal RTL verification framework.

Public API highlights:

- :class:`repro.core.UVLLM` — the end-to-end verify-and-repair pipeline;
- :class:`repro.llm.MockLLM` — the deterministic simulated LLM (swap in
  any :class:`repro.llm.LLMClient` implementation for a real model);
- :mod:`repro.bench` — the 27-design benchmark suite with specs,
  reference models and UVM harness configuration;
- :mod:`repro.errgen` — the paradigm error generator (Table I);
- :mod:`repro.experiments` — drivers regenerating every paper table
  and figure.

Quick start::

    from repro import UVLLM, MockLLM, UVLLMConfig, get_module

    bench = get_module("counter_12")
    buggy = bench.source.replace("out + 4'd1", "out - 4'd1")
    outcome = UVLLM(MockLLM(seed=0), UVLLMConfig()).verify_and_repair(
        buggy, bench
    )
    assert outcome.hit
"""

from repro.bench.registry import (
    all_modules,
    get_module,
    make_fr_sequence,
    make_hr_sequence,
)
from repro.core.config import UVLLMConfig
from repro.core.framework import UVLLM, VerificationOutcome
from repro.llm.client import LLMClient, LLMResponse
from repro.llm.mock import MockLLM, MockLLMProfile

__version__ = "1.0.0"

__all__ = [
    "UVLLM",
    "UVLLMConfig",
    "VerificationOutcome",
    "LLMClient",
    "LLMResponse",
    "MockLLM",
    "MockLLMProfile",
    "get_module",
    "all_modules",
    "make_hr_sequence",
    "make_fr_sequence",
    "__version__",
]

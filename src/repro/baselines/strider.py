"""Strider reimplementation (paper [8]).

Strider repairs HDL programming defects with *signal value transition*
analysis: it compares expected and actual output transitions from the
provided tests, traces the failing output's cone, and applies a fixed
template set (operator swaps and constant increments/decrements) to
candidate statements — no LLM anywhere.

Because the templates are fixed, anything outside them (sensitivity
lists, declarations, structural damage) is out of reach; and because it
can only rank by the given tests, it overfits the finite suite exactly
like the paper's Fig. 6 shows.  Syntax errors are out of scope entirely.
"""

import re

from repro.baselines.common import BaselineOutcome, SimpleTestbench
from repro.lint.linter import Linter
from repro.llm.repair_knowledge import (
    CandidatePatch,
    FunctionalRepairEngine,
    _find_assign_lines,
)
from repro.metrics.timing import TimingModel

_TEMPLATE_SECONDS = 0.01  # one template instantiation


class Strider:
    """Transition-guided template repair."""

    name = "strider"

    def __init__(self, max_candidates=60, vectors=8):
        self.max_candidates = max_candidates
        self.vectors = vectors
        self.linter = Linter()
        self.engine = FunctionalRepairEngine(max_candidates=max_candidates)

    def repair(self, source, bench):
        timing = TimingModel()
        testbench = SimpleTestbench(bench, vectors=self.vectors)

        if self.linter.lint(source).errors:
            timing.lint("strider")
            # Template repair cannot synthesize missing syntax.
            return BaselineOutcome(
                final_source=source, hit=False, seconds=timing.seconds,
                stage_seconds=dict(timing.clock.by_stage),
            )

        result = testbench.run(source, timing, stage="strider")
        if result.all_passed:
            return BaselineOutcome(
                final_source=source, hit=True, seconds=timing.seconds,
                stage_seconds=dict(timing.clock.by_stage),
            )

        # Transition analysis: failing outputs -> their assignment cone.
        signals = result.mismatch_signals
        focus = self.engine.focus_lines_for(source, signals, None)
        candidates = [
            c for c in self.engine.candidates(source, focus)
            if c.kind.startswith(("op:", "const:"))
        ]

        tried = 0
        for candidate in candidates:
            if tried >= self.max_candidates:
                break
            tried += 1
            timing.clock.charge("strider", _TEMPLATE_SECONDS)
            patched = self._apply(source, candidate)
            if patched is None:
                continue
            if self.linter.lint(patched).errors:
                continue
            candidate_result = testbench.run(patched, timing,
                                             stage="strider")
            if candidate_result.all_passed:
                return BaselineOutcome(
                    final_source=patched, hit=True, iterations=tried,
                    seconds=timing.seconds,
                    stage_seconds=dict(timing.clock.by_stage),
                )
        return BaselineOutcome(
            final_source=source, hit=False, iterations=tried,
            seconds=timing.seconds,
            stage_seconds=dict(timing.clock.by_stage),
        )

    @staticmethod
    def _apply(source, candidate):
        lines = source.splitlines()
        index = candidate.line_no - 1
        if not (0 <= index < len(lines)) or lines[index] != candidate.original:
            return None
        lines[index] = candidate.patched
        return "\n".join(lines) + "\n"

"""MEIC reimplementation (paper [17]).

MEIC iterates an LLM fixer over the DUT with:

- a *fixed finite testbench* (8 vectors) as the acceptance oracle;
- *raw simulator logs* as the error information (no localization);
- *whole-module regeneration* each round (no original/patch pairs);
- an *LLM judge* (not a quantitative score) deciding whether the new
  version is better — occasionally wrong, so bad versions survive.

Every one of those choices costs it either fix rate or tokens relative
to UVLLM; Table II's ~10x execution-time gap comes straight from the
regeneration token volume times the larger iteration count.
"""

from repro.baselines.common import BaselineOutcome, SimpleTestbench
from repro.lint.linter import Linter
from repro.llm.prompts import build_repair_prompt, build_syntax_prompt
from repro.llm.schema import (
    COMPLETE_SCHEMA,
    REPAIR_SCHEMA,
    SchemaValidationError,
    parse_structured_response,
)
from repro.core.patches import apply_pairs
from repro.metrics.timing import TimingModel


class MEIC:
    """The MEIC dual-agent iterative debugger."""

    name = "meic"

    def __init__(self, llm, max_iterations=10, vectors=8):
        self.llm = llm
        self.max_iterations = max_iterations
        self.vectors = vectors
        self.linter = Linter()

    def repair(self, source, bench):
        timing = TimingModel()
        calls_before = self.llm.budget.calls
        testbench = SimpleTestbench(bench, vectors=self.vectors)
        current = source

        # Syntax stage: LLM-only (no script templates), complete regen.
        for _ in range(4):
            lint = self.linter.lint(current)
            timing.lint("meic")
            if not lint.errors:
                break
            prompt = build_syntax_prompt(current, lint.format(),
                                         spec=bench.spec,
                                         patch_form="complete")
            response = self.llm.complete(prompt, task="syntax")
            timing.llm_call("meic", response)
            try:
                data = parse_structured_response(response.text,
                                                 COMPLETE_SCHEMA)
            except SchemaValidationError:
                continue
            code = data.get("code", "")
            if code.strip():
                current = code if code.endswith("\n") else code + "\n"

        if self.linter.lint(current).errors:
            return BaselineOutcome(
                final_source=current, hit=False,
                seconds=timing.seconds,
                llm_calls=self.llm.budget.calls - calls_before,
                stage_seconds=dict(timing.clock.by_stage),
            )

        result = testbench.run(current, timing, stage="meic")
        iterations = 0
        previous = current
        while not result.all_passed and iterations < self.max_iterations:
            iterations += 1
            raw_log = testbench.failure_log(result)
            prompt = build_repair_prompt(
                current, bench.spec, raw_log, patch_form="complete"
            )
            response = self.llm.complete(prompt, task="repair")
            timing.llm_call("meic", response)
            try:
                data = parse_structured_response(
                    response.text, COMPLETE_SCHEMA
                )
            except SchemaValidationError:
                continue
            candidate = data.get("code", "")
            if not candidate.strip():
                continue
            if not candidate.endswith("\n"):
                candidate += "\n"
            if self.linter.lint(candidate).errors:
                timing.lint("meic")
                continue  # regeneration broke the syntax; discard
            candidate_result = testbench.run(candidate, timing, stage="meic")
            if candidate_result.all_passed:
                return BaselineOutcome(
                    final_source=candidate, hit=True,
                    iterations=iterations, seconds=timing.seconds,
                    llm_calls=self.llm.budget.calls - calls_before,
                    stage_seconds=dict(timing.clock.by_stage),
                )
            # LLM-as-judge: keep whichever version the judge prefers.
            judge_prompt = (
                "You are a Verilog review expert. Two candidate repairs "
                "follow; answer with JSON {\"verdict\": \"better\"|"
                "\"worse\"} for the NEW version.\n## OLD\n"
                + previous + "\n## NEW\n" + candidate
            )
            verdict = self.llm.complete(judge_prompt, task="judge")
            timing.llm_call("meic", verdict)
            if '"better"' in verdict.text:
                previous = current
                current = candidate
                result = candidate_result
            # else: discard the candidate, keep iterating on `current`.

        return BaselineOutcome(
            final_source=current,
            hit=result.all_passed,
            iterations=iterations,
            seconds=timing.seconds,
            llm_calls=self.llm.budget.calls - calls_before,
            stage_seconds=dict(timing.clock.by_stage),
        )

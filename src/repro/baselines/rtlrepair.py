"""RTL-Repair reimplementation (paper [9]).

RTL-Repair performs fast symbolic repair: it instruments the design
with repair templates (literal replacement, operator substitution,
condition tweaks), then solves for template parameters that make the
provided tests pass.  The search is exhaustive over a small edit space
rather than localized, so it is strong on condition/literal defects but
blind to anything its template grammar cannot express, and — like every
test-driven repair — it accepts the first parameterization that
satisfies the finite test set (hence the Fig. 6 HR-FR gap).

The "solver" here is an explicit enumeration of the same parameter
space, checked against the testbench, which preserves both the
capability envelope and the overfitting behaviour.
"""

import re

from repro.baselines.common import BaselineOutcome, SimpleTestbench
from repro.lint.linter import Linter
from repro.metrics.timing import TimingModel

_SOLVE_SECONDS = 0.02  # per solver query (template parameterization)

_SIZED = re.compile(r"(\d+)'([bdh])([0-9a-fA-F_]+)")
_OPS = [("==", "!="), ("!=", "=="), ("<", "<="), ("<=", "<"),
        (">", ">="), (">=", ">"), ("&&", "||"), ("||", "&&"),
        ("+", "-"), ("-", "+")]


class RTLRepair:
    """Template/symbolic repair over literals, comparisons, conditions."""

    name = "rtlrepair"

    def __init__(self, budget=120, vectors=8):
        self.budget = budget
        self.vectors = vectors
        self.linter = Linter()

    def repair(self, source, bench):
        timing = TimingModel()
        testbench = SimpleTestbench(bench, vectors=self.vectors)

        if self.linter.lint(source).errors:
            timing.lint("rtlrepair")
            return BaselineOutcome(
                final_source=source, hit=False, seconds=timing.seconds,
                stage_seconds=dict(timing.clock.by_stage),
            )

        result = testbench.run(source, timing, stage="rtlrepair")
        if result.all_passed:
            return BaselineOutcome(
                final_source=source, hit=True, seconds=timing.seconds,
                stage_seconds=dict(timing.clock.by_stage),
            )

        tried = 0
        for patched in self._template_space(source):
            if tried >= self.budget:
                break
            tried += 1
            timing.clock.charge("rtlrepair", _SOLVE_SECONDS)
            if self.linter.lint(patched).errors:
                continue
            candidate_result = testbench.run(patched, timing,
                                             stage="rtlrepair")
            if candidate_result.all_passed:
                return BaselineOutcome(
                    final_source=patched, hit=True, iterations=tried,
                    seconds=timing.seconds,
                    stage_seconds=dict(timing.clock.by_stage),
                )
        return BaselineOutcome(
            final_source=source, hit=False, iterations=tried,
            seconds=timing.seconds,
            stage_seconds=dict(timing.clock.by_stage),
        )

    def _template_space(self, source):
        """Enumerate the template parameter space, conditions first
        (RTL-Repair's published strength)."""
        lines = source.splitlines()
        # Phase 1: condition literals and comparison operators.
        for index, line in enumerate(lines):
            if re.search(r"\b(if|while|case)\b", line) or "?" in line:
                yield from self._line_edits(lines, index, line)
        # Phase 2: every remaining assignment.
        for index, line in enumerate(lines):
            if "=" in line and not re.search(r"\b(if|while|case)\b", line):
                yield from self._line_edits(lines, index, line)

    def _line_edits(self, lines, index, line):
        for match in _SIZED.finditer(line):
            width = int(match.group(1))
            base = match.group(2)
            radix = {"b": 2, "d": 10, "h": 16}[base]
            try:
                value = int(match.group(3).replace("_", ""), radix)
            except ValueError:
                continue
            top = (1 << width) - 1
            for replacement in (value + 1, max(0, value - 1), 0, 1, top,
                                value // 2, min(top, value * 2 + 1)):
                if replacement == value or replacement > top:
                    continue
                rendered = {
                    "b": f"{width}'b{replacement:b}",
                    "d": f"{width}'d{replacement}",
                    "h": f"{width}'h{replacement:x}",
                }[base]
                yield self._splice(
                    lines, index,
                    line[: match.start()] + rendered + line[match.end():],
                )
        for old, new in _OPS:
            position = line.find(old)
            if position >= 0:
                window = line[max(0, position - 1): position + len(old) + 1]
                if old in ("<", ">") and "=" in window:
                    continue
                yield self._splice(
                    lines, index,
                    line[:position] + new + line[position + len(old):],
                )

    @staticmethod
    def _splice(lines, index, new_line):
        copy = list(lines)
        copy[index] = new_line
        return "\n".join(copy) + "\n"

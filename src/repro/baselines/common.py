"""Shared baseline infrastructure: the finite testbench and outcomes."""

from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.timing import TimingModel
from repro.uvm.sequence import ConcatSequence, RandomSequence, ResetSequence
from repro.uvm.test import run_uvm_test


@dataclass
class BaselineOutcome:
    """Result of one baseline run on one instance."""

    final_source: str
    hit: bool                      # passed the method's own testbench
    iterations: int = 0
    seconds: float = 0.0
    llm_calls: int = 0
    stage_seconds: dict = field(default_factory=dict)

    @property
    def succeeded(self):
        return self.hit


class SimpleTestbench:
    """The fixed finite testbench MEIC-style methods verify against.

    A handful of random vectors with a single seed and no coverage
    goals — the paper's critique: ~10% of errors escape it entirely and
    repairs overfit to it.
    """

    def __init__(self, bench, vectors=8, seed=42):
        self.bench = bench
        self.vectors = vectors
        self.seed = seed

    def sequence(self):
        parts = []
        if self.bench.protocol.is_clocked and \
                self.bench.protocol.reset is not None:
            parts.append(
                ResetSequence(
                    cycles=1,
                    fields={name: 0 for name in self.bench.field_ranges},
                )
            )
        parts.append(
            RandomSequence(
                self.bench.field_ranges, count=self.vectors, seed=self.seed,
                hold_cycles=self.bench.hold_cycles,
            )
        )
        return ConcatSequence(*parts)

    def run(self, source, timing=None, stage="sim"):
        """Run the DUT against the finite suite; returns the TestResult."""
        result = run_uvm_test(
            source, self.sequence(), self.bench.protocol, self.bench.model(),
            self.bench.compare_signals, top=self.bench.top,
        )
        if timing is not None:
            events = (
                result.simulator.event_count
                if result.simulator is not None else 100
            )
            timing.simulation(events, stage=stage)
        return result

    def failure_log(self, result, max_lines=20):
        """The raw, minimally-processed log text these methods prompt
        with (low information density — the paper's point)."""
        lines = result.log.format().splitlines()
        error_lines = [l for l in lines if "UVM_ERROR" in l]
        shown = error_lines[:max_lines] or lines[:max_lines]
        return "\n".join(shown)

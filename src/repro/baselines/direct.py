"""Bare GPT-4-turbo repair (the paper's "GPT-4-turbo" baseline).

No framework: the model sees the code plus the raw failure log once per
sample and regenerates the module; ``k`` samples are drawn (pass@k) and
the first one that passes the finite testbench is accepted.
"""

from repro.baselines.common import BaselineOutcome, SimpleTestbench
from repro.lint.linter import Linter
from repro.llm.prompts import build_repair_prompt, build_syntax_prompt
from repro.llm.schema import (
    COMPLETE_SCHEMA,
    REPAIR_SCHEMA,
    SchemaValidationError,
    parse_structured_response,
)
from repro.core.patches import apply_pairs
from repro.metrics.timing import TimingModel


class DirectLLM:
    """One-shot (pass@k) LLM repair without a verification framework."""

    name = "gpt-4-turbo"

    def __init__(self, llm, samples=5, vectors=8):
        self.llm = llm
        self.samples = samples
        self.vectors = vectors
        self.linter = Linter()

    def repair(self, source, bench):
        timing = TimingModel()
        calls_before = self.llm.budget.calls
        testbench = SimpleTestbench(bench, vectors=self.vectors)

        lint = self.linter.lint(source)
        timing.lint("direct")
        if lint.errors:
            error_text = lint.format()
        else:
            result = testbench.run(source, timing, stage="direct")
            if result.all_passed:
                return BaselineOutcome(
                    final_source=source, hit=True, seconds=timing.seconds,
                    stage_seconds=dict(timing.clock.by_stage),
                )
            error_text = testbench.failure_log(result)

        for sample in range(self.samples):
            if lint.errors:
                prompt = build_syntax_prompt(source, error_text,
                                             spec=bench.spec,
                                             patch_form="complete")
                response = self.llm.complete(prompt, task="syntax")
                timing.llm_call("direct", response)
                candidate = self._parse_complete(response.text)
            else:
                prompt = build_repair_prompt(
                    source, bench.spec, error_text, patch_form="complete"
                )
                response = self.llm.complete(prompt, task="repair")
                timing.llm_call("direct", response)
                candidate = self._parse_complete(response.text)
            if candidate is None:
                continue
            if self.linter.lint(candidate).errors:
                timing.lint("direct")
                continue
            result = testbench.run(candidate, timing, stage="direct")
            if result.all_passed:
                return BaselineOutcome(
                    final_source=candidate, hit=True,
                    iterations=sample + 1, seconds=timing.seconds,
                    llm_calls=self.llm.budget.calls - calls_before,
                    stage_seconds=dict(timing.clock.by_stage),
                )
        return BaselineOutcome(
            final_source=source, hit=False, iterations=self.samples,
            seconds=timing.seconds,
            llm_calls=self.llm.budget.calls - calls_before,
            stage_seconds=dict(timing.clock.by_stage),
        )

    def _apply_pairs_response(self, source, text):
        try:
            data = parse_structured_response(text, REPAIR_SCHEMA)
        except SchemaValidationError:
            return None
        updated, applied = apply_pairs(source, data.get("correct", []))
        return updated if applied else None

    def _parse_complete(self, text):
        try:
            data = parse_structured_response(text, COMPLETE_SCHEMA)
        except SchemaValidationError:
            return None
        code = data.get("code", "")
        if not code.strip():
            return None
        return code if code.endswith("\n") else code + "\n"

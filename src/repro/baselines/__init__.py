"""Comparator methods from the paper's evaluation.

Each baseline reimplements the comparison system at the level the paper
evaluates it:

- :class:`MEIC` — iterative LLM debugging with a *fixed, finite*
  testbench, raw-log prompts, whole-module regeneration and an LLM
  judge instead of a quantitative score (paper [17]);
- :class:`DirectLLM` — GPT-4-turbo one-shot repair (pass@k sampling,
  no framework around it);
- :class:`Strider` — signal-value-transition-guided template repair,
  no LLM, functional errors only (paper [8]);
- :class:`RTLRepair` — template/symbolic repair over small literal and
  operator edits, functional errors only (paper [9]).

All of them accept through their *own* testbench — exactly the property
that produces the HR >> FR overfitting gap of Figs. 5-6.
"""

from repro.baselines.common import BaselineOutcome, SimpleTestbench
from repro.baselines.meic import MEIC
from repro.baselines.direct import DirectLLM
from repro.baselines.strider import Strider
from repro.baselines.rtlrepair import RTLRepair

__all__ = [
    "BaselineOutcome",
    "SimpleTestbench",
    "MEIC",
    "DirectLLM",
    "Strider",
    "RTLRepair",
]

"""Campaign execution: serial or process-pool, cache-aware.

The scheduler owns no experiment semantics.  A :class:`WorkUnit` is
executed by ``repro.experiments.runner.run_unit`` (imported lazily so
the experiments layer can itself depend on this package without an
import cycle); everything here is generic plumbing: resolve cache
hits, fan the misses out over a ``ProcessPoolExecutor``, persist each
finished record from the parent process, and return records in grid
order.

Because every unit is seeded from its own fields and shares no mutable
state with its siblings, results are bit-identical whether ``jobs`` is
1 (plain in-process loop) or N — the only observable difference is
wall-clock time.
"""

import concurrent.futures
import os

from repro.runner.cache import ResultCache
from repro.runner.report import ProgressReporter


def execute_unit(unit):
    """Run one work unit to completion (top-level: picklable).

    The experiments layer is imported lazily; in a pool worker this
    happens once per process on the first unit it receives.
    """
    from repro.experiments.runner import run_unit

    return run_unit(unit)


def _execute_with_kernel_stats(executor, unit):
    """Run ``executor(unit)`` and report the compiled-kernel cache
    movement it caused (top-level: picklable for pool workers).

    The kernel cache lives per worker process; shipping per-unit
    deltas back with each record lets the parent aggregate a
    campaign-wide compile/hit picture for the progress stream.
    """
    from repro.sim.compile import cache as kernel_cache

    before = kernel_cache.stats()
    record = executor(unit)
    return record, kernel_cache.stats_delta(before)


def _execute_group_with_kernel_stats(units, lanes):
    """Run one design-fingerprint unit group (top-level: picklable).

    Returns ``(records, lane_infos, kernel_delta)`` — the group's
    records in unit order plus the lane-batch info dicts and kernel
    cache movement for the parent's campaign-wide counters.
    """
    from repro.experiments.runner import execute_unit_group
    from repro.sim.compile import cache as kernel_cache

    before = kernel_cache.stats()
    records, lane_infos = execute_unit_group(units, lanes)
    return records, lane_infos, kernel_cache.stats_delta(before)


class CampaignRunner:
    """Executes a list of work units with caching and parallelism.

    ``executor`` is the unit-execution primitive — any picklable
    module-level callable taking one unit (the default runs campaign
    work units through the experiments layer; the fuzz campaign passes
    :func:`repro.fuzz.campaign.execute_fuzz_unit`).  Units only need a
    ``cache_key()`` method when a cache is attached.

    ``lanes > 1`` turns on lane-packed dispatch: cache-missing
    compiled-backend campaign units sharing a ``design_fingerprint``
    are executed as one group whose initial verification runs advance
    up to ``lanes`` stimulus seeds per packed simulation step
    (:func:`repro.experiments.runner.execute_unit_group`).  Grouping
    never changes a record — every unit still lands in the cache under
    its own content key — so ``lanes=N`` and ``lanes=1`` campaigns are
    bit-identical.  Only the default executor understands grouping;
    custom executors always run unit-at-a-time.
    """

    def __init__(self, jobs=1, cache=None, reporter=None, executor=None,
                 lanes=1):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.reporter = reporter
        self.executor = executor if executor is not None else execute_unit
        self.lanes = max(1, int(lanes))
        #: Aggregated compiled-kernel cache movement across all
        #: executed units (including pool workers' deltas).
        self.kernel_stats = {"compiled": 0, "memo_hits": 0,
                             "disk_hits": 0}
        #: Lane-batch movement: how many packed batches ran (at
        #: ``lanes`` width) and how many fell back to per-lane scalar
        #: simulation (demoted designs / non-aligned stimulus).
        self.lane_stats = {"lanes": self.lanes, "packed_batches": 0,
                           "demoted_batches": 0}

    def _absorb_kernel_stats(self, delta):
        for key, value in delta.items():
            if key in self.kernel_stats:
                self.kernel_stats[key] += value

    def _absorb_lane_stats(self, lane_infos):
        for info in lane_infos:
            if info.get("packed"):
                self.lane_stats["packed_batches"] += 1
            else:
                self.lane_stats["demoted_batches"] += 1

    def run(self, units, progress=None):
        """Execute ``units``; returns records in the same order.

        ``progress``, if given, is called as ``progress(done, total)``
        after every resolved unit (cached or executed).
        """
        units = list(units)
        total = len(units)
        results = [None] * total
        done = cached = 0

        def advance(is_hit):
            nonlocal done, cached
            done += 1
            cached += 1 if is_hit else 0
            if self.reporter is not None:
                self.reporter.update(done, cached=cached,
                                     kernels=self.kernel_stats,
                                     lanes=self.lane_stats)
            if progress is not None:
                progress(done, total)

        pending = []
        for position, unit in enumerate(units):
            record = (
                self.cache.get(unit.cache_key())
                if self.cache is not None else None
            )
            if record is not None:
                instance = getattr(units[position], "instance", None)
                if instance is not None:
                    _restamp(record, instance)
                results[position] = record
                advance(True)
            else:
                pending.append(position)

        def land(position, record):
            results[position] = record
            self._store(units[position], record)
            advance(False)

        tasks = self._plan_tasks(units, pending)

        if tasks and self.jobs == 1:
            for positions in tasks:
                for position, record in zip(
                    positions, self._execute_task(units, positions)
                ):
                    land(position, record)
        elif tasks:
            workers = min(self.jobs, len(tasks))
            first_error = None
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = {}
                for positions in tasks:
                    if len(positions) == 1:
                        future = pool.submit(
                            _execute_with_kernel_stats, self.executor,
                            units[positions[0]],
                        )
                    else:
                        future = pool.submit(
                            _execute_group_with_kernel_stats,
                            [units[position] for position in positions],
                            self.lanes,
                        )
                    futures[future] = positions
                for future in concurrent.futures.as_completed(futures):
                    positions = futures[future]
                    try:
                        payload = future.result()
                    except concurrent.futures.CancelledError:
                        continue
                    except Exception as exc:
                        # First failure wins; drop the queued units but
                        # keep draining so already-running siblings
                        # still land in the cache instead of being
                        # recomputed on retry.
                        if first_error is None:
                            first_error = exc
                            pool.shutdown(wait=False, cancel_futures=True)
                        continue
                    if len(positions) == 1:
                        record, kernel_delta = payload
                        records = [record]
                    else:
                        records, lane_infos, kernel_delta = payload
                        self._absorb_lane_stats(lane_infos)
                    self._absorb_kernel_stats(kernel_delta)
                    for position, record in zip(positions, records):
                        land(position, record)
            if first_error is not None:
                raise first_error

        if self.reporter is not None:
            self.reporter.finish(kernels=self.kernel_stats,
                                 lanes=self.lane_stats)
        return results

    def _plan_tasks(self, units, pending):
        """Partition pending positions into dispatch tasks.

        Each task is a list of grid positions executed together: lane
        grouping collects compiled-backend campaign units by design
        fingerprint; everything else stays a singleton.  Order is
        first-seen grid order, so ``jobs=1`` execution remains
        deterministic.
        """
        if self.lanes <= 1 or self.executor is not execute_unit:
            return [[position] for position in pending]
        tasks = []
        groups = {}
        for position in pending:
            unit = units[position]
            fingerprint = (
                getattr(unit, "design_fingerprint", None)
                if getattr(unit, "backend", None) == "compiled" else None
            )
            if fingerprint is None:
                tasks.append([position])
                continue
            group = groups.get(fingerprint)
            if group is None:
                group = groups[fingerprint] = []
                tasks.append(group)
            group.append(position)
        return tasks

    def _execute_task(self, units, positions):
        """Serial-path execution of one task; returns records in
        ``positions`` order."""
        if len(positions) == 1:
            record, kernel_delta = _execute_with_kernel_stats(
                self.executor, units[positions[0]]
            )
            self._absorb_kernel_stats(kernel_delta)
            return [record]
        records, lane_infos, kernel_delta = \
            _execute_group_with_kernel_stats(
                [units[position] for position in positions], self.lanes
            )
        self._absorb_kernel_stats(kernel_delta)
        self._absorb_lane_stats(lane_infos)
        return records

    def _store(self, unit, record):
        if self.cache is not None:
            self.cache.put(unit.cache_key(), record)


def _restamp(record, instance):
    """Overwrite a cached record's grid metadata from the requesting
    instance.

    The cache key hashes only execution inputs (sources, method,
    attempts, seeds, config) — labels like ``paper_class`` are
    bucketing metadata a driver may relabel (fig6 folds half of
    ``incorrect_bitwidth`` into ``declaration_errors``), so a record
    cached by one driver must adopt the labels of the grid that is
    asking, not the one that happened to execute first.
    """
    record.instance_id = instance.instance_id
    record.module_name = instance.module_name
    record.category = instance.category
    record.kind = instance.kind
    record.paper_class = instance.paper_class


def run_units(units, jobs=1, cache_dir=None, progress=None,
              show_progress=False, reporter=None, cache=None,
              executor=None, lanes=1):
    """Convenience front door used by the experiment drivers.

    ``cache_dir`` of ``None`` disables memoization; an explicit
    ``cache`` object (any ``get``/``put`` store, e.g. a
    :class:`ResultCache` with a custom codec) wins over ``cache_dir``.
    ``show_progress`` attaches a stderr :class:`ProgressReporter`
    (explicit ``reporter`` wins); ``executor`` overrides the campaign
    unit-execution primitive; ``lanes > 1`` enables lane-packed
    dispatch of same-design compiled units (records stay
    bit-identical to a ``lanes=1`` run).
    """
    units = list(units)
    from repro.sim.compile import cache as kernel_cache

    # Cross-run kernel store: generated simulation kernels persist
    # under <cache-dir>/compiled/ and the directory is exported to
    # pool workers (REPRO_COMPILE_CACHE) before the pool spawns;
    # both are scoped to this run.
    kernel_dir = (
        os.path.join(os.fspath(cache_dir), "compiled")
        if cache_dir else None
    )
    if cache is None and cache_dir:
        cache = ResultCache(cache_dir)
    if reporter is None and show_progress and units:
        reporter = ProgressReporter(len(units))
    runner = CampaignRunner(jobs=jobs, cache=cache, reporter=reporter,
                            executor=executor, lanes=lanes)
    with kernel_cache.disk_cache(kernel_dir):
        return runner.run(units, progress=progress)


def default_jobs():
    """A sensible ``--jobs auto`` value: physical parallelism, capped."""
    return min(8, os.cpu_count() or 1)


def default_lanes():
    """The ``--lanes auto`` value: the ``REPRO_SIM_LANES`` environment
    override, else 1 — lane packing stays opt-in because it only pays
    off on compiled-backend campaigns with repeated designs."""
    try:
        return max(1, int(os.environ.get("REPRO_SIM_LANES", "1")))
    except ValueError:
        return 1

"""Campaign execution: serial or process-pool, cache-aware.

The scheduler owns no experiment semantics.  A :class:`WorkUnit` is
executed by ``repro.experiments.runner.run_unit`` (imported lazily so
the experiments layer can itself depend on this package without an
import cycle); everything here is generic plumbing: resolve cache
hits, fan the misses out over a ``ProcessPoolExecutor``, persist each
finished record from the parent process, and return records in grid
order.

Because every unit is seeded from its own fields and shares no mutable
state with its siblings, results are bit-identical whether ``jobs`` is
1 (plain in-process loop) or N — the only observable difference is
wall-clock time.

Observability: each executed unit ships one ``StatsDelta`` (a
:meth:`repro.obs.metrics.MetricsRegistry.delta` dict) back with its
record — kernel-cache movement, lane-batch outcomes, per-unit wall
seconds — and the runner folds them into a per-campaign registry.  The
historical ``kernel_stats`` / ``lane_stats`` dicts are read-only views
over that registry.  When telemetry is enabled (``repro.obs.sink``),
workers additionally flush span shards per unit; none of this touches
``cache_key()`` or record bytes.
"""

import concurrent.futures
import os
import time

from repro.forensics import bundle as forensics
from repro.obs import sink, trace
from repro.obs.metrics import GLOBAL as _global_metrics
from repro.obs.metrics import MetricsRegistry, classify_demotion
from repro.runner.cache import ResultCache
from repro.runner.report import ProgressReporter


def execute_unit(unit):
    """Run one work unit to completion (top-level: picklable).

    The experiments layer is imported lazily; in a pool worker this
    happens once per process on the first unit it receives.
    """
    from repro.experiments.runner import run_unit

    return run_unit(unit)


def _unit_label(unit):
    """Human-readable unit identity for spans and slow-unit reports."""
    label = getattr(unit, "unit_id", None)
    if label:
        return label
    key = getattr(unit, "cache_key", None)
    return key() if callable(key) else type(unit).__name__


def _execute_with_stats(executor, unit):
    """Run ``executor(unit)`` and ship the metrics movement it caused
    (top-level: picklable for pool workers).

    The kernel cache (and every other instrumented layer) records into
    the process-global registry; shipping per-unit deltas back with
    each record lets the parent aggregate a campaign-wide picture
    regardless of how units were distributed over worker processes.
    """
    sink.maybe_init_worker()
    forensics.maybe_init_worker()
    label = _unit_label(unit)
    sink.mark_open("unit", label)
    before = _global_metrics.snapshot()
    start = time.perf_counter()
    with trace.span("unit", cat="scheduler", label=label):
        record = executor(unit)
    _global_metrics.observe("unit.seconds", time.perf_counter() - start)
    _global_metrics.inc("units.executed")
    sink.flush_spans()
    # Capture AFTER the span flush so the bundle's span slice can read
    # this unit's shard; capture only observes the finished record.
    if forensics.enabled():
        forensics.capture_unit_failure(unit, record)
        sink.flush_spans()  # don't bill forensic re-run spans to a peer
    return record, _global_metrics.delta(before)


def _execute_group_with_stats(units, lanes):
    """Run one design-fingerprint unit group (top-level: picklable).

    Returns ``(records, lane_infos, delta)`` — the group's records in
    unit order plus the lane-batch info dicts and the metrics movement
    for the parent's campaign-wide registry.
    """
    from repro.experiments.runner import execute_unit_group

    sink.maybe_init_worker()
    forensics.maybe_init_worker()
    for unit in units:
        sink.mark_open("unit", _unit_label(unit))
    before = _global_metrics.snapshot()
    start = time.perf_counter()
    with trace.span("unit-group", cat="scheduler", size=len(units),
                    lanes=lanes):
        records, lane_infos = execute_unit_group(units, lanes)
    elapsed = time.perf_counter() - start
    if units:
        # Attribute the group's wall time evenly so the rolling ETA
        # sees effective per-unit throughput under lane packing.
        per_unit = elapsed / len(units)
        for _ in units:
            _global_metrics.observe("unit.seconds", per_unit)
    _global_metrics.inc("units.executed", len(units))
    for info in lane_infos:
        if info.get("packed"):
            _global_metrics.inc("lanes.packed_batches")
        else:
            _global_metrics.inc("lanes.demoted_batches")
            # Count every distinct underlying reason, not just the
            # summary string: a design demoted for several causes at
            # once lands in each matching category, so the finish
            # summary and the report histogram tell the same story.
            reasons = (info.get("demotion_reasons") or
                       (info.get("demotion"),))
            for category in sorted(
                {classify_demotion(reason) for reason in reasons}
            ):
                _global_metrics.inc("lanes.demotion." + category)
    sink.flush_spans()
    # A failing unit inside a packed lane batch is demoted to a scalar
    # traced re-run by the capture pipeline itself (the bundle's
    # waveform never comes from packed state).
    if forensics.enabled():
        for unit, record in zip(units, records):
            forensics.capture_unit_failure(unit, record)
        sink.flush_spans()
    return records, lane_infos, _global_metrics.delta(before)


class CampaignRunner:
    """Executes a list of work units with caching and parallelism.

    ``executor`` is the unit-execution primitive — any picklable
    module-level callable taking one unit (the default runs campaign
    work units through the experiments layer; the fuzz campaign passes
    :func:`repro.fuzz.campaign.execute_fuzz_unit`).  Units only need a
    ``cache_key()`` method when a cache is attached.

    ``lanes > 1`` turns on lane-packed dispatch: cache-missing
    compiled-backend campaign units sharing a ``design_fingerprint``
    are executed as one group whose initial verification runs advance
    up to ``lanes`` stimulus seeds per packed simulation step
    (:func:`repro.experiments.runner.execute_unit_group`).  Grouping
    never changes a record — every unit still lands in the cache under
    its own content key — so ``lanes=N`` and ``lanes=1`` campaigns are
    bit-identical.  Only the default executor understands grouping;
    custom executors always run unit-at-a-time.
    """

    def __init__(self, jobs=1, cache=None, reporter=None, executor=None,
                 lanes=1):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.reporter = reporter
        self.executor = executor if executor is not None else execute_unit
        self.lanes = max(1, int(lanes))
        #: Per-campaign metrics: every executed unit's StatsDelta folds
        #: in here (kernel cache, lane batches, unit wall seconds).
        self.metrics = MetricsRegistry()

    @property
    def kernel_stats(self):
        """Compiled-kernel cache movement across all executed units
        (read-only view over the campaign metrics registry)."""
        return {
            "compiled": self.metrics.counter("kernel.compiled"),
            "memo_hits": self.metrics.counter("kernel.memo_hits"),
            "disk_hits": self.metrics.counter("kernel.disk_hits"),
        }

    @property
    def lane_stats(self):
        """Lane-batch movement: how many packed batches ran (at
        ``lanes`` width) and how many fell back to per-lane scalar
        simulation (demoted designs / non-aligned stimulus)."""
        return {
            "lanes": self.lanes,
            "packed_batches": self.metrics.counter("lanes.packed_batches"),
            "demoted_batches": self.metrics.counter("lanes.demoted_batches"),
        }

    def demotion_histogram(self):
        """Structured lane-demotion reasons: ``{category: count}``."""
        prefix = "lanes.demotion."
        return {
            name[len(prefix):]: value
            for name, value in sorted(self.metrics.counters.items())
            if name.startswith(prefix) and value
        }

    def _absorb(self, delta, from_worker):
        """Fold one unit's StatsDelta into the campaign registry.

        Deltas produced by pool workers are also folded into this
        process's global registry so the telemetry flush at scope exit
        sees the whole campaign; in-process execution already recorded
        there directly.
        """
        self.metrics.absorb(delta)
        if from_worker:
            _global_metrics.absorb(delta)

    def _rolling_eta(self, remaining):
        """Remaining-seconds estimate from the rolling per-unit window
        (None until an executed unit has been observed)."""
        if remaining <= 0:
            return None
        hist = self.metrics.histogram("unit.seconds")
        median = hist.rolling_median() if hist is not None else None
        if median is None:
            return None
        return remaining * median / self.jobs

    def run(self, units, progress=None):
        """Execute ``units``; returns records in the same order.

        ``progress``, if given, is called as ``progress(done, total)``
        after every resolved unit (cached or executed).
        """
        units = list(units)
        total = len(units)
        results = [None] * total
        done = cached = 0

        def advance(is_hit):
            nonlocal done, cached
            done += 1
            cached += 1 if is_hit else 0
            if self.reporter is not None:
                self.reporter.update(done, cached=cached,
                                     kernels=self.kernel_stats,
                                     lanes=self.lane_stats,
                                     eta_seconds=self._rolling_eta(
                                         total - done))
            if progress is not None:
                progress(done, total)

        pending = []
        for position, unit in enumerate(units):
            record = (
                self.cache.get(unit.cache_key())
                if self.cache is not None else None
            )
            if record is not None:
                instance = getattr(units[position], "instance", None)
                if instance is not None:
                    _restamp(record, instance)
                results[position] = record
                # Warm-cache runs still bundle their failures (the
                # content-addressed id makes re-captures idempotent).
                if forensics.enabled():
                    forensics.capture_unit_failure(units[position],
                                                   record)
                advance(True)
            else:
                pending.append(position)

        def land(position, record):
            results[position] = record
            self._store(units[position], record)
            advance(False)

        tasks = self._plan_tasks(units, pending)

        if tasks and self.jobs == 1:
            for positions in tasks:
                for position, record in zip(
                    positions, self._execute_task(units, positions)
                ):
                    land(position, record)
        elif tasks:
            workers = min(self.jobs, len(tasks))
            first_error = None
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = {}
                for positions in tasks:
                    if len(positions) == 1:
                        future = pool.submit(
                            _execute_with_stats, self.executor,
                            units[positions[0]],
                        )
                    else:
                        future = pool.submit(
                            _execute_group_with_stats,
                            [units[position] for position in positions],
                            self.lanes,
                        )
                    futures[future] = positions
                for future in concurrent.futures.as_completed(futures):
                    positions = futures[future]
                    try:
                        payload = future.result()
                    except concurrent.futures.CancelledError:
                        continue
                    except Exception as exc:
                        # First failure wins; drop the queued units but
                        # keep draining so already-running siblings
                        # still land in the cache instead of being
                        # recomputed on retry.
                        if first_error is None:
                            first_error = exc
                            pool.shutdown(wait=False, cancel_futures=True)
                        continue
                    if len(positions) == 1:
                        record, delta = payload
                        records = [record]
                    else:
                        records, _lane_infos, delta = payload
                    self._absorb(delta, from_worker=True)
                    for position, record in zip(positions, records):
                        land(position, record)
            if first_error is not None:
                raise first_error

        if self.reporter is not None:
            self.reporter.finish(kernels=self.kernel_stats,
                                 lanes=self.lane_stats,
                                 demotions=self.demotion_histogram())
        sink.flush_spans()
        return results

    def _plan_tasks(self, units, pending):
        """Partition pending positions into dispatch tasks.

        Each task is a list of grid positions executed together: lane
        grouping collects compiled-backend campaign units by design
        fingerprint; everything else stays a singleton.  Order is
        first-seen grid order, so ``jobs=1`` execution remains
        deterministic.
        """
        if self.lanes <= 1 or self.executor is not execute_unit:
            return [[position] for position in pending]
        tasks = []
        groups = {}
        for position in pending:
            unit = units[position]
            fingerprint = (
                getattr(unit, "design_fingerprint", None)
                if getattr(unit, "backend", None) == "compiled" else None
            )
            if fingerprint is None:
                tasks.append([position])
                continue
            group = groups.get(fingerprint)
            if group is None:
                group = groups[fingerprint] = []
                tasks.append(group)
            group.append(position)
        return tasks

    def _execute_task(self, units, positions):
        """Serial-path execution of one task; returns records in
        ``positions`` order."""
        if len(positions) == 1:
            record, delta = _execute_with_stats(
                self.executor, units[positions[0]]
            )
            self._absorb(delta, from_worker=False)
            return [record]
        records, _lane_infos, delta = _execute_group_with_stats(
            [units[position] for position in positions], self.lanes
        )
        self._absorb(delta, from_worker=False)
        return records

    def _store(self, unit, record):
        if self.cache is not None:
            self.cache.put(unit.cache_key(), record)


def _restamp(record, instance):
    """Overwrite a cached record's grid metadata from the requesting
    instance.

    The cache key hashes only execution inputs (sources, method,
    attempts, seeds, config) — labels like ``paper_class`` are
    bucketing metadata a driver may relabel (fig6 folds half of
    ``incorrect_bitwidth`` into ``declaration_errors``), so a record
    cached by one driver must adopt the labels of the grid that is
    asking, not the one that happened to execute first.
    """
    record.instance_id = instance.instance_id
    record.module_name = instance.module_name
    record.category = instance.category
    record.kind = instance.kind
    record.paper_class = instance.paper_class


def run_units(units, jobs=1, cache_dir=None, progress=None,
              show_progress=False, reporter=None, cache=None,
              executor=None, lanes=1, telemetry=False,
              forensics_capture=False):
    """Convenience front door used by the experiment drivers.

    ``cache_dir`` of ``None`` disables memoization; an explicit
    ``cache`` object (any ``get``/``put`` store, e.g. a
    :class:`ResultCache` with a custom codec) wins over ``cache_dir``.
    ``show_progress`` attaches a stderr :class:`ProgressReporter`
    (explicit ``reporter`` wins); ``executor`` overrides the campaign
    unit-execution primitive; ``lanes > 1`` enables lane-packed
    dispatch of same-design compiled units (records stay
    bit-identical to a ``lanes=1`` run).  ``telemetry`` writes span
    and metrics shards under ``<cache-dir>/telemetry/`` (requires
    ``cache_dir``; records are unaffected — timing is sidecar-only).
    ``forensics_capture`` archives every failing unit as a debug
    bundle under ``<cache-dir>/forensics/`` (requires ``cache_dir``;
    records and cache keys are unaffected — capture is sidecar-only,
    exactly like telemetry).
    """
    units = list(units)
    from repro.sim.compile import cache as kernel_cache

    # Cross-run kernel store: generated simulation kernels persist
    # under <cache-dir>/compiled/ and the directory is exported to
    # pool workers (REPRO_COMPILE_CACHE) before the pool spawns;
    # both are scoped to this run.
    kernel_dir = (
        os.path.join(os.fspath(cache_dir), "compiled")
        if cache_dir else None
    )
    telemetry_dir = (
        os.path.join(os.fspath(cache_dir), "telemetry")
        if telemetry and cache_dir else None
    )
    forensics_dir = (
        os.path.join(os.fspath(cache_dir), "forensics")
        if forensics_capture and cache_dir else None
    )
    if cache is None and cache_dir:
        cache = ResultCache(cache_dir)
    if reporter is None and show_progress and units:
        reporter = ProgressReporter(len(units))
    runner = CampaignRunner(jobs=jobs, cache=cache, reporter=reporter,
                            executor=executor, lanes=lanes)
    with kernel_cache.disk_cache(kernel_dir):
        with sink.telemetry_scope(telemetry_dir):
            with forensics.scope(forensics_dir):
                with trace.span("campaign", cat="scheduler",
                                units=len(units), jobs=runner.jobs,
                                lanes=runner.lanes):
                    return runner.run(units, progress=progress)


def default_jobs():
    """A sensible ``--jobs auto`` value: physical parallelism, capped."""
    return min(8, os.cpu_count() or 1)


def default_lanes(require=False):
    """The ``--lanes auto`` / flag-omitted lane count.

    Lane packing stays opt-in (it only pays off on compiled-backend
    campaigns with repeated designs), so with the flag omitted an
    unset ``REPRO_SIM_LANES`` means 1; explicit ``--lanes auto``
    passes ``require=True`` and a missing or malformed variable
    raises :class:`ValueError` instead of silently serializing the
    campaign."""
    from repro.sim.compile.lanes import default_lanes as _env_lanes

    return _env_lanes(require=require)

"""Campaign execution: serial or process-pool, cache-aware,
fault-tolerant.

The scheduler owns no experiment semantics.  A :class:`WorkUnit` is
executed by ``repro.experiments.runner.run_unit`` (imported lazily so
the experiments layer can itself depend on this package without an
import cycle); everything here is generic plumbing: resolve cache
hits, fan the misses out over a ``ProcessPoolExecutor``, persist each
finished record from the parent process, and return records in grid
order.

Because every unit is seeded from its own fields and shares no mutable
state with its siblings, results are bit-identical whether ``jobs`` is
1 (plain in-process loop) or N — the only observable difference is
wall-clock time.

Fault tolerance (see :mod:`repro.runner.faults`): campaigns are
run-to-completion by default.  Infrastructure failures — a worker
killed mid-unit (``BrokenProcessPool``), a unit past its
``unit_timeout`` wall-clock budget, cache I/O errors — are retried
with bounded deterministic backoff; after a pool breakage the pool is
respawned, the surviving pending set is re-derived from the on-disk
cache (re-splitting lane groups whose members partially landed), and
suspect units re-run *solo* so crash blame is unambiguous.  A unit
that kills its worker twice, or an exception the unit itself raises
(deterministic — retrying cannot change it), becomes a structured
``"poisoned"`` record and the campaign continues; ``fail_fast``
restores abort-on-first-error.  Retries never apply to landed
records, so a faulty run's surviving records stay bit-identical to a
fault-free ``--jobs 1`` run.

Observability: each executed unit ships one ``StatsDelta`` (a
:meth:`repro.obs.metrics.MetricsRegistry.delta` dict) back with its
record — kernel-cache movement, lane-batch outcomes, per-unit wall
seconds — and the runner folds them into a per-campaign registry.  The
historical ``kernel_stats`` / ``lane_stats`` dicts are read-only views
over that registry; fault-tolerance movement lands under ``faults.*``
(:attr:`CampaignRunner.fault_stats`).  When telemetry is enabled
(``repro.obs.sink``), workers additionally flush span shards per unit;
none of this touches ``cache_key()`` or record bytes.
"""

import collections
import concurrent.futures
import contextlib
import dataclasses
import os
import signal
import sys
import time

from repro.forensics import bundle as forensics
from repro.obs import sink, trace
from repro.obs.metrics import GLOBAL as _global_metrics
from repro.obs.metrics import MetricsRegistry, classify_demotion
from repro.runner import faultinject, faults
from repro.runner.cache import ResultCache
from repro.runner.faults import CampaignInterrupted, UnitTimeout
from repro.runner.report import ProgressReporter

#: Poll interval of the parallel dispatch loop: bounds how quickly the
#: scheduler notices an expired deadline or a pending probation task.
_TICK = 0.25

#: Scheduler-side deadline for one dispatched unit: the worker-side
#: alarm gets ``unit_timeout`` (scaled by group size), and only if the
#: worker cannot deliver even the *timeout* within this envelope (the
#: alarm is masked, the interpreter is wedged in C) does the parent
#: kill the pool to reclaim it.
_DEADLINE_SLACK = 1.5
_DEADLINE_GRACE = 2.0

_POOL_BROKEN = (concurrent.futures.BrokenExecutor,)


def execute_unit(unit):
    """Run one work unit to completion (top-level: picklable).

    The experiments layer is imported lazily; in a pool worker this
    happens once per process on the first unit it receives.
    """
    from repro.experiments.runner import run_unit

    return run_unit(unit)


def _unit_label(unit):
    """Human-readable unit identity for spans and slow-unit reports."""
    label = getattr(unit, "unit_id", None)
    if label:
        return label
    key = getattr(unit, "cache_key", None)
    return key() if callable(key) else type(unit).__name__


def _unit_key(unit):
    key = getattr(unit, "cache_key", None)
    return key() if callable(key) else None


def _execute_with_stats(executor, unit, timeout=None):
    """Run ``executor(unit)`` and ship the metrics movement it caused
    (top-level: picklable for pool workers).

    The kernel cache (and every other instrumented layer) records into
    the process-global registry; shipping per-unit deltas back with
    each record lets the parent aggregate a campaign-wide picture
    regardless of how units were distributed over worker processes.

    ``timeout`` arms the worker-side wall-clock alarm: running past it
    raises a picklable :class:`UnitTimeout` back to the scheduler.
    """
    sink.maybe_init_worker()
    forensics.maybe_init_worker()
    label = _unit_label(unit)
    sink.mark_open("unit", label)
    before = _global_metrics.snapshot()
    start = time.perf_counter()
    try:
        with trace.span("unit", cat="scheduler", label=label):
            with faults.unit_alarm(timeout, label):
                faultinject.check_unit(label, key=_unit_key(unit))
                record = executor(unit)
    except BaseException:
        # Ship whatever spans closed before the failure; the parent
        # decides whether this unit is retried or quarantined.
        sink.flush_spans()
        raise
    _global_metrics.observe("unit.seconds", time.perf_counter() - start)
    _global_metrics.inc("units.executed")
    sink.flush_spans()
    # Capture AFTER the span flush so the bundle's span slice can read
    # this unit's shard; capture only observes the finished record.
    if forensics.enabled():
        forensics.capture_unit_failure(unit, record)
        sink.flush_spans()  # don't bill forensic re-run spans to a peer
    return record, _global_metrics.delta(before)


def _execute_group_with_stats(units, lanes, timeout=None):
    """Run one design-fingerprint unit group (top-level: picklable).

    Returns ``(records, lane_infos, delta)`` — the group's records in
    unit order plus the lane-batch info dicts and the metrics movement
    for the parent's campaign-wide registry.  ``timeout`` is the
    *per-unit* wall-clock budget; the group's alarm gets the summed
    budget since the members run as one lockstep dispatch.
    """
    from repro.experiments.runner import execute_unit_group

    sink.maybe_init_worker()
    forensics.maybe_init_worker()
    for unit in units:
        sink.mark_open("unit", _unit_label(unit))
    before = _global_metrics.snapshot()
    start = time.perf_counter()
    group_timeout = timeout * len(units) if timeout else None
    try:
        with trace.span("unit-group", cat="scheduler", size=len(units),
                        lanes=lanes):
            with faults.unit_alarm(group_timeout, "group of %d"
                                   % len(units)):
                for unit in units:
                    faultinject.check_unit(_unit_label(unit),
                                           key=_unit_key(unit))
                records, lane_infos = execute_unit_group(units, lanes)
    except BaseException:
        sink.flush_spans()
        raise
    elapsed = time.perf_counter() - start
    if units:
        # Attribute the group's wall time evenly so the rolling ETA
        # sees effective per-unit throughput under lane packing.
        per_unit = elapsed / len(units)
        for _ in units:
            _global_metrics.observe("unit.seconds", per_unit)
    _global_metrics.inc("units.executed", len(units))
    for info in lane_infos:
        if info.get("packed"):
            _global_metrics.inc("lanes.packed_batches")
        else:
            _global_metrics.inc("lanes.demoted_batches")
            # Count every distinct underlying reason, not just the
            # summary string: a design demoted for several causes at
            # once lands in each matching category, so the finish
            # summary and the report histogram tell the same story.
            reasons = (info.get("demotion_reasons") or
                       (info.get("demotion"),))
            for category in sorted(
                {classify_demotion(reason) for reason in reasons}
            ):
                _global_metrics.inc("lanes.demotion." + category)
    sink.flush_spans()
    # A failing unit inside a packed lane batch is demoted to a scalar
    # traced re-run by the capture pipeline itself (the bundle's
    # waveform never comes from packed state).
    if forensics.enabled():
        for unit, record in zip(units, records):
            forensics.capture_unit_failure(unit, record)
        sink.flush_spans()
    return records, lane_infos, _global_metrics.delta(before)


class _Task:
    """One dispatchable set of grid positions plus its failure
    history: ``strikes`` counts infrastructure failures, ``not_before``
    is the deterministic-backoff earliest re-dispatch time."""

    __slots__ = ("positions", "strikes", "not_before")

    def __init__(self, positions, strikes=0):
        self.positions = list(positions)
        self.strikes = strikes
        self.not_before = 0.0


def _raise_on_sigterm(_signum, _frame):
    raise CampaignInterrupted("terminated (SIGTERM)")


def _pool_worker_init():
    """Pool-worker signal hygiene: forked workers inherit the parent's
    graceful-shutdown SIGTERM handler and the default SIGINT handler,
    so a parent-side interrupt or pool teardown would make every worker
    print a spurious traceback.  The parent owns shutdown; workers just
    die quietly."""
    with contextlib.suppress(Exception):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    with contextlib.suppress(Exception):
        signal.signal(signal.SIGINT, signal.SIG_IGN)


class CampaignRunner:
    """Executes a list of work units with caching and parallelism.

    ``executor`` is the unit-execution primitive — any picklable
    module-level callable taking one unit (the default runs campaign
    work units through the experiments layer; the fuzz campaign passes
    :func:`repro.fuzz.campaign.execute_fuzz_unit`).  Units only need a
    ``cache_key()`` method when a cache is attached.

    ``lanes > 1`` turns on lane-packed dispatch: cache-missing
    compiled-backend campaign units sharing a ``design_fingerprint``
    are executed as one group whose initial verification runs advance
    up to ``lanes`` stimulus seeds per packed simulation step
    (:func:`repro.experiments.runner.execute_unit_group`).  Grouping
    never changes a record — every unit still lands in the cache under
    its own content key — so ``lanes=N`` and ``lanes=1`` campaigns are
    bit-identical.  Only the default executor understands grouping;
    custom executors always run unit-at-a-time.

    ``policy`` (a :class:`repro.runner.faults.FaultPolicy`) governs
    timeouts, retry/quarantine and fail-fast; ``poisoned_factory``
    builds the structured record a quarantined unit lands as
    (``factory(unit, failure_dict) -> record``; the default handles
    campaign work units and falls back to a plain verdict dict for
    unit families without an ``instance``).
    """

    def __init__(self, jobs=1, cache=None, reporter=None, executor=None,
                 lanes=1, policy=None, poisoned_factory=None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.reporter = reporter
        self.executor = executor if executor is not None else execute_unit
        self.lanes = max(1, int(lanes))
        self.policy = policy if policy is not None \
            else faults.get_default_policy()
        self.poisoned_factory = poisoned_factory
        #: Structured summaries of quarantined units from the last run.
        self.quarantined = []
        #: Per-campaign metrics: every executed unit's StatsDelta folds
        #: in here (kernel cache, lane batches, unit wall seconds).
        self.metrics = MetricsRegistry()

    @property
    def kernel_stats(self):
        """Compiled-kernel cache movement across all executed units
        (read-only view over the campaign metrics registry)."""
        return {
            "compiled": self.metrics.counter("kernel.compiled"),
            "memo_hits": self.metrics.counter("kernel.memo_hits"),
            "disk_hits": self.metrics.counter("kernel.disk_hits"),
        }

    @property
    def lane_stats(self):
        """Lane-batch movement: how many packed batches ran (at
        ``lanes`` width) and how many fell back to per-lane scalar
        simulation (demoted designs / non-aligned stimulus)."""
        return {
            "lanes": self.lanes,
            "packed_batches": self.metrics.counter("lanes.packed_batches"),
            "demoted_batches": self.metrics.counter("lanes.demoted_batches"),
        }

    @property
    def fault_stats(self):
        """Fault-tolerance movement: re-dispatches, quarantines, pool
        respawns, and their causes (read-only metrics view)."""
        return {
            "retries": self.metrics.counter("faults.retries"),
            "quarantined": self.metrics.counter("faults.quarantined"),
            "pool_respawns": self.metrics.counter("faults.pool_respawns"),
            "timeouts": self.metrics.counter("faults.timeouts"),
            "worker_deaths": self.metrics.counter("faults.worker_deaths"),
        }

    def demotion_histogram(self):
        """Structured lane-demotion reasons: ``{category: count}``."""
        prefix = "lanes.demotion."
        return {
            name[len(prefix):]: value
            for name, value in sorted(self.metrics.counters.items())
            if name.startswith(prefix) and value
        }

    def _absorb(self, delta, from_worker):
        """Fold one unit's StatsDelta into the campaign registry.

        Deltas produced by pool workers are also folded into this
        process's global registry so the telemetry flush at scope exit
        sees the whole campaign; in-process execution already recorded
        there directly.
        """
        self.metrics.absorb(delta)
        if from_worker:
            _global_metrics.absorb(delta)

    def _bump(self, name, value=1):
        """Parent-side fault counter: campaign registry + telemetry."""
        self.metrics.inc(name, value)
        _global_metrics.inc(name, value)

    def _rolling_eta(self, remaining):
        """Remaining-seconds estimate from the rolling per-unit window
        (None until an executed unit has been observed)."""
        if remaining <= 0:
            return None
        hist = self.metrics.histogram("unit.seconds")
        median = hist.rolling_median() if hist is not None else None
        if median is None:
            return None
        return remaining * median / self.jobs

    def run(self, units, progress=None):
        """Execute ``units``; returns records in the same order.

        ``progress``, if given, is called as ``progress(done, total)``
        after every resolved unit (cached or executed).  Raises
        :class:`CampaignInterrupted` on SIGINT/SIGTERM — after
        cancelling pending work, flushing telemetry, and emitting the
        partial-progress summary (finished units are already cached).
        """
        units = list(units)
        total = len(units)
        results = [None] * total
        done = cached = 0
        self.quarantined = []

        def advance(is_hit):
            nonlocal done, cached
            done += 1
            cached += 1 if is_hit else 0
            if self.reporter is not None:
                self.reporter.update(done, cached=cached,
                                     kernels=self.kernel_stats,
                                     lanes=self.lane_stats,
                                     eta_seconds=self._rolling_eta(
                                         total - done))
            if progress is not None:
                progress(done, total)

        def resolve_cached(position):
            """Land the cached record for one position, if any."""
            if self.cache is None:
                return None
            record = self.cache.get(units[position].cache_key())
            if record is None:
                return None
            instance = getattr(units[position], "instance", None)
            if instance is not None and not isinstance(record, dict):
                _restamp(record, instance)
            results[position] = record
            # Warm-cache runs still bundle their failures (the
            # content-addressed id makes re-captures idempotent).
            if forensics.enabled():
                forensics.capture_unit_failure(units[position], record)
            advance(True)
            return record

        def land(position, record):
            results[position] = record
            self._store(units[position], record)
            advance(False)

        pending = [
            position for position in range(total)
            if resolve_cached(position) is None
        ]
        tasks = self._plan_tasks(units, pending)

        restore_sigterm = self._install_sigterm()
        try:
            try:
                if tasks and self.jobs == 1:
                    self._run_serial(units, tasks, land, resolve_cached)
                elif tasks:
                    self._run_pool(units, tasks, land, resolve_cached)
            except KeyboardInterrupt as exc:
                raise CampaignInterrupted("interrupted (SIGINT)",
                                          done=done, total=total) from exc
            except CampaignInterrupted as exc:
                raise CampaignInterrupted(exc.reason, done=done,
                                          total=total) from None
        except CampaignInterrupted:
            if self.reporter is not None:
                self.reporter.interrupted(done, total, cached=cached)
            raise
        finally:
            restore_sigterm()
            # The spans buffered so far must survive even an abort —
            # historically this flush was skipped on exception paths.
            sink.flush_spans()

        if self.reporter is not None:
            self.reporter.finish(kernels=self.kernel_stats,
                                 lanes=self.lane_stats,
                                 demotions=self.demotion_histogram(),
                                 faults=self.fault_stats)
        return results

    def _install_sigterm(self):
        """Route SIGTERM through the same graceful-shutdown path as
        Ctrl-C; returns a restore callable (no-op off the main
        thread)."""
        try:
            previous = signal.signal(signal.SIGTERM, _raise_on_sigterm)
        except (ValueError, OSError, AttributeError):
            return lambda: None
        return lambda: signal.signal(signal.SIGTERM, previous)

    # -- serial path -----------------------------------------------------

    def _run_serial(self, units, tasks, land, resolve_cached):
        policy = self.policy
        queue = collections.deque(_Task(positions) for positions in tasks)
        while queue:
            task = queue.popleft()
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                records = self._execute_task(units, task.positions,
                                             timeout=policy.unit_timeout)
            except (KeyboardInterrupt, CampaignInterrupted):
                raise
            except UnitTimeout as exc:
                self._bump("faults.timeouts")
                if policy.fail_fast:
                    raise
                self._after_infra_failure(task, "timeout", exc, units,
                                          land, resolve_cached,
                                          requeue=queue.appendleft)
            except Exception as exc:
                if policy.fail_fast:
                    raise
                self._after_deterministic_failure(
                    task, exc, units, land, requeue=queue.extendleft)
            else:
                for position, record in zip(task.positions, records):
                    land(position, record)

    # -- parallel path ---------------------------------------------------

    def _spawn_pool(self, workers):
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init)

    @staticmethod
    def _kill_pool(pool):
        """Reclaim a pool whose worker is wedged: SIGKILL every worker
        process (the executor then reports BrokenProcessPool for all
        in-flight futures, which the dispatch loop recovers from)."""
        # _processes is None once shutdown() has run, not just absent.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
            except Exception:
                pass

    def _deadline(self, task):
        """Scheduler-side reclaim deadline for one dispatch, or None
        when timeouts are off."""
        timeout = self.policy.unit_timeout
        if not timeout:
            return None
        budget = timeout * max(1, len(task.positions))
        return time.monotonic() + budget * _DEADLINE_SLACK + _DEADLINE_GRACE

    def _run_pool(self, units, tasks, land, resolve_cached):
        policy = self.policy
        queue = collections.deque(_Task(positions) for positions in tasks)
        probation = collections.deque()
        workers = min(self.jobs, max(1, len(tasks)))
        pool = self._spawn_pool(workers)
        in_flight = {}    # future -> (task, solo)
        deadlines = {}    # future -> monotonic reclaim time
        killed = []       # tasks whose deadline forced a pool kill
        first_error = None
        interrupted = False

        def submit(task, solo):
            if len(task.positions) == 1:
                future = pool.submit(
                    _execute_with_stats, self.executor,
                    units[task.positions[0]], policy.unit_timeout,
                )
            else:
                future = pool.submit(
                    _execute_group_with_stats,
                    [units[position] for position in task.positions],
                    self.lanes, policy.unit_timeout,
                )
            in_flight[future] = (task, solo)
            deadline = self._deadline(task)
            if deadline is not None:
                deadlines[future] = deadline

        try:
            while queue or probation or in_flight:
                if first_error is not None and not in_flight:
                    break
                now = time.monotonic()
                if first_error is None:
                    if probation:
                        # Probation dispatches run strictly solo:
                        # if the worker dies now, blame is unambiguous.
                        if not in_flight:
                            task = probation[0]
                            if task.not_before <= now:
                                probation.popleft()
                                submit(task, solo=True)
                            else:
                                time.sleep(
                                    min(task.not_before - now, _TICK))
                                continue
                    else:
                        # Window = pool width, so every submitted task
                        # starts immediately and deadlines measure
                        # actual execution, not queue time.
                        while queue and len(in_flight) < workers:
                            submit(queue.popleft(), solo=False)
                if not in_flight:
                    continue

                done_futures, _ = concurrent.futures.wait(
                    in_flight, timeout=_TICK,
                    return_when=concurrent.futures.FIRST_COMPLETED)

                broken_exc = None
                broken_suspects = []
                for future in done_futures:
                    task, solo = in_flight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        payload = future.result()
                    except concurrent.futures.CancelledError:
                        continue
                    except UnitTimeout as exc:
                        self._bump("faults.timeouts")
                        if policy.fail_fast:
                            if first_error is None:
                                first_error = exc
                                pool.shutdown(wait=False,
                                              cancel_futures=True)
                            continue
                        if first_error is None:
                            self._after_infra_failure(
                                task, "timeout", exc, units, land,
                                resolve_cached,
                                requeue=probation.append)
                        continue
                    except _POOL_BROKEN as exc:
                        broken_exc = exc
                        broken_suspects.append((task, solo))
                        continue
                    except Exception as exc:
                        if policy.fail_fast:
                            # First failure wins; drop the queued units
                            # but keep draining so already-running
                            # siblings still land in the cache instead
                            # of being recomputed on retry.
                            if first_error is None:
                                first_error = exc
                                pool.shutdown(wait=False,
                                              cancel_futures=True)
                            continue
                        if first_error is None:
                            self._after_deterministic_failure(
                                task, exc, units, land,
                                requeue=queue.extendleft)
                        continue
                    if task in killed:
                        # Raced its own reclaim and won: the result is
                        # valid, and the kill must not be blamed on it.
                        killed.remove(task)
                    if len(task.positions) == 1:
                        record, delta = payload
                        records = [record]
                    else:
                        records, _lane_infos, delta = payload
                    self._absorb(delta, from_worker=True)
                    for position, record in zip(task.positions, records):
                        land(position, record)

                if broken_exc is not None:
                    # The pool is gone: every in-flight future fails.
                    # Fold the stragglers in as suspects too, respawn,
                    # and re-derive each suspect's survivors from the
                    # cache (a sibling may have landed records before
                    # the crash).
                    for future, (task, solo) in list(in_flight.items()):
                        broken_suspects.append((task, solo))
                    in_flight.clear()
                    deadlines.clear()
                    if policy.fail_fast and first_error is None:
                        first_error = broken_exc
                    pool.shutdown(wait=False)
                    if first_error is None:
                        self._bump("faults.pool_respawns")
                        pool = self._spawn_pool(workers)
                        deadline_kill = bool(killed)
                        for task, solo in broken_suspects:
                            if deadline_kill and task not in killed:
                                # Collateral of a reclaim we initiated:
                                # the cause is known, no strike.
                                remaining = self._still_pending(
                                    task, resolve_cached)
                                if remaining:
                                    task.positions = remaining
                                    self._bump("faults.retries")
                                    queue.appendleft(task)
                                continue
                            kind = ("timeout" if task in killed
                                    else "worker-death")
                            if task in killed:
                                self._bump("faults.timeouts")
                            else:
                                self._bump("faults.worker_deaths")
                            self._after_infra_failure(
                                task, kind, broken_exc, units, land,
                                resolve_cached,
                                requeue=probation.append,
                                precise=(solo or task in killed))
                        killed.clear()

                # Scheduler-side deadline: a worker that cannot even
                # deliver its UnitTimeout (alarm masked, interpreter
                # wedged in C) is reclaimed by killing the pool.
                if first_error is None and deadlines:
                    now = time.monotonic()
                    overdue = [future for future, when in deadlines.items()
                               if now > when]
                    if overdue:
                        for future in overdue:
                            killed.append(in_flight[future][0])
                            deadlines.pop(future, None)
                        self._kill_pool(pool)

            if first_error is not None:
                raise first_error
        except (KeyboardInterrupt, CampaignInterrupted):
            interrupted = True
            raise
        finally:
            if interrupted:
                # Kill before shutdown: shutdown() drops the process
                # map, and waiting for a wedged worker would hang the
                # very Ctrl-C the user just pressed.
                self._kill_pool(pool)
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)

    # -- failure handling (shared by both paths) -------------------------

    def _still_pending(self, task, resolve_cached):
        """Re-derive a task's surviving pending positions from the
        cache: members whose records landed before a crash (their own
        dispatch, or a sibling shard) resolve as hits, and only the
        rest are re-run — this is the lane-group partial-landing
        re-split."""
        return [position for position in task.positions
                if resolve_cached(position) is None]

    def _after_infra_failure(self, task, kind, exc, units, land,
                             resolve_cached, requeue, precise=True):
        """Strike a task for an infrastructure failure and decide:
        retry with deterministic backoff, or quarantine.

        ``precise`` says blame is unambiguous (a timeout reported by
        the task's own future, or a crash while running solo);
        quarantine requires ``max_strikes`` precise failures so a unit
        is never poisoned for a sibling's crash.
        """
        policy = self.policy
        task.strikes += 1
        if precise and task.strikes >= policy.max_strikes:
            if len(task.positions) == 1:
                self._quarantine(units, task.positions[0], kind, exc,
                                 task.strikes, land)
                return
            # Whole-group blame is ambiguous: split into solo singles,
            # each one precise failure away from quarantine, so only
            # the actual poison member is condemned.
            self._bump("faults.group_resplits")
            for position in self._still_pending(task, resolve_cached):
                single = _Task([position], strikes=policy.max_strikes - 1)
                single.not_before = time.monotonic() + \
                    faults.backoff_seconds(policy, single.strikes)
                self._bump("faults.retries")
                requeue(single)
            return
        remaining = self._still_pending(task, resolve_cached)
        if not remaining:
            return
        task.positions = remaining
        task.not_before = time.monotonic() + \
            faults.backoff_seconds(policy, task.strikes)
        self._bump("faults.retries")
        requeue(task)

    def _after_deterministic_failure(self, task, exc, units, land,
                                     requeue):
        """A unit raised: re-running a pure function of the unit's
        fields would raise identically, so never retry — quarantine
        the unit (``fail_fast`` is handled by the callers).  A group
        failure does not say *which* member raised, so the group is
        re-split into singletons first; the faulty one then fails
        alone."""
        if len(task.positions) == 1:
            self._quarantine(units, task.positions[0], "exception", exc,
                             task.strikes, land)
            return
        self._bump("faults.group_resplits")
        requeue([_Task([position]) for position in
                 reversed(task.positions)])

    def _quarantine(self, units, position, kind, exc, strikes, land):
        """Land a structured poisoned record for one unit and let the
        campaign continue."""
        unit = units[position]
        failure = faults.failure_detail(kind, exc, label=_unit_label(unit),
                                        strikes=strikes)
        record = self._make_poisoned(unit, failure)
        self._bump("faults.quarantined")
        self.quarantined.append({"unit": _unit_label(unit), "kind": kind,
                                 "error": failure.get("error")})
        print(f"[campaign] QUARANTINED {_unit_label(unit)} "
              f"({kind}: {failure.get('error')})",
              file=sys.stderr, flush=True)
        if forensics.enabled():
            forensics.capture_poisoned(unit, failure)
        land(position, record)

    def _make_poisoned(self, unit, failure):
        if self.poisoned_factory is not None:
            return self.poisoned_factory(unit, failure)
        if getattr(unit, "instance", None) is not None:
            from repro.experiments.runner import make_poisoned_record

            return make_poisoned_record(unit, failure)
        return {"ok": False, "poisoned": True,
                "unit": _unit_label(unit), "failure": failure}

    # -- planning / storage ----------------------------------------------

    def _plan_tasks(self, units, pending):
        """Partition pending positions into dispatch tasks.

        Each task is a list of grid positions executed together: lane
        grouping collects compiled-backend campaign units by design
        fingerprint; everything else stays a singleton.  Order is
        first-seen grid order, so ``jobs=1`` execution remains
        deterministic.
        """
        if self.lanes <= 1 or self.executor is not execute_unit:
            return [[position] for position in pending]
        tasks = []
        groups = {}
        for position in pending:
            unit = units[position]
            fingerprint = (
                getattr(unit, "design_fingerprint", None)
                if getattr(unit, "backend", None) == "compiled" else None
            )
            if fingerprint is None:
                tasks.append([position])
                continue
            group = groups.get(fingerprint)
            if group is None:
                group = groups[fingerprint] = []
                tasks.append(group)
            group.append(position)
        return tasks

    def _execute_task(self, units, positions, timeout=None):
        """Serial-path execution of one task; returns records in
        ``positions`` order."""
        if len(positions) == 1:
            record, delta = _execute_with_stats(
                self.executor, units[positions[0]], timeout
            )
            self._absorb(delta, from_worker=False)
            return [record]
        records, _lane_infos, delta = _execute_group_with_stats(
            [units[position] for position in positions], self.lanes,
            timeout,
        )
        self._absorb(delta, from_worker=False)
        return records

    def _store(self, unit, record):
        if self.cache is None:
            return
        policy = self.policy
        last_error = None
        for attempt in range(max(1, policy.cache_write_retries)):
            try:
                self.cache.put(unit.cache_key(), record)
                return
            except OSError as exc:
                last_error = exc
                if policy.fail_fast:
                    raise
                time.sleep(faults.backoff_seconds(policy, attempt + 1))
        # The record is still returned in-memory; only persistence
        # degraded.  A cache write is infrastructure, never a verdict.
        self._bump("faults.cache_write_errors")
        print(f"[campaign] WARNING: could not cache record for "
              f"{_unit_label(unit)}: {last_error!r}",
              file=sys.stderr, flush=True)


def _restamp(record, instance):
    """Overwrite a cached record's grid metadata from the requesting
    instance.

    The cache key hashes only execution inputs (sources, method,
    attempts, seeds, config) — labels like ``paper_class`` are
    bucketing metadata a driver may relabel (fig6 folds half of
    ``incorrect_bitwidth`` into ``declaration_errors``), so a record
    cached by one driver must adopt the labels of the grid that is
    asking, not the one that happened to execute first.
    """
    record.instance_id = instance.instance_id
    record.module_name = instance.module_name
    record.category = instance.category
    record.kind = instance.kind
    record.paper_class = instance.paper_class


def run_units(units, jobs=1, cache_dir=None, progress=None,
              show_progress=False, reporter=None, cache=None,
              executor=None, lanes=1, telemetry=False,
              forensics_capture=False, unit_timeout=None,
              fail_fast=False, policy=None, poisoned_factory=None):
    """Convenience front door used by the experiment drivers.

    ``cache_dir`` of ``None`` disables memoization; an explicit
    ``cache`` object (any ``get``/``put`` store, e.g. a
    :class:`ResultCache` with a custom codec) wins over ``cache_dir``.
    ``show_progress`` attaches a stderr :class:`ProgressReporter`
    (explicit ``reporter`` wins); ``executor`` overrides the campaign
    unit-execution primitive; ``lanes > 1`` enables lane-packed
    dispatch of same-design compiled units (records stay
    bit-identical to a ``lanes=1`` run).  ``telemetry`` writes span
    and metrics shards under ``<cache-dir>/telemetry/`` (requires
    ``cache_dir``; records are unaffected — timing is sidecar-only).
    ``forensics_capture`` archives every failing unit as a debug
    bundle under ``<cache-dir>/forensics/`` (requires ``cache_dir``;
    records and cache keys are unaffected — capture is sidecar-only,
    exactly like telemetry).

    ``unit_timeout`` / ``fail_fast`` override those fields of the
    process-default :class:`~repro.runner.faults.FaultPolicy`; an
    explicit ``policy`` wins over both.  ``poisoned_factory`` builds
    quarantine records for custom unit families.
    """
    units = list(units)
    from repro.sim.compile import cache as kernel_cache

    if policy is None:
        policy = faults.get_default_policy()
        if unit_timeout is not None or fail_fast:
            policy = dataclasses.replace(
                policy,
                unit_timeout=(unit_timeout if unit_timeout is not None
                              else policy.unit_timeout),
                fail_fast=fail_fast or policy.fail_fast,
            )

    # Cross-run kernel store: generated simulation kernels persist
    # under <cache-dir>/compiled/ and the directory is exported to
    # pool workers (REPRO_COMPILE_CACHE) before the pool spawns;
    # both are scoped to this run.
    kernel_dir = (
        os.path.join(os.fspath(cache_dir), "compiled")
        if cache_dir else None
    )
    telemetry_dir = (
        os.path.join(os.fspath(cache_dir), "telemetry")
        if telemetry and cache_dir else None
    )
    forensics_dir = (
        os.path.join(os.fspath(cache_dir), "forensics")
        if forensics_capture and cache_dir else None
    )
    if cache is None and cache_dir:
        cache = ResultCache(cache_dir)
    if reporter is None and show_progress and units:
        reporter = ProgressReporter(len(units))
    runner = CampaignRunner(jobs=jobs, cache=cache, reporter=reporter,
                            executor=executor, lanes=lanes, policy=policy,
                            poisoned_factory=poisoned_factory)
    with kernel_cache.disk_cache(kernel_dir):
        with sink.telemetry_scope(telemetry_dir):
            with forensics.scope(forensics_dir):
                with trace.span("campaign", cat="scheduler",
                                units=len(units), jobs=runner.jobs,
                                lanes=runner.lanes):
                    return runner.run(units, progress=progress)


def default_jobs():
    """A sensible ``--jobs auto`` value: physical parallelism, capped."""
    return min(8, os.cpu_count() or 1)


def default_lanes(require=False):
    """The ``--lanes auto`` / flag-omitted lane count.

    Lane packing stays opt-in (it only pays off on compiled-backend
    campaigns with repeated designs), so with the flag omitted an
    unset ``REPRO_SIM_LANES`` means 1; explicit ``--lanes auto``
    passes ``require=True`` and a missing or malformed variable
    raises :class:`ValueError` instead of silently serializing the
    campaign."""
    from repro.sim.compile.lanes import default_lanes as _env_lanes

    return _env_lanes(require=require)

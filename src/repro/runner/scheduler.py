"""Campaign execution: serial or process-pool, cache-aware.

The scheduler owns no experiment semantics.  A :class:`WorkUnit` is
executed by ``repro.experiments.runner.run_unit`` (imported lazily so
the experiments layer can itself depend on this package without an
import cycle); everything here is generic plumbing: resolve cache
hits, fan the misses out over a ``ProcessPoolExecutor``, persist each
finished record from the parent process, and return records in grid
order.

Because every unit is seeded from its own fields and shares no mutable
state with its siblings, results are bit-identical whether ``jobs`` is
1 (plain in-process loop) or N — the only observable difference is
wall-clock time.
"""

import concurrent.futures
import os

from repro.runner.cache import ResultCache
from repro.runner.report import ProgressReporter


def execute_unit(unit):
    """Run one work unit to completion (top-level: picklable).

    The experiments layer is imported lazily; in a pool worker this
    happens once per process on the first unit it receives.
    """
    from repro.experiments.runner import run_unit

    return run_unit(unit)


def _execute_with_kernel_stats(executor, unit):
    """Run ``executor(unit)`` and report the compiled-kernel cache
    movement it caused (top-level: picklable for pool workers).

    The kernel cache lives per worker process; shipping per-unit
    deltas back with each record lets the parent aggregate a
    campaign-wide compile/hit picture for the progress stream.
    """
    from repro.sim.compile import cache as kernel_cache

    before = kernel_cache.stats()
    record = executor(unit)
    return record, kernel_cache.stats_delta(before)


class CampaignRunner:
    """Executes a list of work units with caching and parallelism.

    ``executor`` is the unit-execution primitive — any picklable
    module-level callable taking one unit (the default runs campaign
    work units through the experiments layer; the fuzz campaign passes
    :func:`repro.fuzz.campaign.execute_fuzz_unit`).  Units only need a
    ``cache_key()`` method when a cache is attached.
    """

    def __init__(self, jobs=1, cache=None, reporter=None, executor=None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.reporter = reporter
        self.executor = executor if executor is not None else execute_unit
        #: Aggregated compiled-kernel cache movement across all
        #: executed units (including pool workers' deltas).
        self.kernel_stats = {"compiled": 0, "memo_hits": 0,
                             "disk_hits": 0}

    def _absorb_kernel_stats(self, delta):
        for key, value in delta.items():
            if key in self.kernel_stats:
                self.kernel_stats[key] += value

    def run(self, units, progress=None):
        """Execute ``units``; returns records in the same order.

        ``progress``, if given, is called as ``progress(done, total)``
        after every resolved unit (cached or executed).
        """
        units = list(units)
        total = len(units)
        results = [None] * total
        done = cached = 0

        def advance(is_hit):
            nonlocal done, cached
            done += 1
            cached += 1 if is_hit else 0
            if self.reporter is not None:
                self.reporter.update(done, cached=cached,
                                     kernels=self.kernel_stats)
            if progress is not None:
                progress(done, total)

        pending = []
        for position, unit in enumerate(units):
            record = (
                self.cache.get(unit.cache_key())
                if self.cache is not None else None
            )
            if record is not None:
                instance = getattr(units[position], "instance", None)
                if instance is not None:
                    _restamp(record, instance)
                results[position] = record
                advance(True)
            else:
                pending.append(position)

        if pending and self.jobs == 1:
            for position in pending:
                record, kernel_delta = _execute_with_kernel_stats(
                    self.executor, units[position]
                )
                self._absorb_kernel_stats(kernel_delta)
                results[position] = record
                self._store(units[position], record)
                advance(False)
        elif pending:
            workers = min(self.jobs, len(pending))
            first_error = None
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = {
                    pool.submit(
                        _execute_with_kernel_stats, self.executor,
                        units[position],
                    ): position
                    for position in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    position = futures[future]
                    try:
                        record, kernel_delta = future.result()
                    except concurrent.futures.CancelledError:
                        continue
                    except Exception as exc:
                        # First failure wins; drop the queued units but
                        # keep draining so already-running siblings
                        # still land in the cache instead of being
                        # recomputed on retry.
                        if first_error is None:
                            first_error = exc
                            pool.shutdown(wait=False, cancel_futures=True)
                        continue
                    self._absorb_kernel_stats(kernel_delta)
                    results[position] = record
                    self._store(units[position], record)
                    advance(False)
            if first_error is not None:
                raise first_error

        if self.reporter is not None:
            self.reporter.finish(kernels=self.kernel_stats)
        return results

    def _store(self, unit, record):
        if self.cache is not None:
            self.cache.put(unit.cache_key(), record)


def _restamp(record, instance):
    """Overwrite a cached record's grid metadata from the requesting
    instance.

    The cache key hashes only execution inputs (sources, method,
    attempts, seeds, config) — labels like ``paper_class`` are
    bucketing metadata a driver may relabel (fig6 folds half of
    ``incorrect_bitwidth`` into ``declaration_errors``), so a record
    cached by one driver must adopt the labels of the grid that is
    asking, not the one that happened to execute first.
    """
    record.instance_id = instance.instance_id
    record.module_name = instance.module_name
    record.category = instance.category
    record.kind = instance.kind
    record.paper_class = instance.paper_class


def run_units(units, jobs=1, cache_dir=None, progress=None,
              show_progress=False, reporter=None, cache=None,
              executor=None):
    """Convenience front door used by the experiment drivers.

    ``cache_dir`` of ``None`` disables memoization; an explicit
    ``cache`` object (any ``get``/``put`` store, e.g. a
    :class:`ResultCache` with a custom codec) wins over ``cache_dir``.
    ``show_progress`` attaches a stderr :class:`ProgressReporter`
    (explicit ``reporter`` wins); ``executor`` overrides the campaign
    unit-execution primitive.
    """
    units = list(units)
    from repro.sim.compile import cache as kernel_cache

    # Cross-run kernel store: generated simulation kernels persist
    # under <cache-dir>/compiled/ and the directory is exported to
    # pool workers (REPRO_COMPILE_CACHE) before the pool spawns;
    # both are scoped to this run.
    kernel_dir = (
        os.path.join(os.fspath(cache_dir), "compiled")
        if cache_dir else None
    )
    if cache is None and cache_dir:
        cache = ResultCache(cache_dir)
    if reporter is None and show_progress and units:
        reporter = ProgressReporter(len(units))
    runner = CampaignRunner(jobs=jobs, cache=cache, reporter=reporter,
                            executor=executor)
    with kernel_cache.disk_cache(kernel_dir):
        return runner.run(units, progress=progress)


def default_jobs():
    """A sensible ``--jobs auto`` value: physical parallelism, capped."""
    return min(8, os.cpu_count() or 1)

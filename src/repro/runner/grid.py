"""Campaign grid expansion.

A *campaign* is the cross product of an error-instance dataset, a set
of repair methods, and an attempt budget — the exact grid the paper
sweeps for Fig. 5–7 and Tables II–III.  This module flattens that grid
into :class:`WorkUnit`\\ s, each one an independent, deterministic,
picklable cell that can be executed on any worker process (or any
shard of a multi-host campaign) and memoized on disk.

Determinism contract: a unit's outcome depends only on its fields —
the buggy/golden source text, the method name, the attempt budget, the
base seed, and the (sorted) config overrides.  The per-attempt LLM
seed is ``base_seed + attempt``, which reproduces the historical
serial loop (``seed=attempt``) when ``base_seed`` is 0.  The
:meth:`WorkUnit.cache_key` hashes exactly those inputs, so cached
results are safe to reuse across interrupted or repeated campaigns.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Bump when the semantics of unit execution or the record schema
#: change; old cache entries are then ignored rather than misread.
#: v2: units carry a simulation backend, and the cache key folds it in
#: so records produced by different backends never alias.
#: v3: records carry a serialized coverage fragment (functional model
#: counters per module + code-coverage counters per instance), merged
#: campaign-wide into the coverage database.
#: v4: the compiled backend's fused kernel commits one final value per
#: comb activation, shifting event counts (and therefore modelled
#: seconds) on compiled-backend records.
#: v5: records carry the ``"poisoned"`` failure kind — quarantined
#: units (worker death / timeout / unit exception) land as structured
#: records (``failure_kind``/``failure_detail``) instead of aborting
#: the campaign.
CACHE_SCHEMA_VERSION = 5


@dataclass
class WorkUnit:
    """One (instance, method, attempt-seed) cell of a campaign grid."""

    index: int                 # position in the full (unsharded) grid
    instance: object           # repro.errgen.generator.ErrorInstance
    method: str
    attempts: int = 3
    base_seed: int = 0
    #: Sorted ``(name, value)`` pairs applied to the method's
    #: UVLLMConfig — tuples keep the unit hashable-by-content and
    #: picklable for process pools.
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    #: Simulation backend every UVM run inside this unit uses
    #: (see :mod:`repro.sim.backend`).
    backend: str = "interp"

    @property
    def design_fingerprint(self):
        """Identity of the DUT this unit simulates (module + buggy
        source).  Units sharing a fingerprint verify the *same design*
        under different methods/configs, so the lane-packing scheduler
        can batch their initial verification runs into one packed
        simulation.  Deliberately NOT part of :meth:`cache_key`:
        grouping is an execution strategy, and records must be
        bit-identical (and cache-compatible) whatever the grouping.
        """
        return _sha(
            self.instance.module_name + "\n" + self.instance.buggy_source
        )

    @property
    def unit_id(self):
        """Human-readable identity (progress lines, logs)."""
        suffix = ""
        if self.config_overrides:
            suffix = "::" + ",".join(
                f"{k}={v}" for k, v in self.config_overrides
            )
        if self.backend != "interp":
            suffix += f"::{self.backend}"
        return (f"{self.instance.instance_id}::{self.method}"
                f"::a{self.attempts}s{self.base_seed}{suffix}")

    def cache_key(self):
        """Content hash identifying this unit's result.

        Hashes the *source text* (not just the instance id) so a
        regenerated dataset with different mutations can never alias a
        stale cached record, and the simulation backend so campaigns
        run on different backends keep disjoint cache entries (their
        modelled seconds may legitimately differ).
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "module": self.instance.module_name,
            "instance_id": self.instance.instance_id,
            "buggy_sha": _sha(self.instance.buggy_source),
            "golden_sha": _sha(self.instance.golden_source),
            "method": self.method,
            "attempts": self.attempts,
            "base_seed": self.base_seed,
            "config": list(self.config_overrides),
            "backend": self.backend,
        }
        return _sha(json.dumps(payload, sort_keys=True))


def _sha(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def expand_grid(instances, methods, attempts=3, base_seed=0,
                config_overrides=None, backend=None):
    """Flatten (instances x methods) into an ordered list of units.

    Order is instance-major, method-minor — the same order the legacy
    serial ``run_methods`` loop produced records in, so routing serial
    execution through the grid is a pure refactor.  ``backend`` selects
    the simulation backend for every unit in the grid; ``None``
    resolves to the process default (so ``REPRO_SIM_BACKEND`` reaches
    campaigns whose caller didn't pick explicitly) — resolution happens
    here, at grid build time, because the backend is part of every
    unit's cache key and pool workers must see a concrete name.
    """
    from repro.sim.backend import canonical_backend, get_default_backend

    backend = (
        canonical_backend(backend) if backend else get_default_backend()
    )
    overrides = tuple(sorted((config_overrides or {}).items()))
    units = []
    for instance in instances:
        for method in methods:
            units.append(
                WorkUnit(
                    index=len(units),
                    instance=instance,
                    method=method,
                    attempts=attempts,
                    base_seed=base_seed,
                    config_overrides=overrides,
                    backend=backend,
                )
            )
    return units


def parse_shard(spec):
    """Parse a ``--shard i/n`` flag (1-based) into ``(index, count)``.

    ``"2/4"`` means "the second of four shards"; returns ``(1, 4)``.
    """
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"bad shard spec '{spec}': expected i/n, e.g. 1/4"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"bad shard spec '{spec}': need 1 <= i <= n"
        )
    return index - 1, count


def shard_units(units, shard_index, shard_count):
    """Deterministic round-robin partition of the grid.

    Every unit lands in exactly one shard (``unit.index % count``), so
    ``n`` hosts running shards ``1/n .. n/n`` against a shared cache
    directory cover the campaign exactly once.
    """
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise ValueError(
            f"bad shard ({shard_index}, {shard_count})"
        )
    return [u for u in units if u.index % shard_count == shard_index]

"""Parallel campaign runner with on-disk memoization.

The experiment grid — (error instance x method x attempt budget) — is
embarrassingly parallel: every cell is independently seeded and shares
no mutable state.  This package turns that grid into a schedulable
pool of work units:

- :mod:`repro.runner.grid` — expand a dataset/method spec into
  :class:`WorkUnit`\\ s; shard them round-robin for multi-host runs;
- :mod:`repro.runner.scheduler` — execute units serially or across a
  ``ProcessPoolExecutor``, bit-identical either way;
- :mod:`repro.runner.cache` — content-hash-keyed JSON store so
  interrupted or repeated campaigns resume instantly;
- :mod:`repro.runner.report` — throttled progress/ETA lines on stderr.

Entry points: ``expand_grid`` + ``run_units`` for programmatic use,
``python -m repro.cli campaign`` for the command line.
"""

from repro.runner.cache import (
    DatasetCache,
    ResultCache,
    record_from_dict,
    record_to_dict,
)
from repro.runner.faults import (
    CampaignInterrupted,
    FaultPolicy,
    UnitTimeout,
)
from repro.runner.grid import (
    CACHE_SCHEMA_VERSION,
    WorkUnit,
    expand_grid,
    parse_shard,
    shard_units,
)
from repro.runner.report import ProgressReporter, format_progress
from repro.runner.scheduler import (
    CampaignRunner,
    default_jobs,
    execute_unit,
    run_units,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignInterrupted",
    "CampaignRunner",
    "DatasetCache",
    "FaultPolicy",
    "ProgressReporter",
    "ResultCache",
    "UnitTimeout",
    "WorkUnit",
    "default_jobs",
    "execute_unit",
    "expand_grid",
    "format_progress",
    "parse_shard",
    "record_from_dict",
    "record_to_dict",
    "run_units",
    "shard_units",
]

"""Failure taxonomy and fault policy for fault-tolerant campaigns.

The scheduler distinguishes two failure families with opposite
handling:

- **Infrastructure failures** — worker death (``BrokenProcessPool``),
  unit wall-clock timeouts, cache I/O errors.  These say nothing about
  the unit's verdict, so they are retried with bounded, deterministic
  backoff; a unit that keeps taking its worker down is *quarantined*
  as a structured ``"poisoned"`` record and the campaign continues.
- **Deterministic failures** — an exception raised by the unit itself.
  Re-running a pure function of the unit's fields would produce the
  same exception, so these are never retried (retrying would only turn
  determinism into flakiness); they quarantine immediately unless
  ``fail_fast`` restores the historical abort-on-first-error
  semantics.

Retries never apply to unit *verdicts*: a record that landed is final,
whatever it says.  Only units that produced no record at all are ever
re-dispatched, which is why a faulty run's surviving records stay
bit-identical to a fault-free ``--jobs 1`` run.
"""

import contextlib
import signal
import threading
from dataclasses import dataclass
from typing import Optional

#: Failure kinds a poisoned record can carry (``failure_kind``).
FAILURE_KINDS = ("worker-death", "timeout", "exception")


class UnitTimeout(Exception):
    """A unit exceeded its wall-clock budget (picklable: raised inside
    pool workers by the SIGALRM handler and shipped back whole)."""

    def __init__(self, label="?", seconds=0.0):
        super().__init__(label, seconds)
        self.label = label
        self.seconds = seconds

    def __str__(self):
        return (f"unit '{self.label}' exceeded its "
                f"{self.seconds:g}s wall-clock budget")


class CampaignInterrupted(Exception):
    """The campaign was stopped by SIGINT/SIGTERM.

    Partial results are already cache-safe (every finished unit landed
    before the interrupt); ``done``/``total`` report how far the run
    got so callers can print a resumable-progress note and exit with a
    distinct code.
    """

    def __init__(self, reason="interrupted", done=0, total=0):
        super().__init__(reason, done, total)
        self.reason = reason
        self.done = done
        self.total = total

    def __str__(self):
        return (f"campaign {self.reason} at {self.done}/{self.total} "
                f"units (finished units are cached)")


@dataclass
class FaultPolicy:
    """Knobs of the fault-tolerance layer.

    ``unit_timeout`` of ``None`` disables both the worker-side alarm
    and the scheduler-side deadline (the historical behaviour: a hung
    unit hangs the campaign).  ``max_strikes`` is how many
    infrastructure failures a unit survives before quarantine — the
    default 2 implements "a unit that kills its worker twice is
    poisoned".  ``backoff`` seeds the deterministic exponential
    re-dispatch delay ``backoff * 2**(strikes-1)``.  ``fail_fast``
    restores abort-on-first-failure for every failure family.
    """

    unit_timeout: Optional[float] = None
    max_strikes: int = 2
    backoff: float = 0.1
    fail_fast: bool = False
    cache_write_retries: int = 3


_DEFAULT_POLICY = FaultPolicy()


def get_default_policy():
    """The process-wide policy ``run_units(policy=None)`` resolves to."""
    return _DEFAULT_POLICY


@contextlib.contextmanager
def policy_scope(policy):
    """Temporarily swap the process-default policy (drivers that fan
    out through many call layers set one scope instead of threading a
    policy argument through every signature)."""
    global _DEFAULT_POLICY
    previous = _DEFAULT_POLICY
    _DEFAULT_POLICY = policy if policy is not None else previous
    try:
        yield _DEFAULT_POLICY
    finally:
        _DEFAULT_POLICY = previous


def backoff_seconds(policy, strikes):
    """Deterministic exponential backoff before re-dispatching a unit
    that has ``strikes`` infrastructure failures."""
    if strikes <= 0:
        return 0.0
    return policy.backoff * (2 ** (strikes - 1))


def _alarm_available():
    """Worker-side alarms need SIGALRM and the main thread (signal
    handlers can only be installed there); everywhere else the
    scheduler-side deadline is the only enforcement."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def unit_alarm(seconds, label="?"):
    """Raise :class:`UnitTimeout` if the block runs past ``seconds``.

    Implemented with ``setitimer(ITIMER_REAL)`` so a wedged *Python*
    loop is interrupted at the next bytecode boundary.  A wedged C
    extension (or a block with SIGALRM masked) is not — that is what
    the scheduler-side deadline kill is for.  ``seconds`` of ``None``
    (or an environment without SIGALRM) is a transparent no-op.
    """
    if not seconds or not _alarm_available():
        yield
        return

    def _on_alarm(_signum, _frame):
        raise UnitTimeout(label, seconds)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def failure_detail(kind, exc=None, label=None, strikes=0):
    """JSON-pure description of a failure for poisoned records and
    forensics bundles."""
    import traceback

    detail = {
        "kind": kind,
        "unit": label,
        "strikes": int(strikes),
        "error": repr(exc) if exc is not None else None,
    }
    if exc is not None and getattr(exc, "__traceback__", None) is not None:
        detail["traceback"] = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    return detail

"""Deterministic fault injection for scheduler recovery tests.

A *fault plan* is a JSON document exported to pool workers through
``REPRO_FAULT_PLAN`` (adopted exactly like ``REPRO_COMPILE_CACHE``):

.. code-block:: python

    {
      "state_dir": "/tmp/...",        # cross-process trigger budgets
      "faults": [
        {"site": "unit", "match": "<substring of unit id or key>",
         "kind": "crash",             # os._exit: kills the worker
         "times": 1},                 # trigger budget (None = always)
        {"site": "unit", "match": "...", "kind": "hang",
         "seconds": 30.0,             # how long to wedge
         "block_alarm": true},        # mask SIGALRM: defeat the
                                      # worker-side alarm so only the
                                      # scheduler deadline can reclaim
        {"site": "unit", "match": "...", "kind": "raise",
         "message": "injected"},      # deterministic unit exception
        {"site": "cache-write", "match": "<cache key substring>",
         "kind": "tear", "times": 1}, # truncate the written JSON
      ],
    }

Faults fire at two *sites*: ``unit`` (entry of unit execution, inside
the worker's alarm scope) and ``cache-write`` (the result-cache
serializer, producing a torn file the next read must quarantine).
Matching is substring over the unit's id / cache key, so a plan pins
faults to specific grid cells regardless of worker assignment.

``times`` budgets are claimed through ``O_CREAT|O_EXCL`` sequence
files under ``state_dir`` — atomic across processes and persistent
across pool respawns, so "crash exactly once" means once per
*campaign*, not once per worker generation.  Everything here is a
no-op (one environment lookup) when no plan is active, and nothing in
this module is imported by production paths beyond the two hook
calls.
"""

import contextlib
import hashlib
import json
import os
import signal
import tempfile
import time

#: Environment variable carrying the active plan to pool workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFault(Exception):
    """The deterministic exception the ``raise`` fault kind throws
    (picklable; module-level so pool workers can ship it back)."""


_parsed = (None, None)  # (raw env string, parsed plan)


def active_plan():
    """The parsed plan from ``REPRO_FAULT_PLAN``, or ``None``."""
    global _parsed
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    if _parsed[0] == raw:
        return _parsed[1]
    try:
        plan = json.loads(raw)
    except ValueError:
        plan = None
    _parsed = (raw, plan)
    return plan


def make_plan(faults, state_dir=None):
    """Assemble a plan dict (``state_dir`` defaults at scope entry)."""
    return {"state_dir": state_dir, "faults": list(faults)}


@contextlib.contextmanager
def plan_scope(plan):
    """Export ``plan`` for the duration of a block (parent process;
    pool workers spawned inside inherit it through the environment).

    Fills in a fresh ``state_dir`` when the plan has none, so
    ``times`` budgets are scoped to this activation.  ``None`` is a
    no-op pass-through.
    """
    if plan is None:
        yield None
        return
    plan = dict(plan)
    cleanup = None
    if not plan.get("state_dir"):
        cleanup = tempfile.TemporaryDirectory(prefix="repro-faults-")
        plan["state_dir"] = cleanup.name
    prev = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = json.dumps(plan, sort_keys=True)
    try:
        yield plan
    finally:
        if prev is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = prev
        if cleanup is not None:
            cleanup.cleanup()


def _fault_id(index, fault):
    blob = json.dumps(fault, sort_keys=True) + "#%d" % index
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _claim(plan, index, fault):
    """Try to consume one trigger from the fault's ``times`` budget.

    Claim ``n`` is the file ``<state_dir>/<fault-id>.<n>`` created
    with ``O_CREAT|O_EXCL`` — first creator wins, so concurrent
    workers and respawned pools share one deterministic budget.
    """
    times = fault.get("times")
    if times is None:
        return True
    state_dir = plan.get("state_dir")
    if not state_dir:
        return False  # a finite budget needs shared state to count
    fid = _fault_id(index, fault)
    for n in range(int(times)):
        path = os.path.join(state_dir, "%s.%d" % (fid, n))
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            continue
        except OSError:
            return False
    return False


def _trigger(fault):
    kind = fault.get("kind")
    if kind == "crash":
        # Hard worker death: no exception, no cleanup — the parent
        # only learns through BrokenProcessPool.
        os._exit(int(fault.get("exit_code", 137)))
    if kind == "hang":
        seconds = float(fault.get("seconds", 3600.0))
        if fault.get("block_alarm") and hasattr(signal, "pthread_sigmask"):
            # Simulate a wedge the worker-side alarm cannot interrupt
            # (a stuck C extension): only the scheduler-side deadline
            # kill can reclaim this worker.
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        deadline = time.monotonic() + seconds
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            # Sleep in slices; an unmasked SIGALRM raises UnitTimeout
            # out of here, which is exactly the reclaim under test.
            time.sleep(min(0.2, remaining))
    if kind == "raise":
        raise InjectedFault(fault.get("message", "injected fault"))
    # Unknown kinds (and "tear", which only maybe_tear consumes) are
    # inert here so a newer plan degrades gracefully on older code.


def _fire(site, identity):
    plan = active_plan()
    if not plan:
        return None
    for index, fault in enumerate(plan.get("faults") or ()):
        if fault.get("site") != site:
            continue
        match = fault.get("match", "")
        if match and match not in identity:
            continue
        if not _claim(plan, index, fault):
            continue
        return fault
    return None


def check_unit(label, key=None):
    """``unit`` site hook: called at unit-execution entry (worker
    side, inside the alarm scope).  Cheap no-op without a plan."""
    if FAULT_PLAN_ENV not in os.environ:
        return
    identity = "%s %s" % (label or "", key or "")
    fault = _fire("unit", identity)
    if fault is not None:
        _trigger(fault)


def maybe_tear(key):
    """``cache-write`` site hook: returns True when this write should
    be torn (the cache then persists a truncated payload)."""
    if FAULT_PLAN_ENV not in os.environ:
        return False
    fault = _fire("cache-write", key or "")
    return fault is not None and fault.get("kind") == "tear"

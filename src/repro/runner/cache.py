"""On-disk memoization for campaign results and generated datasets.

Layout under a cache directory::

    <cache_dir>/units/<sha256>.json      one finished InstanceRecord
    <cache_dir>/datasets/<sha256>.json   one validated error dataset
    <cache_dir>/fuzz/<sha256>.json       one fuzz-unit verdict
    <cache_dir>/compiled/<key>.py        one generated simulation kernel
                                         (cross-run compile cache, see
                                         repro.sim.compile.cache)
    <cache_dir>/coverage/<grid>.shard-i-of-n.json   shard coverage DBs

Each unit file is written atomically (temp file + ``os.replace``) by
whichever process owns the result, so a cache directory can be shared
by concurrent shards of the same campaign: the worst case is two
shards computing the same unit and one overwriting the other with an
identical record.  Schema-mismatched files are silent misses (a
version bump deliberately orphans old entries); *corrupt* files —
unreadable JSON, wrong shape — are quarantined to
``<cache_dir>/corrupt/`` with a ``unit_cache.corrupt`` counter and a
stderr warning, then recomputed: disk corruption should be visible,
not silently papered over.

Keys hash *data* inputs (sources, method name, seeds, config), not
the code that interprets them: editing the repair pipeline or the
mutation operators does NOT invalidate a warm cache.  After a
behavior-changing code edit, bump
:data:`repro.runner.grid.CACHE_SCHEMA_VERSION` or point campaigns at
a fresh ``--cache-dir``.
"""

import json
import os
import sys
import tempfile
from dataclasses import asdict

from repro.obs import trace
from repro.obs.metrics import GLOBAL as _metrics
from repro.runner import faultinject
from repro.runner.grid import CACHE_SCHEMA_VERSION


def record_to_dict(record):
    """Serialize an ``InstanceRecord`` for the JSON cache."""
    return asdict(record)


def record_from_dict(data):
    """Inverse of :func:`record_to_dict`."""
    from repro.experiments.runner import InstanceRecord

    return InstanceRecord(**data)


class ResultCache:
    """Content-addressed store of finished work-unit results.

    The default codec round-trips campaign ``InstanceRecord``\\ s; other
    unit families (the fuzz campaign stores plain verdict dicts under
    ``subdir="fuzz"``) plug in their own ``encode``/``decode`` pair and
    subdirectory so different result schemas never share a namespace.
    ``schema`` overrides the version stamp checked on reads — families
    whose payloads evolve independently of the campaign record schema
    pass their own.
    """

    def __init__(self, cache_dir, subdir="units", encode=None, decode=None,
                 schema=CACHE_SCHEMA_VERSION):
        self.root = os.fspath(cache_dir)
        self.subdir = subdir
        self.unit_dir = os.path.join(self.root, subdir)
        self.encode = encode if encode is not None else record_to_dict
        self.decode = decode if decode is not None else record_from_dict
        self.schema = schema
        os.makedirs(self.unit_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key):
        return os.path.join(self.unit_dir, f"{key}.json")

    def get(self, key):
        """Return the cached record for ``key`` or ``None`` on a miss.

        A schema-mismatched entry is a silent miss (version bumps
        orphan old entries by design); an *unreadable or malformed*
        entry is quarantined — moved to ``<cache_dir>/corrupt/`` with
        a counter and a warning — before recomputing, so corruption
        is observable and the bad bytes are preserved for forensics.
        """
        path = self._path(key)
        with trace.span("cache-read", cat="cache", store=self.subdir) as sp:
            record = None
            payload = None
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                payload = None
            except (OSError, ValueError):
                self._quarantine_corrupt(path, key)
                payload = None
            if payload is not None:
                if not isinstance(payload, dict):
                    self._quarantine_corrupt(path, key)
                elif payload.get("schema") != self.schema:
                    pass  # versioned miss: recompute under the new schema
                else:
                    try:
                        record = self.decode(payload["record"])
                    except (KeyError, TypeError, ValueError):
                        self._quarantine_corrupt(path, key)
            if record is None:
                self.misses += 1
                _metrics.inc("unit_cache.misses")
                sp.set(hit=False)
                return None
            self.hits += 1
            _metrics.inc("unit_cache.hits")
            sp.set(hit=True)
            return record

    def _quarantine_corrupt(self, path, key):
        """Move an unreadable cache entry aside instead of silently
        recomputing over it."""
        corrupt_dir = os.path.join(self.root, "corrupt")
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(path, os.path.join(
                corrupt_dir, f"{self.subdir}-{key}.json"))
        except OSError:
            pass  # quarantine is best-effort; the miss still recomputes
        _metrics.inc("unit_cache.corrupt")
        print(f"[cache] WARNING: corrupt cache entry "
              f"{self.subdir}/{key}.json quarantined to {corrupt_dir}; "
              f"recomputing", file=sys.stderr, flush=True)

    def put(self, key, record):
        """Atomically persist ``record`` under ``key``."""
        payload = {
            "schema": self.schema,
            "key": key,
            "record": self.encode(record),
        }
        with trace.span("cache-write", cat="cache", store=self.subdir):
            text = json.dumps(payload)
            if faultinject.maybe_tear(key):
                # Injected torn write: persist a truncated payload the
                # next read must quarantine (still via the atomic
                # replace — a real tear happens inside the filesystem,
                # not half a rename).
                text = text[:max(1, len(text) // 2)]
            _atomic_write_text(self._path(key), text, self.unit_dir)
        self.writes += 1
        _metrics.inc("unit_cache.writes")


class DatasetCache:
    """Disk cache for validated error datasets.

    Dataset generation simulates every functional candidate through the
    UVM testbench, which dominates warm-campaign wall time — caching it
    makes a repeated campaign essentially free.  Keys must fold in the
    golden sources (see ``generate_dataset``) so edited benchmarks
    invalidate naturally.
    """

    def __init__(self, cache_dir):
        self.dataset_dir = os.path.join(os.fspath(cache_dir), "datasets")
        os.makedirs(self.dataset_dir, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.dataset_dir, f"{key}.json")

    def get(self, key):
        """Return the cached list of instance dicts, or ``None``."""
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            return payload["instances"]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key, instance_dicts):
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "instances": list(instance_dicts),
        }
        _atomic_write_json(self._path(key), payload, self.dataset_dir)


def _atomic_write_json(path, payload, directory):
    _atomic_write_text(path, json.dumps(payload), directory)


def _atomic_write_text(path, text, directory):
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

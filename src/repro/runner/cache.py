"""On-disk memoization for campaign results and generated datasets.

Layout under a cache directory::

    <cache_dir>/units/<sha256>.json      one finished InstanceRecord
    <cache_dir>/datasets/<sha256>.json   one validated error dataset
    <cache_dir>/fuzz/<sha256>.json       one fuzz-unit verdict
    <cache_dir>/compiled/<key>.py        one generated simulation kernel
                                         (cross-run compile cache, see
                                         repro.sim.compile.cache)
    <cache_dir>/coverage/<grid>.shard-i-of-n.json   shard coverage DBs

Each unit file is written atomically (temp file + ``os.replace``) by
whichever process owns the result, so a cache directory can be shared
by concurrent shards of the same campaign: the worst case is two
shards computing the same unit and one overwriting the other with an
identical record.  Corrupt or schema-mismatched files are treated as
misses and recomputed, never propagated.

Keys hash *data* inputs (sources, method name, seeds, config), not
the code that interprets them: editing the repair pipeline or the
mutation operators does NOT invalidate a warm cache.  After a
behavior-changing code edit, bump
:data:`repro.runner.grid.CACHE_SCHEMA_VERSION` or point campaigns at
a fresh ``--cache-dir``.
"""

import json
import os
import tempfile
from dataclasses import asdict

from repro.obs import trace
from repro.obs.metrics import GLOBAL as _metrics
from repro.runner.grid import CACHE_SCHEMA_VERSION


def record_to_dict(record):
    """Serialize an ``InstanceRecord`` for the JSON cache."""
    return asdict(record)


def record_from_dict(data):
    """Inverse of :func:`record_to_dict`."""
    from repro.experiments.runner import InstanceRecord

    return InstanceRecord(**data)


class ResultCache:
    """Content-addressed store of finished work-unit results.

    The default codec round-trips campaign ``InstanceRecord``\\ s; other
    unit families (the fuzz campaign stores plain verdict dicts under
    ``subdir="fuzz"``) plug in their own ``encode``/``decode`` pair and
    subdirectory so different result schemas never share a namespace.
    ``schema`` overrides the version stamp checked on reads — families
    whose payloads evolve independently of the campaign record schema
    pass their own.
    """

    def __init__(self, cache_dir, subdir="units", encode=None, decode=None,
                 schema=CACHE_SCHEMA_VERSION):
        self.root = os.fspath(cache_dir)
        self.subdir = subdir
        self.unit_dir = os.path.join(self.root, subdir)
        self.encode = encode if encode is not None else record_to_dict
        self.decode = decode if decode is not None else record_from_dict
        self.schema = schema
        os.makedirs(self.unit_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key):
        return os.path.join(self.unit_dir, f"{key}.json")

    def get(self, key):
        """Return the cached record for ``key`` or ``None`` on a miss."""
        with trace.span("cache-read", cat="cache", store=self.subdir) as sp:
            try:
                with open(self._path(key)) as handle:
                    payload = json.load(handle)
                if payload.get("schema") != self.schema:
                    raise ValueError("schema mismatch")
                record = self.decode(payload["record"])
            except (OSError, ValueError, KeyError, TypeError):
                self.misses += 1
                _metrics.inc("unit_cache.misses")
                sp.set(hit=False)
                return None
            self.hits += 1
            _metrics.inc("unit_cache.hits")
            sp.set(hit=True)
            return record

    def put(self, key, record):
        """Atomically persist ``record`` under ``key``."""
        payload = {
            "schema": self.schema,
            "key": key,
            "record": self.encode(record),
        }
        with trace.span("cache-write", cat="cache", store=self.subdir):
            _atomic_write_json(self._path(key), payload, self.unit_dir)
        self.writes += 1
        _metrics.inc("unit_cache.writes")


class DatasetCache:
    """Disk cache for validated error datasets.

    Dataset generation simulates every functional candidate through the
    UVM testbench, which dominates warm-campaign wall time — caching it
    makes a repeated campaign essentially free.  Keys must fold in the
    golden sources (see ``generate_dataset``) so edited benchmarks
    invalidate naturally.
    """

    def __init__(self, cache_dir):
        self.dataset_dir = os.path.join(os.fspath(cache_dir), "datasets")
        os.makedirs(self.dataset_dir, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.dataset_dir, f"{key}.json")

    def get(self, key):
        """Return the cached list of instance dicts, or ``None``."""
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            return payload["instances"]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key, instance_dicts):
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "instances": list(instance_dicts),
        }
        _atomic_write_json(self._path(key), payload, self.dataset_dir)


def _atomic_write_json(path, payload, directory):
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

"""Progress and ETA streaming for long campaigns.

Campaigns print one status line to stderr at a throttled interval (so
CI logs stay readable) plus a final summary.  ETA is extrapolated from
*executed* units only — cache hits resolve in microseconds and would
otherwise make the estimate wildly optimistic at the start of a
partially warm campaign.
"""

import sys
import time


def format_kernel_stats(kernels):
    """Compiled-kernel cache summary fragment, or "" when inactive."""
    if not kernels or not any(kernels.values()):
        return ""
    hits = kernels.get("memo_hits", 0) + kernels.get("disk_hits", 0)
    text = f" kernels {kernels.get('compiled', 0)}c/{hits}h"
    if kernels.get("disk_hits"):
        text += f" ({kernels['disk_hits']} disk)"
    return text


def format_lane_stats(lanes):
    """Lane-batch summary fragment, or "" when no batches ran.

    Reads ``lanes {width}x{packed} packed / {demoted} scalar-demoted``:
    how many batches actually advanced ``width`` seeds per packed step
    versus falling back to per-lane scalar simulation.
    """
    if not lanes:
        return ""
    packed = lanes.get("packed_batches", 0)
    demoted = lanes.get("demoted_batches", 0)
    if not packed and not demoted:
        return ""
    text = f" lanes {lanes.get('lanes', 0)}x{packed} packed"
    if demoted:
        text += f" / {demoted} scalar-demoted"
    return text


def format_progress(done, total, elapsed, cached=0, kernels=None,
                    lanes=None, eta_seconds=None):
    """Render one status line; pure function for testability.

    ``eta_seconds`` is a precomputed remaining-time estimate (the
    scheduler derives one from its rolling per-unit histogram, so a
    long-tail unit early in the run stops inflating the estimate);
    when absent the line falls back to extrapolating the global
    average over executed units.
    """
    percent = 100.0 * done / total if total else 100.0
    executed = done - cached
    remaining = total - done
    if eta_seconds is not None and remaining > 0:
        eta_text = f" eta {_duration(eta_seconds)}"
    elif executed > 0 and elapsed > 0 and remaining > 0:
        eta = remaining * (elapsed / executed)
        eta_text = f" eta {_duration(eta)}"
    else:
        eta_text = ""
    cached_text = f" ({cached} cached)" if cached else ""
    return (f"[campaign] {done}/{total} units ({percent:.0f}%)"
            f"{cached_text} elapsed {_duration(elapsed)}{eta_text}"
            f"{format_kernel_stats(kernels)}{format_lane_stats(lanes)}")


def _duration(seconds):
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressReporter:
    """Throttled stderr progress stream for a campaign run."""

    def __init__(self, total, stream=None, min_interval=1.0, clock=None):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.clock = clock or time.monotonic
        self.started = self.clock()
        self._last_emit = float("-inf")
        self.done = 0
        self.cached = 0

    def update(self, done, cached=0, kernels=None, lanes=None,
               eta_seconds=None):
        """Advance to ``done`` completed units (``cached`` of them
        hits); ``kernels`` is the compiled-kernel cache aggregate so
        far (compile/hit counters stream live), ``lanes`` the
        lane-batch aggregate, ``eta_seconds`` the scheduler's rolling
        remaining-time estimate (optional)."""
        self.done, self.cached = done, cached
        now = self.clock()
        if now - self._last_emit < self.min_interval and done < self.total:
            return
        self._last_emit = now
        line = format_progress(done, self.total, now - self.started,
                               cached=cached, kernels=kernels,
                               lanes=lanes, eta_seconds=eta_seconds)
        print(line, file=self.stream, flush=True)

    def finish(self, kernels=None, lanes=None, demotions=None,
               faults=None):
        elapsed = self.clock() - self.started
        executed = self.done - self.cached
        kernel_text = ""
        if kernels and any(kernels.values()):
            hits = kernels.get("memo_hits", 0) + \
                kernels.get("disk_hits", 0)
            kernel_text = (
                f"; kernel cache: {kernels.get('compiled', 0)} "
                f"compiled, {hits} hits "
                f"({kernels.get('disk_hits', 0)} from disk)"
            )
        lane_text = ""
        if lanes and (lanes.get("packed_batches")
                      or lanes.get("demoted_batches")):
            lane_text = (
                f"; lane batches: {lanes.get('packed_batches', 0)} "
                f"packed x{lanes.get('lanes', 0)}, "
                f"{lanes.get('demoted_batches', 0)} scalar-demoted"
            )
        print(
            f"[campaign] finished {self.done}/{self.total} units in "
            f"{_duration(elapsed)} ({executed} executed, "
            f"{self.cached} from cache{kernel_text}{lane_text})",
            file=self.stream, flush=True,
        )
        if demotions:
            breakdown = ", ".join(
                f"{category} x{count}"
                for category, count in sorted(
                    demotions.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            print(f"[campaign] lane demotions: {breakdown}",
                  file=self.stream, flush=True)
        if faults and any(faults.values()):
            print("[campaign] fault tolerance: " + format_fault_stats(faults),
                  file=self.stream, flush=True)

    def interrupted(self, done, total, cached=0):
        """Final summary for a SIGINT/SIGTERM abort: how far the run
        got (finished units are cached, so a re-run resumes here)."""
        elapsed = self.clock() - self.started
        print(
            f"[campaign] INTERRUPTED at {done}/{total} units after "
            f"{_duration(elapsed)} ({cached} from cache); finished "
            f"units are cached — re-run to resume",
            file=self.stream, flush=True,
        )


def format_fault_stats(faults):
    """Fault-tolerance summary fragment: retries, quarantines, pool
    respawns and their causes (pure function for testability)."""
    parts = [
        f"{faults.get('retries', 0)} retried",
        f"{faults.get('quarantined', 0)} quarantined",
        f"{faults.get('pool_respawns', 0)} pool respawn(s)",
    ]
    causes = []
    if faults.get("timeouts"):
        causes.append(f"{faults['timeouts']} timeout(s)")
    if faults.get("worker_deaths"):
        causes.append(f"{faults['worker_deaths']} worker death(s)")
    text = ", ".join(parts)
    if causes:
        text += " [" + ", ".join(causes) + "]"
    return text

"""The rollback mechanism and Score Register (paper Section III-C).

Every iteration's candidate code is scored by the scoreboard's test
pass rate.  If a new iteration scores below the best seen so far, the
framework reverts to the best-scoring version and records the offending
patch as a *damage repair*, which is fed back into the next prompt's
DAMAGE REPAIRS section so the agent does not repeat it.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class ScoreEntry:
    """One archived (iteration, score, source) snapshot."""

    iteration: int
    score: float
    source: str


@dataclass
class ScoreRegister:
    """History of scored code versions plus the damage-repair log."""

    history: List[ScoreEntry] = field(default_factory=list)
    damage_repairs: List[Tuple[str, str]] = field(default_factory=list)
    rollbacks: int = 0

    def record(self, iteration, score, source):
        self.history.append(ScoreEntry(iteration, score, source))

    @property
    def best(self) -> Optional[ScoreEntry]:
        if not self.history:
            return None
        # max by score; ties keep the earliest (stable, fewer changes).
        best_entry = self.history[0]
        for entry in self.history[1:]:
            if entry.score > best_entry.score:
                best_entry = entry
        return best_entry

    def consider(self, iteration, score, source, applied_pairs):
        """Score a new candidate.

        Returns the source to continue from.  When the candidate scores
        below the best archived version, the best version is restored,
        the rollback counter increments, and the applied pairs are
        logged as damage repairs.
        """
        best_before = self.best
        self.record(iteration, score, source)
        if best_before is not None and score < best_before.score:
            self.rollbacks += 1
            for pair in applied_pairs:
                if len(pair) >= 2:
                    key = (pair[0], pair[1])
                    if key not in self.damage_repairs:
                        self.damage_repairs.append(key)
            return best_before.source
        return source

"""Patch application: original/patched pair lists onto source text.

The repair agent's structured output quotes exact DUT lines; application
replaces the first match (exact first, then whitespace-insensitive), so
formatting noise from the LLM does not break the pipeline.
"""


class PatchError(Exception):
    """A pair's original text could not be located in the source."""


def _replace_line(lines, original, patched):
    target = original.rstrip("\n")
    for index, line in enumerate(lines):
        if line == target:
            lines[index] = patched
            return True
    stripped_target = target.strip()
    if not stripped_target:
        return False
    for index, line in enumerate(lines):
        if line.strip() == stripped_target:
            indent = line[: len(line) - len(line.lstrip())]
            lines[index] = indent + patched.strip()
            return True
    # Fragment fallback: the model quoted a sub-expression rather than a
    # whole line (common with real LLMs); replace the first occurrence.
    for index, line in enumerate(lines):
        if stripped_target in line:
            lines[index] = line.replace(stripped_target, patched.strip(), 1)
            return True
    return False


def apply_pairs(source, pairs, strict=False):
    """Apply original→patched pairs; returns (new_source, applied_count).

    Empty-original pairs append their patched text (declaration or
    ``endmodule`` insertions).  With ``strict`` a miss raises
    :class:`PatchError`; otherwise misses are skipped, mirroring how the
    framework tolerates slightly-off LLM quotes.
    """
    lines = source.splitlines()
    applied = 0
    for pair in pairs:
        if len(pair) < 2:
            continue
        original, patched = pair[0], pair[1]
        if not original.strip():
            if patched.strip():
                lines.append(patched)
                applied += 1
            continue
        if "\n" in original:
            joined = "\n".join(lines)
            if original in joined:
                joined = joined.replace(original, patched, 1)
                lines = joined.splitlines()
                applied += 1
                continue
        if _replace_line(lines, original, patched):
            applied += 1
        elif strict:
            raise PatchError(f"original text not found: {original!r}")
    return "\n".join(lines) + "\n", applied

"""UVLLM configuration."""

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class UVLLMConfig:
    """Pipeline parameters (paper defaults in Section IV, Setup).

    - ``max_iterations`` — repair-loop bound (paper: 5; "improvement is
      hardly observed after that");
    - ``ms_iterations`` — iterations using mismatch-signal-only error
      info before escalating to suspicious-line mode (Algorithm 2's TH);
    - ``patch_form`` — ``"pair"`` (original/patched pairs, the default)
      or ``"complete"`` (whole-module regeneration, Table III ablation);
    - ``preprocess_iterations`` — Algorithm 1 loop bound;
    - ``stimulus`` — HR-suite stimulus mode: ``"random"``
      (fixed-random) or ``"coverage"`` (closed-loop coverage-driven,
      same transaction budget; the stimulus ablation's switch).
    """

    max_iterations: int = 5
    ms_iterations: int = 2
    patch_form: str = "pair"
    preprocess_iterations: int = 6
    hr_seed: int = 0
    enable_rollback: bool = True
    stimulus: str = "random"

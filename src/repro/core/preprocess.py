"""Pre-processing stage: joint LLM-script linting loop (Algorithm 1).

The loop matches the paper line by line: lint; if *errors*, ask the LLM
for syntax fixes; else if focused *warnings*, apply the scripted
templates; repeat until clean (or the iteration bound).
"""

from dataclasses import dataclass, field
from typing import List

from repro.core.patches import apply_pairs
from repro.lint import FIXABLE_WARNINGS, apply_warning_templates
from repro.lint.linter import Linter
from repro.llm.prompts import build_syntax_prompt
from repro.llm.schema import (
    REPAIR_SCHEMA,
    SchemaValidationError,
    parse_structured_response,
)


@dataclass
class PreprocessReport:
    """What Algorithm 1 did to one DUT."""

    iterations: int = 0
    llm_calls: int = 0
    template_fixes: int = 0
    clean: bool = False
    had_syntax_errors: bool = False
    remaining: List[str] = field(default_factory=list)


class Preprocessor:
    """Joint LLM-script pre-processor."""

    def __init__(self, llm, timing=None, max_iterations=6, spec=None):
        self.llm = llm
        self.timing = timing
        self.linter = Linter()
        self.max_iterations = max_iterations
        self.spec = spec

    def run(self, source):
        """Returns (pre-processed source, :class:`PreprocessReport`)."""
        report = PreprocessReport()
        current = source
        for _ in range(self.max_iterations):
            report.iterations += 1
            lint = self.linter.lint(current)
            if self.timing is not None:
                self.timing.lint("preprocess")
            errors = lint.errors
            warnings = lint.warnings_with_code(*FIXABLE_WARNINGS)
            if errors:
                report.had_syntax_errors = True
                updated = self._llm_fix(current, lint, report)
                if updated == current:
                    # Nothing usable this round; retry (LLM sampling is
                    # stochastic) until the iteration bound runs out.
                    continue
                current = updated
            elif warnings:
                current, fixed = apply_warning_templates(current, warnings)
                report.template_fixes += fixed
                if self.timing is not None:
                    self.timing.template_fix(max(1, fixed), "preprocess")
                if not fixed:
                    break
            else:
                report.clean = True
                return current, report
        final = self.linter.lint(current)
        report.clean = not final.errors and not final.warnings_with_code(
            *FIXABLE_WARNINGS
        )
        report.remaining = [d.format() for d in final.errors]
        return current, report

    def _llm_fix(self, source, lint, report):
        prompt = build_syntax_prompt(source, lint.format(), spec=self.spec)
        from repro.obs import trace

        with trace.span("repair-llm", cat="llm", stage="preprocess"):
            response = self.llm.complete(prompt, task="syntax")
        report.llm_calls += 1
        if self.timing is not None:
            self.timing.llm_call("preprocess", response)
        try:
            data = parse_structured_response(response.text, REPAIR_SCHEMA)
        except SchemaValidationError:
            return source
        pairs = data.get("correct", [])
        if not pairs:
            return source
        updated, applied = apply_pairs(source, pairs)
        return updated if applied else source

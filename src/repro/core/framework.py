"""The UVLLM orchestrator (Fig. 2).

``verify_and_repair`` runs the full pipeline on one DUT:

1. **Pre-processing** — Algorithm 1 (LLM for syntax errors, scripts for
   focused warnings);
2. **UVM processing** — run the UVM testbench, collect pass rate and
   mismatch log;
3. **Post-processing** — localization engine distills error info (MS
   mode first, SL mode after ``ms_iterations`` failures);
4. **Repair** — the agent proposes a patch; new syntax errors it may
   introduce are swept up by re-running the pre-processor; the rollback
   register reverts score-decreasing iterations and accumulates damage
   repairs.

Termination: all tests pass (*success*) or the iteration budget is
exhausted (*failure*); all code versions stay archived in the register.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import UVLLMConfig
from repro.core.preprocess import Preprocessor
from repro.core.repair import RepairAgent
from repro.core.rollback import ScoreRegister
from repro.lint.linter import Linter
from repro.locate.engine import LocalizationEngine
from repro.metrics.timing import TimingModel
from repro.uvm.test import run_uvm_test


@dataclass
class VerifyRequest:
    """One UVM verification the repair pipeline is waiting on.

    ``UVLLM.verify_and_repair_steps`` yields these instead of calling
    :func:`repro.uvm.test.run_uvm_test` directly; the driver runs (or
    lane-batches) the request and sends the ``TestResult`` back in.
    The request is a pure ``(source, sequence)`` pair — protocol,
    reference model and compare signals come from the bench the driver
    already holds, so grouped and scalar execution consume identical
    inputs.
    """

    source: str
    sequence: object


@dataclass
class VerificationOutcome:
    """Result of one UVLLM run on one DUT instance."""

    final_source: str
    hit: bool                      # internal acceptance: UVM suite passed
    iterations: int = 0
    stage: Optional[str] = None    # "preprocess" | "ms" | "sl" | None
    seconds: float = 0.0
    stage_seconds: dict = field(default_factory=dict)
    pass_rate_history: List[float] = field(default_factory=list)
    rollbacks: int = 0
    llm_calls: int = 0
    cost_usd: float = 0.0
    preprocess_changed: bool = False

    @property
    def succeeded(self):
        return self.hit


class UVLLM:
    """The end-to-end framework."""

    def __init__(self, llm, config=None):
        self.llm = llm
        self.config = config or UVLLMConfig()
        self.linter = Linter()

    def verify_and_repair(self, source, bench, sequence=None,
                          initial_result=None):
        """Run the pipeline on ``source`` against benchmark ``bench``.

        ``bench`` supplies the spec, drive protocol, reference model and
        compare signals; ``sequence`` overrides the default HR stimulus.

        ``initial_result`` is an optional precomputed UVM result for
        ``source`` under ``sequence`` (the lane-packed campaign runner
        computes one per stimulus seed for a whole group of units in a
        single packed simulation).  It is only trusted when the
        pre-processor leaves the source untouched — otherwise the
        pipeline re-verifies exactly as it would have without it, so
        outcomes are bit-identical either way; the caller must pass the
        matching ``sequence``.

        This is the scalar driver over
        :meth:`verify_and_repair_steps`: every verification the
        pipeline requests runs immediately via ``run_uvm_test``.  The
        lane-grouped campaign path drives the same generator and
        batches coinciding sibling requests instead — outcomes are
        bit-identical because the generator never observes *how* its
        request was executed.
        """
        steps = self.verify_and_repair_steps(
            source, bench, sequence=sequence,
            initial_result=initial_result,
        )
        result = None
        while True:
            try:
                request = steps.send(result)
            except StopIteration as stop:
                return stop.value
            result = run_uvm_test(
                request.source, request.sequence, bench.protocol,
                bench.model(), bench.compare_signals, top=bench.top,
            )

    def verify_and_repair_steps(self, source, bench, sequence=None,
                                initial_result=None):
        """Generator form of the pipeline: yields a
        :class:`VerifyRequest` for every UVM run it needs and receives
        the matching ``TestResult`` via ``send``; returns the
        :class:`VerificationOutcome` (as ``StopIteration.value``).

        All pipeline state (LLM calls, timing, rollback register) is
        internal to the generator, so interleaving several instances —
        the repair-attempt lane grouping in
        :func:`repro.experiments.runner.execute_unit_group` — cannot
        change any one instance's outcome.
        """
        from repro.bench.registry import make_hr_sequence

        config = self.config
        timing = TimingModel()
        calls_before = self.llm.budget.calls
        cost_before = self.llm.budget.cost_usd
        register = ScoreRegister()
        locator = LocalizationEngine(ms_iterations=config.ms_iterations)
        agent = RepairAgent(self.llm, timing, patch_form=config.patch_form)
        preprocessor = Preprocessor(
            self.llm, timing, config.preprocess_iterations, spec=bench.spec
        )

        if sequence is None:
            sequence = make_hr_sequence(bench, seed=config.hr_seed,
                                        stimulus=config.stimulus)

        current, prep_report = preprocessor.run(source)
        preprocess_changed = current != source

        outcome = VerificationOutcome(
            final_source=current, hit=False,
            preprocess_changed=preprocess_changed,
        )

        if initial_result is not None and not preprocess_changed:
            result = initial_result
            self._account(result, timing, stage="preprocess")
        else:
            result = yield VerifyRequest(current, sequence)
            self._account(result, timing, stage="preprocess")
        outcome.pass_rate_history.append(result.pass_rate if result.ok else 0.0)
        if result.all_passed:
            outcome.hit = True
            outcome.stage = "preprocess"
            return self._finalize(outcome, current, timing, register,
                                  calls_before, cost_before)

        register.record(0, result.pass_rate if result.ok else -1.0, current)
        baseline_result = result
        tried_pairs = []

        for iteration in range(config.max_iterations):
            stage = "ms" if iteration < config.ms_iterations else "sl"
            info = locator.analyze(current, result, iteration=iteration)
            summary = info.summary(source_lines=current.splitlines())
            exclusions = list(register.damage_repairs) + tried_pairs
            proposal = agent.propose(
                current, bench.spec, summary,
                damage_repairs=exclusions, stage=stage,
            )
            outcome.iterations = iteration + 1
            if not proposal.valid or proposal.applied == 0:
                continue
            candidate = proposal.source

            # Repairs can introduce fresh syntax errors; the
            # pre-processor compensates (paper Result 4).
            lint = self.linter.lint(candidate)
            timing.lint("preprocess")
            if lint.errors:
                candidate, _ = preprocessor.run(candidate)

            candidate_result = yield VerifyRequest(candidate, sequence)
            self._account(candidate_result, timing, stage=stage)
            score = candidate_result.pass_rate if candidate_result.ok \
                else -1.0
            outcome.pass_rate_history.append(max(score, 0.0))
            if candidate_result.all_passed:
                outcome.hit = True
                outcome.stage = stage
                current = candidate
                return self._finalize(outcome, current, timing, register,
                                      calls_before, cost_before)
            best_before = register.best
            if config.enable_rollback and best_before is not None and \
                    score < best_before.score:
                # Score regression: roll back and log damage repairs.
                register.consider(
                    iteration + 1, score, candidate, proposal.pairs
                )
                # `current`/`result` stay at the archived best version.
            elif config.enable_rollback and best_before is not None and \
                    score == best_before.score:
                # No improvement: revert to avoid drift, remember the
                # failed patch so the agent proposes something new.
                register.record(iteration + 1, score, candidate)
                for pair in proposal.pairs:
                    if len(pair) >= 2 and (pair[0], pair[1]) not in \
                            tried_pairs:
                        tried_pairs.append((pair[0], pair[1]))
            else:
                # Improvement (or rollback disabled): adopt the candidate.
                register.record(iteration + 1, score, candidate)
                current = candidate
                result = candidate_result

        best = register.best
        if best is not None and best.score >= 0 and (
            not result.ok or best.score > result.pass_rate
        ):
            current = best.source
        return self._finalize(outcome, current, timing, register,
                              calls_before, cost_before)

    # -- helpers -------------------------------------------------------------

    def _account(self, result, timing, stage):
        events = (
            result.simulator.event_count if result.simulator is not None
            else 200
        )
        timing.simulation(events, stage=stage)

    def _finalize(self, outcome, source, timing, register, calls_before,
                  cost_before):
        outcome.final_source = source
        outcome.seconds = timing.seconds
        outcome.stage_seconds = dict(timing.clock.by_stage)
        outcome.rollbacks = register.rollbacks
        outcome.llm_calls = self.llm.budget.calls - calls_before
        outcome.cost_usd = self.llm.budget.cost_usd - cost_before
        return outcome

"""The repair agent (paper Section III-D, Fig. 4)."""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.patches import apply_pairs
from repro.llm.prompts import build_repair_prompt
from repro.llm.schema import (
    COMPLETE_SCHEMA,
    REPAIR_SCHEMA,
    SchemaValidationError,
    parse_structured_response,
)


@dataclass
class RepairProposal:
    """One candidate repair from the agent."""

    source: str
    pairs: List[Tuple[str, str]] = field(default_factory=list)
    analysis: str = ""
    applied: int = 0
    valid: bool = True


class RepairAgent:
    """Wraps the LLM into the structured-prompt / structured-output
    repair exchange.

    ``patch_form`` selects original/patched pairs vs complete-module
    regeneration (the Table III ablation); both paths validate the JSON
    against the appropriate schema before touching the code.
    """

    def __init__(self, llm, timing=None, patch_form="pair"):
        self.llm = llm
        self.timing = timing
        self.patch_form = patch_form

    def propose(self, source, spec, error_summary, damage_repairs=None,
                stage="ms"):
        """Ask for one candidate repair; returns a RepairProposal."""
        prompt = build_repair_prompt(
            source, spec, error_summary,
            damage_repairs=damage_repairs, patch_form=self.patch_form,
        )
        from repro.obs import trace

        with trace.span("repair-llm", cat="llm", stage=stage):
            response = self.llm.complete(prompt, task="repair")
        if self.timing is not None:
            self.timing.llm_call(stage, response)
        if self.patch_form == "complete":
            return self._parse_complete(source, response.text)
        return self._parse_pairs(source, response.text)

    def _parse_pairs(self, source, text):
        try:
            data = parse_structured_response(text, REPAIR_SCHEMA)
        except SchemaValidationError:
            return RepairProposal(source=source, valid=False)
        pairs = [tuple(pair[:2]) for pair in data.get("correct", [])]
        updated, applied = apply_pairs(source, pairs)
        return RepairProposal(
            source=updated if applied else source,
            pairs=pairs,
            analysis=data.get("analysis", ""),
            applied=applied,
            valid=True,
        )

    def _parse_complete(self, source, text):
        try:
            data = parse_structured_response(text, COMPLETE_SCHEMA)
        except SchemaValidationError:
            return RepairProposal(source=source, valid=False)
        code = data.get("code", "")
        if not code.strip():
            return RepairProposal(source=source, valid=False)
        return RepairProposal(
            source=code if code.endswith("\n") else code + "\n",
            pairs=[("<complete>", "<complete>")],
            analysis=data.get("analysis", ""),
            applied=1,
            valid=True,
        )

"""UVLLM core: the four-stage verify-and-repair pipeline of Fig. 2.

:class:`UVLLM` orchestrates pre-processing (Algorithm 1), UVM
processing, post-processing localization (Algorithm 2), and the repair
agent, with the pass-rate-keyed rollback mechanism in between
iterations.
"""

from repro.core.config import UVLLMConfig
from repro.core.patches import PatchError, apply_pairs
from repro.core.preprocess import PreprocessReport, Preprocessor
from repro.core.repair import RepairAgent, RepairProposal
from repro.core.rollback import ScoreRegister
from repro.core.framework import UVLLM, VerificationOutcome

__all__ = [
    "UVLLMConfig",
    "PatchError",
    "apply_pairs",
    "PreprocessReport",
    "Preprocessor",
    "RepairAgent",
    "RepairProposal",
    "ScoreRegister",
    "UVLLM",
    "VerificationOutcome",
]

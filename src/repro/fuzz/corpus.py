"""The checked-in regression corpus.

Every minimized reproducer the fuzzer (or a human) deems worth
keeping lives as one JSON file under ``tests/corpus/``, where
``tests/test_fuzz_corpus.py`` collects and replays them forever: a
bug fixed once stays fixed.  Entries are content-addressed
(``<kind>-<sha12>.json``) so re-saving an identical reproducer is a
no-op and two shrunk variants of the same bug do not collide.

An entry records everything replay needs — the minimized source, the
exact stimulus op list, the expected oracle outcome — plus
provenance (generator version, originating seeds) so a future session
can regenerate context.  ``expect`` is ``"pass"`` for regression
entries (the bug is fixed; the oracle must stay green) — the only
kind a healthy tree carries.  Fresh reproducers leave the fuzzer
with ``expect: "fail"`` (the bug still reproduces); flip the field
to ``"pass"`` when promoting after the fix — the content address
hashes only kind/source/ops, so the filename stays valid.
"""

import hashlib
import json
import os

from repro.fuzz.oracle import run_oracle

CORPUS_SCHEMA = 1

#: Default location, resolved relative to the repository layout
#: (``src/repro/fuzz/corpus.py`` -> ``tests/corpus``).
DEFAULT_CORPUS_DIR = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "tests", "corpus",
))


def entry_id(entry):
    """Content hash over the fields that define the reproducer."""
    payload = json.dumps(
        {
            "kind": entry["kind"],
            "source": entry["source"],
            "ops": [list(op) for op in entry["ops"]],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def make_entry(kind, source, ops, description="", origin=None,
               expect="pass"):
    """Assemble a corpus entry dict (JSON-pure)."""
    return {
        "schema": CORPUS_SCHEMA,
        "kind": kind,
        "description": description,
        "expect": expect,
        "source": source,
        "ops": [list(op) for op in ops],
        "origin": dict(origin or {}),
    }


def save_reproducer(entry, corpus_dir=None):
    """Write ``entry`` under the corpus directory; returns its path."""
    corpus_dir = corpus_dir or DEFAULT_CORPUS_DIR
    os.makedirs(corpus_dir, exist_ok=True)
    slug = "".join(
        ch if ch.isalnum() or ch == "-" else "-"
        for ch in entry["kind"]
    )
    name = f"{slug}-{entry_id(entry)}.json"
    path = os.path.join(corpus_dir, name)
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(corpus_dir=None):
    """All corpus entries, sorted by filename; each carries ``_file``."""
    corpus_dir = corpus_dir or DEFAULT_CORPUS_DIR
    entries = []
    if not os.path.isdir(corpus_dir):
        return entries
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(corpus_dir, name)) as handle:
            entry = json.load(handle)
        if entry.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"corpus entry {name} has schema "
                f"{entry.get('schema')!r}, expected {CORPUS_SCHEMA}"
            )
        entry["_file"] = name
        entries.append(entry)
    return entries


def replay_entry(entry):
    """Re-run the oracle on a corpus entry.

    Returns the failure (or ``None``); the regression test asserts it
    matches the entry's ``expect`` field."""
    ops = [tuple(op) for op in entry["ops"]]
    return run_oracle(entry["source"], ops)

"""Fuzz campaigns through the shared runner grid.

A fuzz campaign is a contiguous block of seeds expanded into
:class:`FuzzUnit`\\ s — content-hashed, picklable, independently
executable cells exactly like campaign work units, so fuzz runs are
resumable (warm cache), shardable (``--shard i/n``) and
parallelizable (``--jobs N``) through the same
:mod:`repro.runner.scheduler` with a fuzz-specific executor and
cache codec.

A unit's verdict is a plain JSON dict; failing verdicts embed the
generated source and stimulus so the parent process can shrink and
archive them without regenerating (regeneration is deterministic
anyway — the embedded copy makes artifacts self-contained).
"""

import hashlib
import json
import os
import time
from dataclasses import dataclass

from repro.forensics import bundle as forensics
from repro.fuzz.generate import GENERATOR_VERSION, generate_design
from repro.fuzz.oracle import check_design
from repro.obs import sink, trace
from repro.runner.cache import ResultCache
from repro.runner.scheduler import run_units

#: Bump when verdict semantics change; folded into every cache key
#: and checked on reads (fuzz verdicts version independently of the
#: campaign record schema).
FUZZ_SCHEMA_VERSION = 1


@dataclass
class FuzzUnit:
    """One generated design + stimulus cell of a fuzz campaign."""

    index: int
    design_seed: int
    stim_seed: int
    cycles: int = 24

    @property
    def unit_id(self):
        return (f"fuzz::d{self.design_seed}::s{self.stim_seed}"
                f"::c{self.cycles}")

    def cache_key(self):
        """Content hash of everything the verdict depends on."""
        payload = {
            "schema": FUZZ_SCHEMA_VERSION,
            "generator": GENERATOR_VERSION,
            "design_seed": self.design_seed,
            "stim_seed": self.stim_seed,
            "cycles": self.cycles,
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("ascii")
        ).hexdigest()


def expand_fuzz(count, seed=0, cycles=24):
    """``count`` consecutive units starting at ``seed``."""
    return [
        FuzzUnit(index=i, design_seed=seed + i, stim_seed=seed + i,
                 cycles=cycles)
        for i in range(count)
    ]


def execute_fuzz_unit(unit):
    """Run one fuzz unit to a JSON-pure verdict (pool-worker
    primitive; module-level for picklability)."""
    with trace.span("generate", cat="fuzz", seed=unit.design_seed):
        design = generate_design(unit.design_seed)
    with trace.span("oracle-check", cat="fuzz", seed=unit.stim_seed,
                    cycles=unit.cycles):
        ops, failure = check_design(design, cycles=unit.cycles,
                                    stim_seed=unit.stim_seed)
    verdict = {
        "design_seed": unit.design_seed,
        "stim_seed": unit.stim_seed,
        "cycles": unit.cycles,
        "ok": failure is None,
        "features": list(design.features),
        "source_sha": hashlib.sha256(
            design.source.encode("utf-8")).hexdigest()[:16],
    }
    if failure is not None:
        verdict["failure"] = failure.to_dict()
        verdict["source"] = design.source
        verdict["ops"] = [list(op) for op in ops]
    return verdict


def make_fuzz_cache(cache_dir):
    """A :class:`ResultCache` storing verdict dicts under ``fuzz/``."""
    return ResultCache(cache_dir, subdir="fuzz", encode=dict,
                       decode=dict, schema=FUZZ_SCHEMA_VERSION)


def make_poisoned_verdict(unit, failure):
    """Quarantine record for a fuzz unit (the scheduler's
    ``poisoned_factory``): a verdict-shaped dict that is neither a
    pass nor a divergence — ``poisoned`` marks it so failure triage
    and the shrinker skip it."""
    return {
        "design_seed": unit.design_seed,
        "stim_seed": unit.stim_seed,
        "cycles": unit.cycles,
        "ok": False,
        "poisoned": True,
        "features": [],
        "failure": dict(failure),
    }


def run_fuzz(count, seed=0, cycles=24, jobs=1, cache_dir=None,
             shard=None, time_budget=None, show_progress=False,
             telemetry=False, forensics_capture=False,
             unit_timeout=None, fail_fast=False):
    """Execute a fuzz campaign; returns the summary dict.

    ``shard`` is an ``(index, count)`` pair partitioning the seed
    block round-robin; ``time_budget`` (seconds) stops dispatching
    new batches once exceeded — finished units are cached, so the
    next run resumes where this one stopped.  Without a budget the
    result is a pure function of ``(count, seed, cycles)``.
    ``telemetry`` writes span/metrics shards under
    ``<cache-dir>/telemetry/`` (verdicts are unaffected).
    ``forensics_capture`` archives every failing verdict as a debug
    bundle under ``<cache-dir>/forensics/`` — interp + compiled
    waveforms, first-divergence report, archived stimulus — and lists
    the bundle paths in the summary's ``forensics`` key (verdicts and
    cache keys are unaffected).

    ``unit_timeout`` / ``fail_fast`` flow into the scheduler's fault
    policy: a unit that hangs, crashes its worker, or raises is
    retried/quarantined per :mod:`repro.runner.faults`, landing as a
    ``poisoned`` verdict (counted in the summary's ``poisoned`` key,
    excluded from ``failures`` — it is not a divergence).
    """
    units = expand_fuzz(count, seed=seed, cycles=cycles)
    if shard is not None:
        index, total = shard
        units = [u for u in units if u.index % total == index]
    cache = make_fuzz_cache(cache_dir) if cache_dir else None
    # Fuzz shards share the cross-run kernel store too: a warm re-run
    # rebinds each design's generated kernel from disk instead of
    # re-running codegen per worker.  Scoped so the directory never
    # outlives this campaign.
    from repro.sim.compile import cache as kernel_cache

    kernel_dir = (
        os.path.join(os.fspath(cache_dir), "compiled")
        if cache_dir else None
    )

    telemetry_dir = (
        os.path.join(os.fspath(cache_dir), "telemetry")
        if telemetry and cache_dir else None
    )
    forensics_dir = (
        os.path.join(os.fspath(cache_dir), "forensics")
        if forensics_capture and cache_dir else None
    )

    verdicts = []
    bundles = []
    started = time.monotonic()
    exhausted = 0
    with kernel_cache.disk_cache(kernel_dir), \
            sink.telemetry_scope(telemetry_dir), \
            forensics.scope(forensics_dir), \
            trace.span("fuzz-campaign", cat="scheduler", count=len(units)):
        if time_budget is None:
            verdicts = run_units(units, jobs=jobs, cache=cache,
                                 executor=execute_fuzz_unit,
                                 show_progress=show_progress,
                                 unit_timeout=unit_timeout,
                                 fail_fast=fail_fast,
                                 poisoned_factory=make_poisoned_verdict)
        else:
            batch_size = max(16, jobs * 4)
            for start in range(0, len(units), batch_size):
                if time.monotonic() - started > time_budget:
                    exhausted = len(units) - start
                    break
                batch = units[start:start + batch_size]
                verdicts.extend(run_units(
                    batch, jobs=jobs, cache=cache,
                    executor=execute_fuzz_unit,
                    show_progress=show_progress,
                    unit_timeout=unit_timeout, fail_fast=fail_fast,
                    poisoned_factory=make_poisoned_verdict,
                ))

        poisoned = [v for v in verdicts if v.get("poisoned")]
        failures = [v for v in verdicts
                    if not v["ok"] and not v.get("poisoned")]
        # Parent-side capture: failing verdicts embed source+ops, so
        # bundling works identically for executed and cached verdicts.
        if forensics_dir:
            for verdict in failures:
                bundles.append(forensics.capture_fuzz_failure(verdict))

    features = {}
    for verdict in verdicts:
        for tag in verdict.get("features", ()):
            features[tag] = features.get(tag, 0) + 1
    return {
        "count": len(units),
        "run": len(verdicts),
        "skipped_by_budget": exhausted,
        "cached": cache.hits if cache else 0,
        "failures": failures,
        "poisoned": len(poisoned),
        "forensics": bundles,
        "features": dict(sorted(features.items())),
        "elapsed": time.monotonic() - started,
    }

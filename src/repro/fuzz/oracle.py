"""The fuzzing oracle: one generated design, five independent checks.

Given a design's source and a pin-level stimulus (an explicit op
list, so corpus entries replay without the generator), the oracle:

1. **printer round-trip** — ``print(parse(src))`` must hit a print
   fixpoint and re-elaborate to an identical design signature
   (signals, widths, signedness, memories, ports, process shapes);
2. **xcheck lockstep** — the design runs under the ``xcheck`` backend
   (interpreter + compiled engine comparing all architectural state
   after every settle), with code coverage collected on both sides;
3. **coverage parity** — the two sides' statement/branch/toggle maps
   must be bit-identical (the backend-invariance contract of
   :mod:`repro.cover.code`);
4. **round-trip behaviour** — the *printed* source, simulated on the
   interpreter under the same stimulus, must produce the exact
   value-change trace of the original (a printer bug that flips
   precedence or drops a statement shows up here even when the
   design signature survives);
5. **lane parity** — a 4-lane packed batch must match four scalar
   compiled simulators bit-for-bit under per-lane perturbed stimulus
   (state, time, event counts, and traces — the
   :mod:`repro.sim.compile.lanes` isolation contract).

A verdict is ``None`` (all checks passed) or a :class:`FuzzFailure`
with a stable ``kind`` — the signature the shrinker preserves while
minimizing.
"""

from dataclasses import dataclass

from repro.hdl.errors import HdlSyntaxError
from repro.hdl.parser import parse_source
from repro.hdl.printer import print_module
from repro.sim.compile.xcheck import (
    XCheckDivergence,
    XCheckSimulator,
    run_lane_parity,
)
from repro.sim.elaborate import elaborate
from repro.sim.engine import Simulator
from repro.sim.values import Value

#: Stimulus ops: ("poke", name, bits, xmask) | ("tick",) | ("settle",)
#: — a flat, JSON-serializable driving script.


@dataclass
class FuzzFailure:
    """A reproducible oracle failure."""

    kind: str
    detail: str

    def to_dict(self):
        return {"kind": self.kind, "detail": self.detail}


def design_signature(design):
    """A structural fingerprint of an elaborated design.

    Two elaborations of semantically identical source must agree on
    it: every signal's (name, width, signedness, kind), every
    memory's shape, the port map, and the multiset of process
    (kind, body-length) pairs.
    """
    processes = {}
    for process in design.processes:
        key = (process.kind, len(process.body))
        processes[key] = processes.get(key, 0) + 1
    return {
        "top": design.top_name,
        "signals": sorted(
            (s.name, s.width, bool(s.signed), s.kind)
            for s in design.signals.values()
        ),
        "memories": sorted(
            (m.name, m.width, m.lo, m.hi, bool(m.signed))
            for m in design.memories.values()
        ),
        "ports": sorted(
            (name, direction, signal.width)
            for name, (direction, signal) in design.ports.items()
        ),
        "processes": sorted(
            (kind, length, count)
            for (kind, length), count in processes.items()
        ),
    }


def gen_stimulus(inputs, stim_seed, cycles, has_clock, has_reset):
    """A deterministic random pin-level op list for a design.

    ``inputs`` is the generator's (name, width) list (clock and reset
    excluded).  The script opens with a reset pulse when the design
    has one, then per cycle re-drives a random subset of inputs —
    occasionally with all-x values, exercising x-propagation through
    every layer — and advances via ``tick`` (clocked) or ``settle``.
    """
    import random

    rng = random.Random(f"repro-fuzz-stim:{stim_seed}")
    ops = []
    step = ("tick",) if has_clock else ("settle",)
    if has_reset:
        ops.append(("poke", "rst_n", 0, 0))
        for name, width in inputs:
            ops.append(("poke", name, rng.getrandbits(width), 0))
        ops.extend([step, step])
        ops.append(("poke", "rst_n", 1, 0))
    for _ in range(cycles):
        for name, width in inputs:
            roll = rng.random()
            if roll < 0.6:
                ops.append(("poke", name, rng.getrandbits(width), 0))
            elif roll < 0.67:
                ops.append(("poke", name, 0, (1 << width) - 1))  # all-x
        ops.append(step)
    return ops


def apply_stimulus(sim, ops, on_sample=None):
    """Drive ``sim`` through an op list; ``on_sample`` (if given) is
    called after every tick/settle — the stable points where code
    coverage replays comb bodies."""
    for op in ops:
        if op[0] == "poke":
            _, name, bits, xmask = op
            width = sim.signal_width(name)
            sim.poke(name, Value(bits, width, xmask))
        elif op[0] == "tick":
            sim.tick()
            if on_sample is not None:
                on_sample()
        elif op[0] == "settle":
            sim.settle()
            sim.step_time(10)
            if on_sample is not None:
                on_sample()
        else:
            raise ValueError(f"unknown stimulus op {op[0]!r}")


def _diff_dict(a, b, label):
    """First differing key between two flat-ish dicts, for diagnostics."""
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            return (f"{label}[{key!r}]: "
                    f"{_clip(a.get(key))} != {_clip(b.get(key))}")
    return f"{label}: equal"


def _clip(value, limit=200):
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."


def run_oracle(source, ops):
    """Run every differential check; ``None`` means all passed."""
    # 1. parse + printer fixpoint + elaboration-signature stability.
    try:
        first = parse_source(source)
    except HdlSyntaxError as exc:
        return FuzzFailure("parse-error", str(exc))
    printed = "\n".join(print_module(m) for m in first.modules)
    try:
        second = parse_source(printed)
    except HdlSyntaxError as exc:
        return FuzzFailure("reparse-error",
                           f"printed source does not parse: {exc}")
    reprinted = "\n".join(print_module(m) for m in second.modules)
    if printed != reprinted:
        return FuzzFailure("print-fixpoint",
                           "print(parse(print(ast))) != print(ast)")
    try:
        original_design = elaborate(first)
        printed_design = elaborate(second)
    except Exception as exc:  # any engine failure is a finding
        return FuzzFailure("elab-error",
                           f"{type(exc).__name__}: {exc}")
    sig_a = design_signature(original_design)
    sig_b = design_signature(printed_design)
    if sig_a != sig_b:
        return FuzzFailure("elab-signature", _diff_dict(sig_a, sig_b,
                                                        "signature"))

    # 2+3. interp/compiled lockstep with code-coverage parity.
    try:
        sim = XCheckSimulator(source, trace=True, code_coverage=True)

        def sample():
            sim.ref.code_coverage.sample_stable()
            sim.dut.code_coverage.sample_stable()

        apply_stimulus(sim, ops, on_sample=sample)
    except XCheckDivergence as exc:
        return FuzzFailure("xcheck-divergence", str(exc))
    except Exception as exc:
        # Catch-all on purpose: any crash on a generated design is a
        # finding to shrink and archive (MemoryError, RecursionError,
        # a TypeError in codegen...), never a campaign abort.
        return FuzzFailure(f"run-error:{type(exc).__name__}", str(exc))
    ref_cov = sim.ref.code_coverage.finalize(sim.ref).to_dict()
    dut_cov = sim.dut.code_coverage.finalize(sim.dut).to_dict()
    if ref_cov != dut_cov:
        return FuzzFailure("coverage-parity",
                           _diff_dict(ref_cov, dut_cov, "coverage"))

    # 4. the printed source must behave identically on the reference
    # backend: bit-identical value-change traces.
    try:
        printed_sim = Simulator(printed_design, trace=True)
        apply_stimulus(printed_sim, ops)
    except Exception as exc:
        return FuzzFailure("roundtrip-run-error",
                           f"{type(exc).__name__}: {exc}")
    if printed_sim.trace != sim.ref.trace:
        return FuzzFailure(
            "roundtrip-trace",
            _diff_dict(sim.ref.trace, printed_sim.trace, "trace"),
        )

    # 5. lane parity — a 4-lane packed batch (lane 0 replaying these
    # ops, lanes 1..3 under deterministic per-lane perturbations) must
    # match four scalar compiled simulators bit-for-bit, traces and
    # event counts included.
    try:
        run_lane_parity(source, ops, lanes=4)
    except XCheckDivergence as exc:
        return FuzzFailure("lane-parity", str(exc))
    except Exception as exc:
        return FuzzFailure(f"lane-run-error:{type(exc).__name__}",
                           str(exc))
    return None


def check_design(design, cycles=24, stim_seed=None):
    """Oracle over a :class:`~repro.fuzz.generate.GeneratedDesign`.

    Returns ``(ops, failure_or_none)`` so callers (campaign,
    shrinker, corpus) share the exact stimulus."""
    seed = design.seed if stim_seed is None else stim_seed
    ops = gen_stimulus(design.inputs, seed, cycles,
                       design.has_clock, design.has_reset)
    return ops, run_oracle(design.source, ops)

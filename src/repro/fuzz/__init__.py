"""Differential RTL fuzzing.

Grammar-directed generative testing for the whole HDL/simulation
stack: :mod:`repro.fuzz.generate` emits seeded random designs over the
full supported Verilog subset, :mod:`repro.fuzz.oracle` runs each one
as a self-checking experiment (interp/compiled lockstep via the
``xcheck`` backend, printer round-trip, code-coverage parity),
:mod:`repro.fuzz.shrink` delta-debugs any failure down to a small
reproducer, and :mod:`repro.fuzz.corpus` persists minimized
reproducers under ``tests/corpus/`` where a parametrized pytest
replays them forever.

Entry points: ``python -m repro.cli fuzz`` for campaigns (content-
hashed, cache-resumable units through the shared runner scheduler),
:func:`repro.fuzz.campaign.run_fuzz` programmatically.
"""

from repro.fuzz.campaign import (
    FUZZ_SCHEMA_VERSION,
    FuzzUnit,
    execute_fuzz_unit,
    expand_fuzz,
    run_fuzz,
)
from repro.fuzz.corpus import load_corpus, replay_entry, save_reproducer
from repro.fuzz.generate import GENERATOR_VERSION, generate_design
from repro.fuzz.oracle import design_signature, gen_stimulus, run_oracle
from repro.fuzz.shrink import shrink

__all__ = [
    "FUZZ_SCHEMA_VERSION",
    "FuzzUnit",
    "GENERATOR_VERSION",
    "design_signature",
    "execute_fuzz_unit",
    "expand_fuzz",
    "gen_stimulus",
    "generate_design",
    "load_corpus",
    "replay_entry",
    "run_fuzz",
    "save_reproducer",
    "shrink",
]

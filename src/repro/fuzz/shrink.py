"""Delta-debugging reducer for failing fuzz cases.

Minimizes a ``(source, stimulus)`` pair while preserving the failure
*signature* — the oracle's ``kind`` string — so a shrunk reproducer
demonstrably exhibits the same class of bug as the original.  The
reduction loop is deterministic (ordered candidate enumeration,
greedy first-improvement) and runs to a fixpoint or budget:

- **stimulus** is ddmin'd as a flat op list (halves, then quarters,
  … then single ops);
- **module items** are dropped one at a time (declarations whose
  removal degrades a net to an implicit 1-bit wire are fine as long
  as the failure kind survives — the checker is the arbiter);
- **whole leaf modules** are dropped together with their instances;
- **statements** are simplified structurally: a block statement is
  deleted, an ``if`` collapses to one branch, a ``case`` to one arm
  body, a loop to its body;
- **expressions** collapse to an operand (binary → left/right,
  ternary → branch, concat → part, call/select → base).

Every candidate is re-printed and re-checked through the real
oracle, so the reducer can never "minimize" into a different bug
without noticing.
"""

import copy
from dataclasses import dataclass, fields
from typing import List, Tuple

from repro.hdl import ast
from repro.hdl.errors import HdlSyntaxError
from repro.hdl.parser import parse_source
from repro.hdl.printer import print_module
from repro.fuzz.oracle import run_oracle

_MAX_CHECKS = 2000


@dataclass
class ShrinkResult:
    source: str
    ops: List[Tuple]
    kind: str
    checks: int
    rounds: int


def _print_file(source_file):
    return "\n".join(print_module(m) for m in source_file.modules)


def shrink(source, ops, kind, check=None, max_checks=_MAX_CHECKS):
    """Minimize ``(source, ops)`` preserving failure ``kind``.

    ``check(source, ops)`` returns a failure object with a ``kind``
    attribute or ``None``; it defaults to the full oracle."""
    check = check or run_oracle
    state = _Shrinker(check, kind, max_checks)
    ops = state.reduce_ops(source, list(ops))
    best = source
    rounds = 0
    improved = True
    while improved and state.budget_left():
        rounds += 1
        improved = False
        smaller = state.reduce_source(best, ops)
        if smaller is not None:
            best = smaller
            improved = True
        fewer = state.reduce_ops(best, ops)
        if len(fewer) < len(ops):
            ops = fewer
            improved = True
    return ShrinkResult(source=best, ops=ops, kind=kind,
                        checks=state.checks, rounds=rounds)


class _Shrinker:
    def __init__(self, check, kind, max_checks):
        self.check = check
        self.kind = kind
        self.max_checks = max_checks
        self.checks = 0

    def budget_left(self):
        return self.checks < self.max_checks

    def still_fails(self, source, ops):
        if not self.budget_left():
            return False
        self.checks += 1
        try:
            failure = self.check(source, ops)
        except Exception:
            # A reducer must never crash on a degenerate candidate.
            return False
        return failure is not None and failure.kind == self.kind

    # -- stimulus ------------------------------------------------------------

    def reduce_ops(self, source, ops):
        """Classic ddmin over the op list."""
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and self.budget_left():
            index = 0
            while index < len(ops) and self.budget_left():
                candidate = ops[:index] + ops[index + chunk:]
                if candidate != ops and self.still_fails(source, candidate):
                    ops = candidate
                else:
                    index += chunk
            if chunk == 1:
                break
            chunk //= 2
        return ops

    # -- source --------------------------------------------------------------

    def reduce_source(self, source, ops):
        """One greedy pass over structural candidates; first smaller
        source that still fails wins (or ``None`` if none do)."""
        try:
            tree = parse_source(source)
        except HdlSyntaxError:
            return None
        for candidate in self._candidates(tree):
            text = _print_file(candidate)
            if len(text) < len(source) and self.still_fails(text, ops):
                return text
            if not self.budget_left():
                return None
        return None

    def _candidates(self, tree):
        """Yield reduced deep copies of ``tree``, most aggressive
        first (drop modules, then items, then statements, then
        expression collapses)."""
        # Drop non-top modules (the top is the last module).
        for index in range(len(tree.modules) - 1):
            clone = copy.deepcopy(tree)
            del clone.modules[index]
            yield clone
        for m_index, module in enumerate(tree.modules):
            for i_index in range(len(module.items)):
                clone = copy.deepcopy(tree)
                del clone.modules[m_index].items[i_index]
                yield clone
        for path in _stmt_paths(tree):
            yield from self._stmt_reductions(tree, path)
        for path in _expr_paths(tree):
            yield from self._expr_reductions(tree, path)

    def _stmt_reductions(self, tree, path):
        node = _resolve(tree, path)
        if isinstance(node, ast.Block):
            for index in range(len(node.statements)):
                clone = copy.deepcopy(tree)
                del _resolve(clone, path).statements[index]
                yield clone
        elif isinstance(node, ast.If):
            for repl in ("then_stmt", "else_stmt"):
                branch = getattr(node, repl)
                if branch is not None:
                    clone = copy.deepcopy(tree)
                    _replace(clone, path,
                             copy.deepcopy(branch))
                    yield clone
            if node.else_stmt is not None:
                clone = copy.deepcopy(tree)
                _resolve(clone, path).else_stmt = None
                yield clone
        elif isinstance(node, ast.Case):
            for item in node.items:
                clone = copy.deepcopy(tree)
                _replace(clone, path, copy.deepcopy(item.body))
                yield clone
            if len(node.items) > 1:
                for index in range(len(node.items)):
                    clone = copy.deepcopy(tree)
                    del _resolve(clone, path).items[index]
                    yield clone
        elif isinstance(node, (ast.For, ast.While)):
            clone = copy.deepcopy(tree)
            _replace(clone, path, copy.deepcopy(node.body))
            yield clone

    def _expr_reductions(self, tree, path):
        node = _resolve(tree, path)
        replacements = []
        if isinstance(node, ast.Binary):
            replacements = [node.left, node.right]
        elif isinstance(node, ast.Unary):
            replacements = [node.operand]
        elif isinstance(node, ast.Ternary):
            replacements = [node.then, node.otherwise, node.cond]
        elif isinstance(node, ast.Concat) and len(node.parts) > 1:
            replacements = list(node.parts)
        elif isinstance(node, ast.Repeat):
            replacements = [node.value]
        elif isinstance(node, ast.FunctionCall) and node.args:
            replacements = [node.args[0]]
        elif isinstance(node, (ast.Index, ast.PartSelect)):
            replacements = [node.base]
        for repl in replacements:
            clone = copy.deepcopy(tree)
            _replace(clone, path, copy.deepcopy(repl))
            yield clone


# -- AST paths ----------------------------------------------------------------
#
# A path is a list of (field_name, index_or_None) steps from the
# SourceFile root; it survives deep copies, which node identities
# do not.


def _child_slots(node):
    """Yield (field, index, child) for every direct child node."""
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, ast.Node):
            yield f.name, None, value
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                if isinstance(item, ast.Node):
                    yield f.name, index, item


def _walk_paths(node, path):
    yield path, node
    for field_name, index, child in _child_slots(node):
        yield from _walk_paths(child, path + [(field_name, index)])


def _stmt_paths(tree):
    return [path for path, node in _walk_paths(tree, [])
            if isinstance(node, ast.Stmt)]


def _expr_paths(tree):
    return [path for path, node in _walk_paths(tree, [])
            if isinstance(node, ast.Expr)]


def _resolve(tree, path):
    node = tree
    for field_name, index in path:
        value = getattr(node, field_name)
        node = value if index is None else value[index]
    return node


def _replace(tree, path, new_node):
    parent = _resolve(tree, path[:-1])
    field_name, index = path[-1]
    if index is None:
        setattr(parent, field_name, new_node)
    else:
        getattr(parent, field_name)[index] = new_node

"""Seeded random RTL generator.

Emits well-formed designs over the full supported grammar — nested
always blocks, case/casez/casex statements, NBA/BA mixes, part
selects, x-literals, FSMs, signed inputs/registers, memories
(multiple per design, with sync read ports, constant and
out-of-range stores, $signed-cast writes), hierarchy, gated-latch
combinational cycles (which defeat the levelizer and exercise its event-driven
fallback), and run-time part-select bounds (which the codegen cannot
prove faithful, forcing per-process demotion to the interpreter).

Every design is a pure function of its seed.  Two structural rules
keep generated designs *deterministically simulatable* so that any
cross-backend divergence the oracle sees is a real engine bug, never
an artifact of the design itself:

- **single driver** — every signal is written by exactly one process
  (multi-driver nets would make settled values depend on scheduler
  order, which differs between the worklist and levelized engines by
  design);
- **idempotent comb** — a combinational process never reads a signal
  it writes (a self-reading comb body like ``r = r + 1`` executes a
  different number of times under the two schedulers).  The two
  sanctioned exceptions are themselves idempotent: ``for``-loop
  induction variables (re-initialized on entry, so a re-evaluation
  converges) and the gated-latch cycle pair
  ``assign q = en ? d : shadow; assign shadow = q;`` (a monotone
  fixpoint from any state).

The generator does not bound itself to constructs the compiled
backend supports — demotion paths are part of the grammar on purpose
— but it never emits constructs the *interpreter* rejects (e.g.
whole-memory assignment), because those fail identically everywhere
and would only add noise.
"""

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.hdl import ast
from repro.hdl.parser import parse_based_number
from repro.hdl.printer import print_module

#: Bump whenever generated output changes for a given seed; folded
#: into fuzz-unit cache keys so stale verdicts never alias.
#: v2: signed-heavy signals (inputs/regs), multi-memory designs with
#: sync read ports, constant/out-of-range stores and signed-cast
#: writes — the newly lane-packable paths.
GENERATOR_VERSION = 2

_BINARY_OPS = (
    "+", "-", "*", "/", "%", "&", "|", "^", "~^",
    "<<", ">>", "<<<", ">>>",
    "==", "!=", "<", "<=", ">", ">=", "===", "!==",
    "&&", "||", "**",
)
_UNARY_OPS = ("~", "-", "+", "!", "&", "|", "^", "~&", "~|", "~^")


@dataclass
class GeneratedDesign:
    """One random design: canonical source plus driving metadata."""

    seed: int
    source: str
    #: (name, width) for every non-clock input port, in port order.
    inputs: List[Tuple[str, int]]
    has_clock: bool
    has_reset: bool
    #: Sorted grammar-feature tags this design exercises.
    features: List[str] = field(default_factory=list)


def _number(value, width, xmask=0):
    """A sized literal with consistent text (hex, or binary with x)."""
    mask = (1 << width) - 1
    value &= mask
    xmask &= mask
    if xmask:
        chars = []
        for i in reversed(range(width)):
            if (xmask >> i) & 1:
                chars.append("x")
            else:
                chars.append(str((value >> i) & 1))
        text = f"{width}'b{''.join(chars)}"
    else:
        text = f"{width}'h{value:x}"
    return parse_based_number(text)


def _ident(name):
    return ast.Identifier(name=name)


def _decimal(value):
    """An unsized decimal literal (declaration ranges read better)."""
    return ast.Number(value=value, width=None, text=str(value))


class _Builder:
    """Builds one random module set; all state is derived from rng."""

    def __init__(self, rng):
        self.rng = rng
        self.features = set()
        self.items = []
        self.ports = []
        #: name -> width of every readable signal (inputs + driven).
        self.readable = {}
        self.signals = {}   # name -> width (all declared)
        self.counter = 0

    def fresh(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- declarations -------------------------------------------------------

    def declare_port(self, name, direction, width, kind=None, signed=False):
        self.ports.append(ast.Port(name=name))
        self.items.append(ast.NetDecl(
            names=[name], kind=kind, direction=direction,
            range=_range(width), signed=signed,
        ))
        self.signals[name] = width

    def declare_net(self, name, width, kind="wire", signed=False):
        self.items.append(ast.NetDecl(
            names=[name], kind=kind, range=_range(width), signed=signed,
        ))
        self.signals[name] = width

    # -- expressions --------------------------------------------------------

    def read_pool(self, forbidden=()):
        pool = [
            (name, width) for name, width in sorted(self.readable.items())
            if name not in forbidden
        ]
        return pool

    def expr(self, depth, forbidden=(), want_width=None):
        """A random expression reading only allowed signals."""
        rng = self.rng
        pool = self.read_pool(forbidden)
        if depth <= 0 or not pool or rng.random() < 0.3:
            return self._leaf(pool, want_width)
        choice = rng.random()
        if choice < 0.45:
            op = rng.choice(_BINARY_OPS)
            left = self.expr(depth - 1, forbidden)
            right = self.expr(depth - 1, forbidden)
            if op == "**":
                # Bounded exponent: a small constant keeps pow cheap.
                right = _number(rng.randrange(0, 4), 3)
            return ast.Binary(op=op, left=left, right=right)
        if choice < 0.6:
            return ast.Unary(op=rng.choice(_UNARY_OPS),
                             operand=self.expr(depth - 1, forbidden))
        if choice < 0.72:
            return ast.Ternary(
                cond=self.expr(depth - 1, forbidden),
                then=self.expr(depth - 1, forbidden),
                otherwise=self.expr(depth - 1, forbidden),
            )
        if choice < 0.8:
            parts = [
                self.expr(depth - 1, forbidden)
                for _ in range(rng.randrange(2, 4))
            ]
            self.features.add("concat")
            return ast.Concat(parts=parts)
        if choice < 0.85:
            self.features.add("repeat")
            return ast.Repeat(
                count=_number(rng.randrange(1, 4), 3),
                value=self.expr(depth - 1, forbidden),
            )
        if choice < 0.95:
            return self._select(pool, forbidden)
        name = rng.choice(("$signed", "$unsigned", "$clog2"))
        self.features.add("syscall")
        return ast.FunctionCall(
            name=name, args=[self.expr(depth - 1, forbidden)]
        )

    def _leaf(self, pool, want_width=None):
        rng = self.rng
        if not pool or rng.random() < 0.35:
            width = want_width or rng.choice((1, 2, 4, 8, 12, 16))
            xmask = 0
            if rng.random() < 0.12:
                xmask = rng.getrandbits(width)
                self.features.add("x-literal")
            return _number(rng.getrandbits(width), width, xmask)
        name, _ = rng.choice(pool)
        return _ident(name)

    def _select(self, pool, forbidden):
        """An index or part select over a declared vector."""
        rng = self.rng
        vectors = [(n, w) for n, w in pool if w >= 2]
        if not vectors:
            return self._leaf(pool)
        name, width = rng.choice(vectors)
        base = _ident(name)
        kind = rng.random()
        if kind < 0.4:
            if rng.random() < 0.5:
                index = _number(rng.randrange(0, width), max(1, width - 1)
                                .bit_length())
            else:
                index = self.expr(0, forbidden)
            self.features.add("bit-select")
            return ast.Index(base=base, index=index)
        if kind < 0.75:
            msb = rng.randrange(0, width)
            lsb = rng.randrange(0, msb + 1)
            self.features.add("part-select")
            return ast.PartSelect(base=base, msb=_number(msb, 5),
                                  lsb=_number(lsb, 5), mode=":")
        mode = rng.choice(("+:", "-:"))
        sel_width = rng.randrange(1, min(4, width) + 1)
        if rng.random() < 0.5:
            start = self.expr(0, forbidden)
        else:
            start = _number(rng.randrange(0, width), 5)
        self.features.add("indexed-part-select")
        return ast.PartSelect(base=base, msb=start,
                              lsb=_number(sel_width, 3), mode=mode)

    # -- statements ---------------------------------------------------------

    def target_for(self, name, blocking_pool=()):
        """A random lvalue over an owned reg ``name``."""
        rng = self.rng
        width = self.signals[name]
        base = _ident(name)
        if width < 2 or rng.random() < 0.55:
            return base, width
        kind = rng.random()
        if kind < 0.35:
            bit = rng.randrange(0, width)
            return ast.Index(base=base, index=_number(bit, 5)), 1
        if kind < 0.7:
            msb = rng.randrange(0, width)
            lsb = rng.randrange(0, msb + 1)
            return (
                ast.PartSelect(base=base, msb=_number(msb, 5),
                               lsb=_number(lsb, 5), mode=":"),
                msb - lsb + 1,
            )
        mode = rng.choice(("+:", "-:"))
        sel_width = rng.randrange(1, min(4, width) + 1)
        if blocking_pool and rng.random() < 0.6:
            start = _ident(rng.choice(blocking_pool))
            self.features.add("runtime-part-select-store")
        else:
            start = _number(rng.randrange(0, width), 5)
        return (
            ast.PartSelect(base=base, msb=start,
                           lsb=_number(sel_width, 3), mode=mode),
            sel_width,
        )

    def assign_stmt(self, owned, blocking, forbidden, depth=2,
                    index_pool=()):
        name = self.rng.choice(owned)
        target, width = self.target_for(name, blocking_pool=index_pool)
        return ast.Assign(
            target=target,
            value=self.expr(depth, forbidden, want_width=width),
            blocking=blocking,
        )

    def stmt(self, owned, blocking, forbidden, depth, index_pool=()):
        """A random statement writing only ``owned`` regs."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.45:
            return self.assign_stmt(owned, blocking, forbidden,
                                    index_pool=index_pool)
        choice = rng.random()
        if choice < 0.35:
            self.features.add("if")
            then = self.block(owned, blocking, forbidden, depth - 1,
                              index_pool)
            else_stmt = None
            if rng.random() < 0.6:
                else_stmt = self.block(owned, blocking, forbidden,
                                       depth - 1, index_pool)
            return ast.If(cond=self.expr(2, forbidden), then_stmt=then,
                          else_stmt=else_stmt)
        if choice < 0.6:
            return self.case_stmt(owned, blocking, forbidden, depth,
                                  index_pool)
        if choice < 0.7:
            self.features.add("display")
            return ast.SystemTaskCall(
                name="$display", args=[self.expr(1, forbidden)]
            )
        if choice < 0.78:
            return ast.NullStmt()
        return self.block(owned, blocking, forbidden, depth - 1,
                          index_pool, min_stmts=2)

    def case_stmt(self, owned, blocking, forbidden, depth, index_pool=()):
        rng = self.rng
        kind = rng.choice(("case", "case", "casez", "casex"))
        self.features.add(kind)
        subject = self.expr(1, forbidden)
        subject_width = rng.choice((2, 3, 4))
        if rng.random() < 0.6:
            pool = self.read_pool(forbidden)
            vectors = [(n, w) for n, w in pool if 2 <= w <= 4]
            if vectors:
                name, subject_width = rng.choice(vectors)
                subject = _ident(name)
        items = []
        used = set()
        for _ in range(rng.randrange(1, 4)):
            labels = []
            for _ in range(rng.randrange(1, 3)):
                bits = rng.getrandbits(subject_width)
                xmask = 0
                if kind in ("casez", "casex") and rng.random() < 0.5:
                    xmask = rng.getrandbits(subject_width)
                    self.features.add("wildcard-label")
                if (bits, xmask) in used:
                    continue
                used.add((bits, xmask))
                labels.append(_number(bits, subject_width, xmask))
            if not labels:
                continue
            items.append(ast.CaseItem(
                labels=labels,
                body=self.block(owned, blocking, forbidden, depth - 1,
                                index_pool),
            ))
        if rng.random() < 0.7 or not items:
            items.append(ast.CaseItem(
                labels=[],
                body=self.block(owned, blocking, forbidden, depth - 1,
                                index_pool),
            ))
        return ast.Case(kind=kind, subject=subject, items=items)

    def block(self, owned, blocking, forbidden, depth, index_pool=(),
              min_stmts=1):
        count = self.rng.randrange(min_stmts, min_stmts + 2)
        return ast.Block(statements=[
            self.stmt(owned, blocking, forbidden, depth, index_pool)
            for _ in range(count)
        ])


def _range(width):
    if width == 1:
        return None
    return ast.Range(msb=_decimal(width - 1), lsb=_decimal(0))


def generate_design(seed, profile=None):
    """Generate one random design; a pure function of ``seed``."""
    # String seeding hashes with sha512 (stable across processes and
    # PYTHONHASHSEED values, unlike tuple seeding).
    rng = random.Random(f"repro-fuzz:{GENERATOR_VERSION}:{seed}")
    b = _Builder(rng)

    # -- ports --------------------------------------------------------------
    has_clock = rng.random() < 0.85
    has_reset = has_clock and rng.random() < 0.6
    if has_clock:
        b.declare_port("clk", "input", 1)
    if has_reset:
        b.declare_port("rst_n", "input", 1)
    inputs = []
    for _ in range(rng.randrange(2, 5)):
        name = b.fresh("in")
        width = rng.choice((1, 2, 4, 8, 8, 12, 16))
        signed = rng.random() < 0.25
        b.declare_port(name, "input", width, signed=signed)
        b.readable[name] = width
        inputs.append((name, width))
        if signed:
            b.features.add("signed-input")

    # -- internal state regs (seq-owned) ------------------------------------
    seq_regs = []
    for _ in range(rng.randrange(1, 4)):
        name = b.fresh("r")
        width = rng.choice((1, 2, 4, 8, 8, 16))
        signed = rng.random() < 0.25
        b.declare_net(name, width, kind="reg", signed=signed)
        seq_regs.append(name)
        b.readable[name] = width
        if signed:
            b.features.add("signed-reg")

    # -- optional FSM -------------------------------------------------------
    fsm = None
    if has_clock and rng.random() < 0.5:
        b.features.add("fsm")
        width = rng.choice((2, 3))
        states = list(range(min(2 ** width, rng.randrange(2, 5))))
        name = b.fresh("state")
        b.declare_net(name, width, kind="reg")
        b.readable[name] = width
        fsm = (name, width, states)

    # -- optional memories --------------------------------------------------
    memories = []
    if has_clock:
        count = 0
        if rng.random() < 0.55:
            count = 1
            if rng.random() < 0.35:
                count = 2
        for _ in range(count):
            b.features.add("memory")
            name = b.fresh("mem")
            width = rng.choice((4, 8, 16))
            depth = rng.choice((4, 6, 8))
            b.items.append(ast.NetDecl(
                names=[name], kind="reg", range=_range(width),
                array=ast.Range(msb=_decimal(0),
                                lsb=_decimal(depth - 1)),
            ))
            memories.append((name, width, depth))

    # -- sequential processes ----------------------------------------------
    if has_clock:
        _emit_seq(b, seq_regs, fsm, memories, has_reset)
    else:
        # No clock: turn the "seq" regs into comb-owned targets below.
        pass

    # -- comb always blocks -------------------------------------------------
    comb_regs = []
    for _ in range(rng.randrange(1, 3)):
        name = b.fresh("c")
        width = rng.choice((1, 2, 4, 8, 8, 16))
        signed = rng.random() < 0.2
        b.declare_net(name, width, kind="reg", signed=signed)
        comb_regs.append(name)
        if signed:
            b.features.add("signed-reg")
    if not has_clock:
        # The "seq" regs become comb-owned.  They must leave the read
        # pool for the whole comb emission: group A reading group B's
        # comb reg (and vice versa) is a comb-comb cycle that can
        # oscillate, unlike clocked regs which are stable mid-settle.
        comb_regs.extend(seq_regs)
        for name in seq_regs:
            b.readable.pop(name, None)
    _emit_comb_always(b, comb_regs)
    for name in comb_regs:
        b.readable[name] = b.signals[name]

    # -- continuous assigns -------------------------------------------------
    wires = []
    for _ in range(rng.randrange(1, 4)):
        name = b.fresh("w")
        width = rng.choice((1, 2, 4, 8, 12))
        b.declare_net(name, width, kind="wire")
        b.items.append(ast.ContinuousAssign(
            target=_ident(name), value=b.expr(rng.randrange(1, 4)),
        ))
        wires.append(name)
        b.readable[name] = width

    # -- memory async reads -------------------------------------------------
    for mem_name, mem_width, depth in memories:
        name = b.fresh("rd")
        b.declare_net(name, mem_width, kind="wire")
        addr = b.expr(1)
        b.items.append(ast.ContinuousAssign(
            target=_ident(name),
            value=ast.Index(base=_ident(mem_name), index=addr),
        ))
        b.readable[name] = mem_width
        b.features.add("memory-read")

    # -- gated-latch comb cycle (levelizer fallback) ------------------------
    if rng.random() < 0.3:
        b.features.add("comb-cycle")
        width = rng.choice((1, 4, 8))
        q, shadow = b.fresh("lq"), b.fresh("lqs")
        b.declare_net(q, width, kind="wire")
        b.declare_net(shadow, width, kind="wire")
        pool = b.read_pool()
        en = _ident(rng.choice(pool)[0]) if pool else _number(1, 1)
        data = b.expr(1)
        b.items.append(ast.ContinuousAssign(
            target=_ident(q),
            value=ast.Ternary(cond=en, then=data,
                              otherwise=_ident(shadow)),
        ))
        b.items.append(ast.ContinuousAssign(
            target=_ident(shadow), value=_ident(q),
        ))
        b.readable[q] = width

    # -- hierarchy: a pure-comb leaf instance -------------------------------
    leaf_modules = []
    if rng.random() < 0.35:
        leaf, out_widths = _make_leaf(b, rng)
        leaf_modules.append(leaf)
        conns = []
        for port in leaf.ports:
            decl = leaf.find_decl(port.name)
            if decl.direction == "input":
                conns.append(ast.PortConnection(
                    name=port.name, expr=b.expr(1)))
            else:
                out_name = b.fresh("iy")
                width = out_widths[port.name]
                b.declare_net(out_name, width, kind="wire")
                conns.append(ast.PortConnection(
                    name=port.name, expr=_ident(out_name)))
                b.readable[out_name] = width
        b.items.append(ast.Instance(
            module_name=leaf.name, name=b.fresh("u"), connections=conns,
        ))
        b.features.add("instance")

    # -- outputs ------------------------------------------------------------
    out_sources = wires + comb_regs + seq_regs
    for _ in range(rng.randrange(1, 3)):
        name = b.fresh("out")
        src = rng.choice(out_sources)
        width = b.signals[src]
        b.declare_port(name, "output", width)
        b.items.append(ast.ContinuousAssign(
            target=_ident(name), value=_ident(src),
        ))

    # -- optional initial block ---------------------------------------------
    if rng.random() < 0.35:
        b.features.add("initial")
        stmts = []
        for name in seq_regs[:1] + comb_regs[:0]:
            width = b.signals[name]
            stmts.append(ast.Assign(
                target=_ident(name),
                value=_number(rng.getrandbits(width), width),
                blocking=True,
            ))
        if rng.random() < 0.4:
            stmts.append(ast.SystemTaskCall(name="$display", args=[]))
        if stmts:
            b.items.append(ast.Initial(body=ast.Block(statements=stmts)))

    top = ast.Module(name=f"fuzz_top_{seed}", ports=b.ports, items=b.items)
    parts = [print_module(m) for m in leaf_modules] + [print_module(top)]
    return GeneratedDesign(
        seed=seed,
        source="\n".join(parts),
        inputs=inputs,
        has_clock=has_clock,
        has_reset=has_reset,
        features=sorted(b.features),
    )


def _emit_seq(b, seq_regs, fsm, memories, has_reset):
    """Sequential always blocks: counters, NBA/BA mixes, FSM, memory."""
    rng = b.rng
    b.features.add("seq")
    events = [("posedge", _ident("clk"))]
    if has_reset:
        events.append(("negedge", _ident("rst_n")))
    groups = _partition(rng, seq_regs)
    for group in groups:
        temps = []
        if rng.random() < 0.4:
            # A blocking temporary computed then consumed via NBA.
            t = b.fresh("t")
            width = rng.choice((2, 4, 8))
            b.declare_net(t, width, kind="reg")
            temps.append(t)
            b.features.add("ba-nba-mix")
        body_stmts = []
        for t in temps:
            body_stmts.append(ast.Assign(
                target=_ident(t), value=b.expr(2), blocking=True,
            ))
            b.readable[t] = b.signals[t]
        update = b.block(group, blocking=False, forbidden=(),
                         depth=rng.randrange(1, 3), min_stmts=1)
        if has_reset:
            reset = ast.Block(statements=[
                ast.Assign(target=_ident(name),
                           value=_number(0, b.signals[name]),
                           blocking=False)
                for name in group
            ])
            body_stmts.append(ast.If(
                cond=ast.Unary(op="!", operand=_ident("rst_n")),
                then_stmt=reset, else_stmt=update,
            ))
        else:
            body_stmts.append(update)
        b.items.append(ast.Always(
            sensitivity=ast.EventControl(events=list(events)),
            body=ast.Block(statements=body_stmts),
        ))
        for t in temps:
            b.readable.pop(t, None)
    for t in [n for n in b.signals if n.startswith("t")]:
        # Temps become readable once their driver exists.
        b.readable.setdefault(t, b.signals[t])

    if fsm is not None:
        name, width, states = fsm
        items = []
        for s in states:
            nxt = rng.choice(states)
            items.append(ast.CaseItem(
                labels=[_number(s, width)],
                body=ast.Block(statements=[ast.Assign(
                    target=_ident(name),
                    value=ast.Ternary(
                        cond=b.expr(1),
                        then=_number(nxt, width),
                        otherwise=_number(rng.choice(states), width),
                    ),
                    blocking=False,
                )]),
            ))
        items.append(ast.CaseItem(labels=[], body=ast.Block(statements=[
            ast.Assign(target=_ident(name), value=_number(states[0], width),
                       blocking=False)
        ])))
        transition = ast.Case(kind="case", subject=_ident(name),
                              items=items)
        if has_reset:
            body = ast.If(
                cond=ast.Unary(op="!", operand=_ident("rst_n")),
                then_stmt=ast.Block(statements=[ast.Assign(
                    target=_ident(name), value=_number(states[0], width),
                    blocking=False)]),
                else_stmt=ast.Block(statements=[transition]),
            )
        else:
            body = transition
        b.items.append(ast.Always(
            sensitivity=ast.EventControl(events=list(events)), body=body,
        ))

    for mem_name, mem_width, depth in memories:
        # One owning process per memory: every store (and the sync
        # read register) lives here, so the single-driver rule holds.
        addr_width = max(1, (depth - 1).bit_length())
        stmts = []
        for _ in range(rng.randrange(1, 3)):
            value = b.expr(1, want_width=mem_width)
            if rng.random() < 0.3:
                # A $signed cast makes the stored word carry the
                # signed flag — per-word signedness is architectural
                # state the lane planes must reproduce.
                value = ast.FunctionCall(name="$signed", args=[value])
                b.features.add("signed-memory-write")
            if rng.random() < 0.3:
                # Constant address, sometimes one past the end: a
                # dropped out-of-range store still counts an event
                # and wakes combinational readers.
                address = rng.randrange(0, depth + 1)
                index = _number(address, addr_width + 1)
                if address >= depth:
                    b.features.add("memory-oob-store")
                else:
                    b.features.add("memory-const-store")
            else:
                index = b.expr(1, want_width=addr_width)
            stmts.append(ast.Assign(
                target=ast.Index(base=_ident(mem_name), index=index),
                value=value,
                blocking=False,
            ))
        if rng.random() < 0.6:
            # Synchronous read port: NBA from a (possibly runtime)
            # address into a dedicated register.
            read_reg = b.fresh("mr")
            b.declare_net(read_reg, mem_width, kind="reg")
            stmts.append(ast.Assign(
                target=_ident(read_reg),
                value=ast.Index(base=_ident(mem_name),
                                index=b.expr(1, want_width=addr_width)),
                blocking=False,
            ))
            b.readable[read_reg] = mem_width
            b.features.add("memory-sync-read")
        b.items.append(ast.Always(
            sensitivity=ast.EventControl(events=list(events)),
            body=ast.Block(statements=stmts),
        ))
        b.features.add("memory-write")


def _emit_comb_always(b, comb_regs):
    """``always @(*)`` blocks over disjoint reg groups (idempotent:
    the body never reads what it writes, except for-loop vars)."""
    rng = b.rng
    if not comb_regs:
        return
    for group in _partition(rng, comb_regs):
        forbidden = frozenset(group)
        stmts = []
        if rng.random() < 0.3 and any(b.signals[n] >= 4 for n in group):
            stmts.append(_for_loop(b, group, forbidden))
        index_pool = ()
        if rng.random() < 0.3:
            pool = [n for n, w in b.read_pool(forbidden) if w <= 4]
            if pool:
                index_pool = (rng.choice(pool),)
        depth = rng.randrange(1, 3)
        for _ in range(rng.randrange(1, 3)):
            stmts.append(b.stmt(group, blocking=True,
                                forbidden=forbidden, depth=depth,
                                index_pool=index_pool))
        if rng.random() < 0.15:
            # Run-time ":" part-select bounds: legal for the
            # interpreter, NotCompilable for the codegen -> this
            # process demotes (per-process fallback path).
            wide = [n for n in group if b.signals[n] >= 4]
            pool = [n for n, w in b.read_pool(forbidden) if w <= 3]
            if wide and pool:
                name = rng.choice(wide)
                ix = _ident(rng.choice(pool))
                stmts.append(ast.Assign(
                    target=ast.PartSelect(
                        base=_ident(name),
                        msb=ast.Binary(op="+", left=ix,
                                       right=_number(1, 2)),
                        lsb=ix, mode=":",
                    ),
                    value=b.expr(1, forbidden),
                    blocking=True,
                ))
                b.features.add("demoted-process")
        b.items.append(ast.Always(
            sensitivity=ast.EventControl(star=True),
            body=ast.Block(statements=stmts),
        ))
        b.features.add("comb-always")


def _for_loop(b, group, forbidden):
    """A bounded for loop writing successive bits of an owned reg."""
    rng = b.rng
    wide = [n for n in group if b.signals[n] >= 4]
    name = rng.choice(wide)
    width = b.signals[name]
    ivar = b.fresh("i")
    b.declare_net(ivar, 32, kind="integer", signed=True)
    bound = rng.randrange(2, min(width, 6) + 1)
    body = ast.Block(statements=[ast.Assign(
        target=ast.Index(base=_ident(name), index=_ident(ivar)),
        value=b.expr(1, forbidden),
        blocking=True,
    )])
    b.features.add("for")
    return ast.For(
        init=ast.Assign(target=_ident(ivar), value=_number(0, 4),
                        blocking=True),
        cond=ast.Binary(op="<", left=_ident(ivar),
                        right=_number(bound, 4)),
        step=ast.Assign(target=_ident(ivar),
                        value=ast.Binary(op="+", left=_ident(ivar),
                                         right=_number(1, 2)),
                        blocking=True),
        body=body,
    )


def _make_leaf(b, rng):
    """A small pure-comb leaf module (its own namespace)."""
    index = b.counter
    name = f"fuzz_leaf_{index}"
    ports = []
    items = []
    in_names = []
    for k in range(rng.randrange(1, 3)):
        pname = f"a{k}"
        width = rng.choice((1, 4, 8))
        ports.append(ast.Port(name=pname))
        items.append(ast.NetDecl(names=[pname], direction="input",
                                 range=_range(width)))
        in_names.append((pname, width))
    out_widths = {}
    leaf_rng_pool = [(n, w) for n, w in in_names]
    for k in range(rng.randrange(1, 3)):
        pname = f"y{k}"
        width = rng.choice((1, 4, 8))
        ports.append(ast.Port(name=pname))
        items.append(ast.NetDecl(names=[pname], direction="output",
                                 range=_range(width)))
        out_widths[pname] = width
        # Simple expression over the leaf inputs only.
        left = _ident(rng.choice(leaf_rng_pool)[0])
        right = _ident(rng.choice(leaf_rng_pool)[0])
        op = rng.choice(("+", "^", "&", "|", "-"))
        items.append(ast.ContinuousAssign(
            target=_ident(pname),
            value=ast.Binary(op=op, left=left, right=right),
        ))
    module = ast.Module(name=name, ports=ports, items=items)
    return module, out_widths


def _partition(rng, names):
    """Split ``names`` into 1..N non-empty driver groups."""
    names = list(names)
    if not names:
        return []
    rng.shuffle(names)
    groups = []
    while names:
        take = rng.randrange(1, len(names) + 1)
        groups.append(names[:take])
        names = names[take:]
    return groups

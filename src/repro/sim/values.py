"""Four-state bit-vector values.

A :class:`Value` is an immutable ``(bits, xmask, width, signed)`` tuple.
Bits whose ``xmask`` bit is set are unknown (x/z); the corresponding
``bits`` bit is ignored.  Unknown-bit propagation follows Verilog
semantics where cheap (bitwise AND/OR can mask unknowns) and is
pessimistic (all-x result) for arithmetic with any unknown operand.
"""


def _mask(width):
    return (1 << width) - 1


class Value:
    """An immutable four-state bit vector."""

    __slots__ = ("bits", "xmask", "width", "signed")

    def __init__(self, bits=0, width=1, xmask=0, signed=False):
        if width < 1:
            width = 1
        m = _mask(width)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "xmask", xmask & m)
        object.__setattr__(self, "bits", bits & m & ~(xmask & m))
        object.__setattr__(self, "signed", signed)

    def __setattr__(self, name, value):
        raise AttributeError("Value is immutable")

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def from_int(value, width=32, signed=False):
        return Value(bits=value, width=width, signed=signed)

    @staticmethod
    def all_x(width):
        return Value(bits=0, width=width, xmask=_mask(width))

    # -- predicates ----------------------------------------------------------

    @property
    def has_x(self):
        return self.xmask != 0

    @property
    def is_all_x(self):
        return self.xmask == _mask(self.width)

    def is_truthy(self):
        """Verilog truthiness: any definite 1 bit → True; all-0 known →
        False; otherwise unknown (returns None)."""
        if self.bits != 0:
            return True
        if self.xmask == 0:
            return False
        return None

    # -- conversions ---------------------------------------------------------

    def to_int(self):
        """Unsigned integer interpretation; x bits read as 0."""
        return self.bits

    def to_signed_int(self):
        """Two's-complement interpretation of the stored bits."""
        if self.bits & (1 << (self.width - 1)):
            return self.bits - (1 << self.width)
        return self.bits

    def as_arith(self):
        """Integer used in arithmetic: signed iff the value is signed."""
        return self.to_signed_int() if self.signed else self.bits

    def resize(self, width, signed=None):
        """Zero/sign-extend or truncate to ``width``."""
        if signed is None:
            signed = self.signed
        if width == self.width:
            if signed == self.signed:
                return self
            return Value(self.bits, width, self.xmask, signed)
        if width < self.width:
            return Value(self.bits, width, self.xmask, signed)
        # extension
        bits = self.bits
        xmask = self.xmask
        if self.width > 0:
            sign_bit = 1 << (self.width - 1)
            if self.signed and (self.xmask & sign_bit):
                xmask |= _mask(width) ^ _mask(self.width)
            elif self.signed and (self.bits & sign_bit):
                bits |= _mask(width) ^ _mask(self.width)
        return Value(bits, width, xmask, signed)

    # -- structural operations -----------------------------------------------

    def select_bit(self, index):
        """Single-bit select; out-of-range or x index → x."""
        if index is None or index < 0 or index >= self.width:
            return Value.all_x(1)
        return Value((self.bits >> index) & 1, 1, (self.xmask >> index) & 1)

    def select_range(self, msb, lsb):
        """Part select [msb:lsb]; out-of-range bits read as x."""
        if msb is None or lsb is None or msb < lsb:
            return Value.all_x(1 if msb is None or lsb is None else msb - lsb + 1)
        width = msb - lsb + 1
        if lsb >= self.width:
            return Value.all_x(width)
        bits = (self.bits >> max(lsb, 0)) if lsb >= 0 else (self.bits << -lsb)
        xm = (self.xmask >> max(lsb, 0)) if lsb >= 0 else (self.xmask << -lsb)
        result = Value(bits, width, xm)
        if msb >= self.width:
            extra = msb - self.width + 1
            hi_mask = _mask(width) ^ _mask(width - extra)
            result = Value(result.bits, width, result.xmask | hi_mask)
        return result

    def concat(self, other):
        """``{self, other}`` — self occupies the high bits."""
        width = self.width + other.width
        bits = (self.bits << other.width) | other.bits
        xmask = (self.xmask << other.width) | other.xmask
        return Value(bits, width, xmask)

    def replace_bits(self, lsb, replacement):
        """Return a copy with ``replacement`` written at offset ``lsb``."""
        if lsb >= self.width or lsb + replacement.width <= 0:
            return self
        field_mask = _mask(replacement.width) << lsb if lsb >= 0 else (
            _mask(replacement.width) >> -lsb
        )
        field_mask &= _mask(self.width)
        rep_bits = (replacement.bits << lsb) if lsb >= 0 else (
            replacement.bits >> -lsb
        )
        rep_x = (replacement.xmask << lsb) if lsb >= 0 else (
            replacement.xmask >> -lsb
        )
        bits = (self.bits & ~field_mask) | (rep_bits & field_mask)
        xmask = (self.xmask & ~field_mask) | (rep_x & field_mask)
        return Value(bits, self.width, xmask, self.signed)

    # -- arithmetic / logic ---------------------------------------------------

    def _binary_widths(self, other):
        return max(self.width, other.width)

    def _pessimistic(self, other, width):
        if self.has_x or other.has_x:
            return Value.all_x(width)
        return None

    def add(self, other, width=None):
        width = width or self._binary_widths(other)
        bad = self._pessimistic(other, width)
        if bad is not None:
            return bad
        a = self.resize(width)
        b = other.resize(width)
        return Value(a.as_arith() + b.as_arith(), width,
                     signed=self.signed and other.signed)

    def sub(self, other, width=None):
        width = width or self._binary_widths(other)
        bad = self._pessimistic(other, width)
        if bad is not None:
            return bad
        a = self.resize(width)
        b = other.resize(width)
        return Value(a.as_arith() - b.as_arith(), width,
                     signed=self.signed and other.signed)

    def mul(self, other, width=None):
        width = width or self._binary_widths(other)
        bad = self._pessimistic(other, width)
        if bad is not None:
            return bad
        a = self.resize(width)
        b = other.resize(width)
        return Value(a.as_arith() * b.as_arith(), width,
                     signed=self.signed and other.signed)

    def div(self, other, width=None):
        width = width or self._binary_widths(other)
        bad = self._pessimistic(other, width)
        if bad is not None:
            return bad
        if other.bits == 0:
            return Value.all_x(width)
        a = self.resize(width)
        b = other.resize(width)
        if self.signed and other.signed:
            quotient = abs(a.as_arith()) // abs(b.as_arith())
            if (a.as_arith() < 0) != (b.as_arith() < 0):
                quotient = -quotient
            return Value(quotient, width, signed=True)
        return Value(a.bits // b.bits, width)

    def mod(self, other, width=None):
        width = width or self._binary_widths(other)
        bad = self._pessimistic(other, width)
        if bad is not None:
            return bad
        if other.bits == 0:
            return Value.all_x(width)
        a = self.resize(width)
        b = other.resize(width)
        if self.signed and other.signed:
            remainder = abs(a.as_arith()) % abs(b.as_arith())
            if a.as_arith() < 0:
                remainder = -remainder
            return Value(remainder, width, signed=True)
        return Value(a.bits % b.bits, width)

    def power(self, other, width=None):
        width = width or self.width
        bad = self._pessimistic(other, width)
        if bad is not None:
            return bad
        exponent = other.bits
        if exponent > 64:  # avoid pathological blowup; result is modular
            exponent = exponent % 64 + 64
        return Value(pow(self.bits, exponent, 1 << width), width)

    def bit_and(self, other, width=None):
        width = width or self._binary_widths(other)
        a = self.resize(width)
        b = other.resize(width)
        # 0 & x == 0 is known; only x & 1 / x & x stays unknown.
        known_zero = (~a.bits & ~a.xmask) | (~b.bits & ~b.xmask)
        xmask = (a.xmask | b.xmask) & ~known_zero
        return Value(a.bits & b.bits, width, xmask & _mask(width))

    def bit_or(self, other, width=None):
        width = width or self._binary_widths(other)
        a = self.resize(width)
        b = other.resize(width)
        known_one = (a.bits & ~a.xmask) | (b.bits & ~b.xmask)
        xmask = (a.xmask | b.xmask) & ~known_one
        return Value((a.bits | b.bits) & ~xmask, width, xmask & _mask(width))

    def bit_xor(self, other, width=None):
        width = width or self._binary_widths(other)
        a = self.resize(width)
        b = other.resize(width)
        xmask = a.xmask | b.xmask
        return Value(a.bits ^ b.bits, width, xmask)

    def bit_not(self):
        return Value(~self.bits, self.width, self.xmask)

    def shl(self, amount, width=None):
        width = width or self.width
        if amount.has_x:
            return Value.all_x(width)
        a = self.resize(width)
        n = amount.bits
        if n >= width:
            # Every bit is shifted out; clamping also stops a huge
            # runtime amount (e.g. a 32-bit operand) from allocating
            # a multi-gigabit intermediate integer.
            return Value(0, width)
        return Value(a.bits << n, width, (a.xmask << n) & _mask(width))

    def shr(self, amount, width=None, arithmetic=False):
        width = width or self.width
        if amount.has_x:
            return Value.all_x(width)
        a = self.resize(width)
        # Python right-shifts by huge amounts cheaply, but clamping
        # keeps the two shift directions symmetric.
        n = min(amount.bits, width)
        if arithmetic and self.signed:
            return Value(a.to_signed_int() >> n, width, a.xmask >> n,
                         signed=True)
        return Value(a.bits >> n, width, a.xmask >> n)

    # -- comparisons (return 1-bit values) ------------------------------------

    def _compare(self, other, op):
        if self.has_x or other.has_x:
            return Value.all_x(1)
        width = self._binary_widths(other)
        signed = self.signed and other.signed
        a = self.resize(width, signed).as_arith()
        b = other.resize(width, signed).as_arith()
        result = {
            "==": a == b, "!=": a != b,
            "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
        }[op]
        return Value(1 if result else 0, 1)

    def eq(self, other):
        return self._compare(other, "==")

    def ne(self, other):
        return self._compare(other, "!=")

    def lt(self, other):
        return self._compare(other, "<")

    def le(self, other):
        return self._compare(other, "<=")

    def gt(self, other):
        return self._compare(other, ">")

    def ge(self, other):
        return self._compare(other, ">=")

    def case_eq(self, other):
        """``===``: x bits must match exactly."""
        width = self._binary_widths(other)
        a = self.resize(width)
        b = other.resize(width)
        same = a.bits == b.bits and a.xmask == b.xmask
        return Value(1 if same else 0, 1)

    # -- reductions ------------------------------------------------------------

    def reduce_and(self):
        if (self.bits | self.xmask) != _mask(self.width):
            return Value(0, 1)  # a known 0 bit exists
        if self.xmask:
            return Value.all_x(1)
        return Value(1, 1)

    def reduce_or(self):
        if self.bits & ~self.xmask:
            return Value(1, 1)
        if self.xmask:
            return Value.all_x(1)
        return Value(0, 1)

    def reduce_xor(self):
        if self.xmask:
            return Value.all_x(1)
        return Value(bin(self.bits).count("1") & 1, 1)

    # -- dunder / misc -----------------------------------------------------------

    def __eq__(self, other):
        """Structural equality (same bits, xmask, width)."""
        if isinstance(other, int):
            return self.xmask == 0 and self.bits == other
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self.bits == other.bits
            and self.xmask == other.xmask
            and self.width == other.width
        )

    def __hash__(self):
        return hash((self.bits, self.xmask, self.width))

    def __repr__(self):
        if self.xmask == 0:
            return f"Value({self.width}'d{self.bits})"
        return f"Value({self.width}'b{self.to_verilog_bits()})"

    def to_verilog_bits(self):
        """Binary string with x for unknown bits, MSB first."""
        chars = []
        for i in reversed(range(self.width)):
            if (self.xmask >> i) & 1:
                chars.append("x")
            else:
                chars.append(str((self.bits >> i) & 1))
        return "".join(chars)

    def to_display(self):
        """Hex-ish rendering used in UVM logs."""
        if self.xmask == 0:
            digits = (self.width + 3) // 4
            return f"{self.width}'h{self.bits:0{digits}x}"
        return f"{self.width}'b{self.to_verilog_bits()}"


def X(width=1):
    """Shorthand for an all-unknown value."""
    return Value.all_x(width)

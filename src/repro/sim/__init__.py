"""Event-driven 4-state Verilog simulator.

This package plays the role of VCS / Icarus / ModelSim in the paper's
setup: it elaborates a parsed design into signals and processes, then
simulates it with delta cycles and a non-blocking-assignment region.
Every signal keeps a value-change trace, which is the waveform the
localization engine (Algorithm 2) slices over.
"""

from repro.sim.values import Value, X
from repro.sim.elaborate import Design, elaborate
from repro.sim.engine import Simulator, SimulationError
from repro.sim.backend import (
    BACKENDS,
    backend,
    get_default_backend,
    make_simulator,
    set_default_backend,
    use_backend,
)
from repro.sim.compile import (
    CompiledSimulator,
    XCheckDivergence,
    XCheckSimulator,
)

__all__ = [
    "Value",
    "X",
    "Design",
    "elaborate",
    "Simulator",
    "SimulationError",
    "BACKENDS",
    "backend",
    "get_default_backend",
    "make_simulator",
    "set_default_backend",
    "use_backend",
    "CompiledSimulator",
    "XCheckDivergence",
    "XCheckSimulator",
]

"""Expression evaluation over four-state values.

Implements Verilog's context-determined width rules: the width of an
arithmetic/bitwise expression is the maximum of its operands' self-
determined widths and the assignment context, and that width is pushed
down into the operands before evaluation (so ``{co, sum} = a + b`` keeps
the carry).  Comparisons, reductions and logical operators are self-
determined one-bit results.
"""

from repro.hdl import ast
from repro.sim.values import Value

_CONTEXT_OPS = frozenset(["+", "-", "*", "/", "%", "&", "|", "^", "^~", "~^"])
_COMPARE_OPS = frozenset(["==", "!=", "<", "<=", ">", ">=", "===", "!=="])
_LOGICAL_OPS = frozenset(["&&", "||"])
_SHIFT_OPS = frozenset(["<<", ">>", "<<<", ">>>"])


class EvalError(Exception):
    """Raised when an expression cannot be evaluated."""

    def __init__(self, message, location=None):
        self.location = location
        super().__init__(message)


class Memory(object):
    """An unpacked array (``reg [W-1:0] mem [LO:HI]``)."""

    __slots__ = ("name", "width", "lo", "hi", "words", "signed",
                 "comb_listeners")

    def __init__(self, name, width, lo, hi, signed=False):
        self.name = name
        self.width = width
        self.lo = min(lo, hi)
        self.hi = max(lo, hi)
        self.signed = signed
        self.words = [Value.all_x(width) for _ in range(self.hi - self.lo + 1)]
        self.comb_listeners = []

    @property
    def depth(self):
        return self.hi - self.lo + 1

    def read(self, address):
        if address is None or address < self.lo or address > self.hi:
            return Value.all_x(self.width)
        return self.words[address - self.lo]

    def write(self, address, value):
        if address is None or address < self.lo or address > self.hi:
            return
        if value.width != self.width:
            value = value.resize(self.width)
        self.words[address - self.lo] = value


class Evaluator:
    """Evaluates expressions against a resolver.

    ``resolver`` must provide:

    - ``read(name) -> Value`` — current value of a signal or parameter;
    - ``read_memory(name) -> Memory or None``;
    - ``width_of(name) -> int`` — declared width (1 for implicit nets);
    - ``signed_of(name) -> bool``.

    ``on_read`` (optional) is called with every signal name the
    evaluation touches — the dynamic slicer uses this to find the input
    values feeding a mismatch.
    """

    def __init__(self, resolver, on_read=None):
        self.resolver = resolver
        self.on_read = on_read

    # -- widths ---------------------------------------------------------------

    def self_width(self, expr):
        """Self-determined bit width of ``expr`` (IEEE 1364 table 5-22)."""
        if isinstance(expr, ast.Number):
            return expr.width or 32
        if isinstance(expr, ast.Identifier):
            return self.resolver.width_of(expr.name)
        if isinstance(expr, ast.Unary):
            if expr.op in ("&", "|", "^", "~&", "~|", "~^", "^~", "!"):
                return 1
            return self.self_width(expr.operand)
        if isinstance(expr, ast.Binary):
            if expr.op in _COMPARE_OPS or expr.op in _LOGICAL_OPS:
                return 1
            if expr.op in _SHIFT_OPS or expr.op == "**":
                return self.self_width(expr.left)
            return max(self.self_width(expr.left), self.self_width(expr.right))
        if isinstance(expr, ast.Ternary):
            return max(self.self_width(expr.then), self.self_width(expr.otherwise))
        if isinstance(expr, ast.Concat):
            return sum(self.self_width(p) for p in expr.parts)
        if isinstance(expr, ast.Repeat):
            count = self.const_int(expr.count)
            return (count or 1) * self.self_width(expr.value)
        if isinstance(expr, ast.Index):
            base = expr.base
            if isinstance(base, ast.Identifier):
                memory = self.resolver.read_memory(base.name)
                if memory is not None:
                    return memory.width
            return 1
        if isinstance(expr, ast.PartSelect):
            if expr.mode == ":":
                msb = self.const_int(expr.msb)
                lsb = self.const_int(expr.lsb)
                if msb is None or lsb is None:
                    return 1
                return abs(msb - lsb) + 1
            width = self.const_int(expr.lsb)
            return width or 1
        if isinstance(expr, ast.FunctionCall):
            if expr.name in ("$signed", "$unsigned") and expr.args:
                return self.self_width(expr.args[0])
            return 32
        raise EvalError(
            f"cannot size expression {type(expr).__name__}",
            getattr(expr, "location", None),
        )

    def const_int(self, expr):
        """Evaluate a constant expression to an int (None if x)."""
        value = self.eval(expr)
        if value.has_x:
            return None
        return value.to_int()

    # -- evaluation -------------------------------------------------------------

    def eval(self, expr, ctx_width=None):
        """Evaluate ``expr``; ``ctx_width`` is the assignment context."""
        if isinstance(expr, ast.Number):
            width = expr.width or 32
            if ctx_width:
                width = max(width, ctx_width)
            return Value(expr.value, width, expr.xmask, expr.signed)

        if isinstance(expr, ast.Identifier):
            if self.on_read is not None:
                self.on_read(expr.name)
            value = self.resolver.read(expr.name)
            if ctx_width and ctx_width > value.width:
                return value.resize(ctx_width)
            return value

        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, ctx_width)

        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, ctx_width)

        if isinstance(expr, ast.Ternary):
            cond = self.eval(expr.cond)
            truth = cond.is_truthy()
            width = max(
                self.self_width(expr.then),
                self.self_width(expr.otherwise),
                ctx_width or 0,
            )
            if truth is None:
                # Unknown select: evaluate both, merge agreement bit-wise.
                a = self.eval(expr.then, width)
                b = self.eval(expr.otherwise, width)
                agree = ~(a.bits ^ b.bits) & ~(a.xmask | b.xmask)
                return Value(a.bits, width, ~agree)
            branch = expr.then if truth else expr.otherwise
            return self.eval(branch, width)

        if isinstance(expr, ast.Concat):
            result = None
            for part in expr.parts:
                value = self.eval(part)
                value = value.resize(self.self_width(part))
                result = value if result is None else result.concat(value)
            if result is None:
                raise EvalError("empty concatenation", expr.location)
            if ctx_width and ctx_width > result.width:
                return result.resize(ctx_width)
            return result

        if isinstance(expr, ast.Repeat):
            count = self.const_int(expr.count)
            if count is None or count < 0:
                raise EvalError("replication count is unknown", expr.location)
            unit = self.eval(expr.value).resize(self.self_width(expr.value))
            result = Value(0, max(1, count * unit.width))
            out = None
            for _ in range(count):
                out = unit if out is None else out.concat(unit)
            result = out if out is not None else Value(0, 1)
            if ctx_width and ctx_width > result.width:
                return result.resize(ctx_width)
            return result

        if isinstance(expr, ast.Index):
            return self._eval_index(expr, ctx_width)

        if isinstance(expr, ast.PartSelect):
            return self._eval_part_select(expr, ctx_width)

        if isinstance(expr, ast.FunctionCall):
            return self._eval_call(expr, ctx_width)

        raise EvalError(
            f"cannot evaluate {type(expr).__name__}",
            getattr(expr, "location", None),
        )

    def _eval_unary(self, expr, ctx_width):
        op = expr.op
        if op in ("&", "~&"):
            value = self.eval(expr.operand).reduce_and()
            return value.bit_not().resize(1) if op == "~&" else value
        if op in ("|", "~|"):
            value = self.eval(expr.operand).reduce_or()
            return value.bit_not().resize(1) if op == "~|" else value
        if op in ("^", "~^", "^~"):
            value = self.eval(expr.operand).reduce_xor()
            return value.bit_not().resize(1) if op != "^" else value
        if op == "!":
            truth = self.eval(expr.operand).is_truthy()
            if truth is None:
                return Value.all_x(1)
            return Value(0 if truth else 1, 1)
        width = max(self.self_width(expr.operand), ctx_width or 0)
        operand = self.eval(expr.operand, width)
        if op == "~":
            return operand.bit_not()
        if op == "-":
            return Value(0, width).sub(operand, width)
        if op == "+":
            return operand
        raise EvalError(f"unknown unary operator {op!r}", expr.location)

    def _eval_binary(self, expr, ctx_width):
        op = expr.op
        if op in _LOGICAL_OPS:
            left = self.eval(expr.left).is_truthy()
            right = self.eval(expr.right).is_truthy()
            if op == "&&":
                if left is False or right is False:
                    return Value(0, 1)
                if left is None or right is None:
                    return Value.all_x(1)
                return Value(1, 1)
            if left is True or right is True:
                return Value(1, 1)
            if left is None or right is None:
                return Value.all_x(1)
            return Value(0, 1)

        if op in _COMPARE_OPS:
            width = max(self.self_width(expr.left), self.self_width(expr.right))
            left = self.eval(expr.left, width)
            right = self.eval(expr.right, width)
            if op == "===":
                return left.case_eq(right)
            if op == "!==":
                return left.case_eq(right).bit_not().resize(1)
            return {
                "==": left.eq, "!=": left.ne, "<": left.lt,
                "<=": left.le, ">": left.gt, ">=": left.ge,
            }[op](right)

        if op in _SHIFT_OPS:
            width = max(self.self_width(expr.left), ctx_width or 0)
            left = self.eval(expr.left, width)
            amount = self.eval(expr.right)
            if op == "<<" or op == "<<<":
                return left.shl(amount, width)
            return left.shr(amount, width, arithmetic=(op == ">>>"))

        if op == "**":
            width = max(self.self_width(expr.left), ctx_width or 0)
            left = self.eval(expr.left, width)
            right = self.eval(expr.right)
            return left.power(right, width)

        if op in _CONTEXT_OPS:
            width = max(
                self.self_width(expr.left),
                self.self_width(expr.right),
                ctx_width or 0,
            )
            left = self.eval(expr.left, width)
            right = self.eval(expr.right, width)
            method = {
                "+": left.add, "-": left.sub, "*": left.mul,
                "/": left.div, "%": left.mod, "&": left.bit_and,
                "|": left.bit_or, "^": left.bit_xor,
                "^~": None, "~^": None,
            }[op]
            if method is None:
                return left.bit_xor(right, width).bit_not()
            return method(right, width)

        raise EvalError(f"unknown binary operator {op!r}", expr.location)

    def _eval_index(self, expr, ctx_width):
        base = expr.base
        index = self.const_or_runtime_int(expr.index)
        if isinstance(base, ast.Identifier):
            memory = self.resolver.read_memory(base.name)
            if memory is not None:
                if self.on_read is not None:
                    self.on_read(base.name)
                word = memory.read(index)
                if ctx_width and ctx_width > word.width:
                    return word.resize(ctx_width)
                return word
        value = self.eval(base)
        result = value.select_bit(index)
        if ctx_width and ctx_width > result.width:
            return result.resize(ctx_width)
        return result

    def _eval_part_select(self, expr, ctx_width):
        base_value = self.eval(expr.base)
        result = None
        if expr.mode == ":":
            msb = self.const_or_runtime_int(expr.msb)
            lsb = self.const_or_runtime_int(expr.lsb)
        elif expr.mode == "+:":
            start = self.const_or_runtime_int(expr.msb)
            width = self.const_or_runtime_int(expr.lsb) or 1
            if start is None:
                # An x base index reads as all-x at the select's own
                # width; the context extension below must still apply
                # (the compiled backend extends uniformly).
                result = Value.all_x(width)
            else:
                lsb, msb = start, start + width - 1
        else:  # "-:"
            start = self.const_or_runtime_int(expr.msb)
            width = self.const_or_runtime_int(expr.lsb) or 1
            if start is None:
                result = Value.all_x(width)
            else:
                msb, lsb = start, start - width + 1
        if result is None:
            result = base_value.select_range(msb, lsb)
        if ctx_width and ctx_width > result.width:
            return result.resize(ctx_width)
        return result

    def _eval_call(self, expr, ctx_width):
        if expr.name == "$signed" and expr.args:
            # Apply signedness at the operand's self-determined width,
            # THEN extend to context (so the sign bit is the operand's).
            value = self.eval(expr.args[0])
            value = Value(value.bits, value.width, value.xmask, signed=True)
            if ctx_width and ctx_width > value.width:
                value = value.resize(ctx_width)
            return value
        if expr.name == "$unsigned" and expr.args:
            value = self.eval(expr.args[0])
            value = Value(value.bits, value.width, value.xmask, signed=False)
            if ctx_width and ctx_width > value.width:
                value = value.resize(ctx_width)
            return value
        if expr.name == "$clog2" and expr.args:
            operand = self.const_int(expr.args[0])
            if operand is None:
                return Value.all_x(32)
            result = 0
            while (1 << result) < operand:
                result += 1
            return Value(result, 32)
        if expr.name in ("$time", "$stime"):
            return Value(getattr(self.resolver, "time", 0), 64)
        if expr.name == "$random":
            return Value(getattr(self.resolver, "random_value", 0), 32)
        raise EvalError(f"unsupported function {expr.name}", expr.location)

    def const_or_runtime_int(self, expr):
        """Evaluate an index expression to a plain int (None if x)."""
        value = self.eval(expr)
        if value.has_x:
            return None
        return value.to_int()


class ConstResolver:
    """Resolver over a plain dict of parameter name → :class:`Value`."""

    def __init__(self, params=None):
        self.params = dict(params or {})

    def read(self, name):
        if name in self.params:
            return self.params[name]
        raise EvalError(f"identifier '{name}' is not a constant")

    def read_memory(self, name):
        return None

    def width_of(self, name):
        if name in self.params:
            return self.params[name].width
        raise EvalError(f"identifier '{name}' is not a constant")

    def signed_of(self, name):
        if name in self.params:
            return self.params[name].signed
        return False


def const_eval(expr, params=None):
    """Evaluate a constant expression with optional parameter bindings."""
    return Evaluator(ConstResolver(params)).eval(expr)

"""Levelization: topologically order combinational processes.

The event-driven engine settles combinational logic with a worklist
fixpoint — every write re-schedules listeners until quiescence, which
re-evaluates glitchy fan-in cones many times per delta.  When the comb
process dependency graph is acyclic (true for every synthesizable
design without combinational loops), a topological order lets
``settle()`` run one linear sweep instead: each process executes at
most once per wave, after everything it reads has been produced.

The graph has an edge ``P -> Q`` when ``P`` may write a signal (or
memory) that ``Q`` is combinationally sensitive to.  Write sets are
extracted statically from assignment targets; sensitivity comes from
the elaborated ``comb_listeners`` lists (the exact wake-up paths the
event engine uses, so levelized execution can never under-trigger).
Self-edges are excluded: a process never re-triggers from its own
writes (matching ``@(*)`` event-control semantics in the engine).

If any write target cannot be resolved statically, or the graph is
cyclic, :func:`levelize` returns ``None`` and the compiled engine
falls back to event-driven scheduling for the whole comb set — the
conservative choice that keeps scheduling bit-compatible with the
interpreter on combinational loops.
"""

from collections import deque

from repro.hdl import ast
from repro.sim.elaborate import Signal
from repro.sim.eval import Memory


def _resolve_target_entry(scope, name):
    """Resolve an assignment-target name the way the executor does."""
    lookup = getattr(scope, "lookup_target", None)
    entry = lookup(name) if lookup else scope.lookup(name)
    if entry is None:
        if hasattr(scope, "declare_implicit"):
            entry = scope.declare_implicit(name)
        else:
            entry = scope.write_scope.declare_implicit(name)
    return entry


def write_set(process):
    """Statically enumerate the signals/memories ``process`` may write.

    Returns ``(signals, memories)`` or ``None`` when a target cannot be
    resolved (the caller must then treat the process as writing
    anything, i.e. give up on levelization)."""
    signals, memories = [], []
    seen = set()

    def note(entry):
        if id(entry) in seen:
            return True
        seen.add(id(entry))
        if isinstance(entry, Signal):
            signals.append(entry)
        elif isinstance(entry, Memory):
            memories.append(entry)
        return True

    def collect(target):
        if isinstance(target, ast.Identifier):
            return note(_resolve_target_entry(process.scope, target.name))
        if isinstance(target, (ast.Index, ast.PartSelect)):
            if isinstance(target.base, ast.Identifier):
                return note(
                    _resolve_target_entry(process.scope, target.base.name)
                )
            return False
        if isinstance(target, ast.Concat):
            return all(collect(part) for part in target.parts)
        return False

    for stmt in process.body:
        for node in stmt.walk():
            if isinstance(node, ast.Assign) and node.target is not None:
                if not collect(node.target):
                    return None
    return signals, memories


def levelize(design):
    """Topological order of the design's comb processes, or ``None``.

    ``None`` means levelization is unsafe (unresolvable write target)
    or impossible (a combinational cycle); the caller falls back to
    event-driven scheduling."""
    comb = [p for p in design.processes if p.kind == "comb"]
    if not comb:
        return []
    index_of = {id(p): i for i, p in enumerate(comb)}
    successors = [set() for _ in comb]
    indegree = [0] * len(comb)

    for i, process in enumerate(comb):
        sets = write_set(process)
        if sets is None:
            return None
        signals, memories = sets
        for entry in signals + memories:
            for listener in entry.comb_listeners:
                j = index_of.get(id(listener))
                if j is None or j == i:
                    continue  # seq/initial listener or self-edge
                if j not in successors[i]:
                    successors[i].add(j)
                    indegree[j] += 1

    queue = deque(i for i in range(len(comb)) if indegree[i] == 0)
    order = []
    while queue:
        i = queue.popleft()
        order.append(comb[i])
        for j in sorted(successors[i]):
            indegree[j] -= 1
            if indegree[j] == 0:
                queue.append(j)
    if len(order) != len(comb):
        return None  # combinational cycle
    return order

"""Levelization: topologically order combinational processes.

The event-driven engine settles combinational logic with a worklist
fixpoint — every write re-schedules listeners until quiescence, which
re-evaluates glitchy fan-in cones many times per delta.  When the comb
process dependency graph is acyclic (true for every synthesizable
design without combinational loops), a topological order lets
``settle()`` run one linear sweep instead: each process executes at
most once per wave, after everything it reads has been produced.

The graph has an edge ``P -> Q`` when ``P`` may write a signal (or
memory) that ``Q`` is combinationally sensitive to.  Write sets are
extracted statically from assignment targets; sensitivity comes from
the elaborated ``comb_listeners`` lists (the exact wake-up paths the
event engine uses, so levelized execution can never under-trigger).
Self-edges are excluded: a process never re-triggers from its own
writes (matching ``@(*)`` event-control semantics in the engine).

If any write target cannot be resolved statically, or the graph is
cyclic, :func:`levelize` returns ``None`` and the compiled engine
falls back to event-driven scheduling for the whole comb set — the
conservative choice that keeps scheduling bit-compatible with the
interpreter on combinational loops.
"""

from collections import deque

from repro.hdl import ast
from repro.sim.elaborate import Signal
from repro.sim.eval import Memory


def _resolve_target_entry(scope, name):
    """Resolve an assignment-target name the way the executor does."""
    lookup = getattr(scope, "lookup_target", None)
    entry = lookup(name) if lookup else scope.lookup(name)
    if entry is None:
        if hasattr(scope, "declare_implicit"):
            entry = scope.declare_implicit(name)
        else:
            entry = scope.write_scope.declare_implicit(name)
    return entry


def write_set(process):
    """Statically enumerate the signals/memories ``process`` may write.

    Returns ``(signals, memories)`` or ``None`` when a target cannot be
    resolved (the caller must then treat the process as writing
    anything, i.e. give up on levelization)."""
    signals, memories = [], []
    seen = set()

    def note(entry):
        if id(entry) in seen:
            return True
        seen.add(id(entry))
        if isinstance(entry, Signal):
            signals.append(entry)
        elif isinstance(entry, Memory):
            memories.append(entry)
        return True

    def collect(target):
        if isinstance(target, ast.Identifier):
            return note(_resolve_target_entry(process.scope, target.name))
        if isinstance(target, (ast.Index, ast.PartSelect)):
            if isinstance(target.base, ast.Identifier):
                return note(
                    _resolve_target_entry(process.scope, target.base.name)
                )
            return False
        if isinstance(target, ast.Concat):
            return all(collect(part) for part in target.parts)
        return False

    for stmt in process.body:
        for node in stmt.walk():
            if isinstance(node, ast.Assign) and node.target is not None:
                if not collect(node.target):
                    return None
    return signals, memories


def _expr_names(node, names):
    if node is None:
        return
    for sub in node.walk():
        if isinstance(sub, ast.Identifier):
            names.add(sub.name)


def _target_read_names(target, names):
    """Names a store *reads*: indices/bounds, and — for bit/slice
    stores — the base itself (``replace_bits`` reads the current
    value).  A whole-identifier store reads nothing."""
    if isinstance(target, ast.Identifier):
        return
    if isinstance(target, ast.Index):
        _expr_names(target.index, names)
        if isinstance(target.base, ast.Identifier):
            names.add(target.base.name)
        else:
            _expr_names(target.base, names)
        return
    if isinstance(target, ast.PartSelect):
        _expr_names(target.msb, names)
        _expr_names(target.lsb, names)
        if isinstance(target.base, ast.Identifier):
            names.add(target.base.name)
        else:
            _expr_names(target.base, names)
        return
    if isinstance(target, ast.Concat):
        for part in target.parts:
            _target_read_names(part, names)
        return
    _expr_names(target, names)


def read_set_names(process):
    """Every identifier ``process`` may *read* (not just write).

    Walks assignments precisely — an assignment target contributes
    only its index/bound expressions (plus the base for bit/slice
    stores) — and everything else conservatively."""
    names = set()
    in_target = set()

    for stmt in process.body:
        for node in stmt.walk():
            if isinstance(node, ast.Assign) and node.target is not None:
                _target_read_names(node.target, names)
                for sub in node.target.walk():
                    in_target.add(id(sub))
    for stmt in process.body:
        for node in stmt.walk():
            if isinstance(node, ast.Identifier) and id(node) not in in_target:
                names.add(node.name)
    return names


def sensitivity_complete(process):
    """True when every signal/memory ``process`` reads also wakes it.

    ``always @(*)`` bodies and continuous assigns are complete by
    construction; explicit level-sensitive lists may be incomplete —
    a *bug the engine must faithfully simulate*, which constrains the
    fused kernel: stores whose glitches such a process could observe
    cannot be elided."""
    for name in read_set_names(process):
        entry = process.scope.lookup(name)
        if isinstance(entry, (Signal, Memory)):
            listeners = entry.comb_listeners
            if not any(listener is process for listener in listeners):
                return False
    return True


def levelize(design):
    """Topological order of the design's comb processes, or ``None``.

    ``None`` means levelization is unsafe (unresolvable write target)
    or impossible (a combinational cycle); the caller falls back to
    event-driven scheduling."""
    comb = [p for p in design.processes if p.kind == "comb"]
    if not comb:
        return []
    index_of = {id(p): i for i, p in enumerate(comb)}
    successors = [set() for _ in comb]
    indegree = [0] * len(comb)

    comb_written = set()
    write_sets = []
    for process in comb:
        sets = write_set(process)
        if sets is None:
            return None
        write_sets.append(sets)
        signals, memories = sets
        comb_written.update(id(entry) for entry in signals)
        comb_written.update(id(entry) for entry in memories)

    # Order sensitivity check: a process that *reads* a comb-written
    # signal it does not listen to sees whatever value the scheduler
    # happened to produce by the time it ran — the worklist's LIFO
    # order and a topological sweep can legitimately disagree there
    # (an incomplete `always @(a or b)` list is a bug the engine must
    # simulate faithfully).  Reads of seq-/port-driven signals are
    # stable within a comb wave, so only comb-written ones force the
    # event-driven fallback.
    for process in comb:
        for name in read_set_names(process):
            entry = process.scope.lookup(name)
            if not isinstance(entry, (Signal, Memory)):
                continue
            if id(entry) not in comb_written:
                continue
            if not any(listener is process
                       for listener in entry.comb_listeners):
                return None

    for i, process in enumerate(comb):
        signals, memories = write_sets[i]
        for entry in signals + memories:
            for listener in entry.comb_listeners:
                j = index_of.get(id(listener))
                if j is None or j == i:
                    continue  # seq/initial listener or self-edge
                if j not in successors[i]:
                    successors[i].add(j)
                    indegree[j] += 1

    queue = deque(i for i in range(len(comb)) if indegree[i] == 0)
    order = []
    while queue:
        i = queue.popleft()
        order.append(comb[i])
        for j in sorted(successors[i]):
            indegree[j] -= 1
            if indegree[j] == 0:
                queue.append(j)
    if len(order) != len(comb):
        return None  # combinational cycle
    return order

"""The compiled simulation backend.

:class:`CompiledSimulator` is a drop-in :class:`~repro.sim.engine.Simulator`:
same construction signature, same public API (``set``/``poke``/``get``/
``settle``/``tick``/``trace_at``), same trace and event-count
machinery — it inherits all of that.  What changes is *how* processes
execute and how combinational logic settles:

- every process body is compiled once at construction into a native
  Python closure (:mod:`repro.sim.compile.codegen`); bodies the
  compiler cannot prove faithful stay on the inherited interpreter,
  per process;
- combinational processes are levelized
  (:mod:`repro.sim.compile.levelize`); ``settle()`` then runs linear
  sweeps over the topological order driven by a dirty flag per
  process, instead of the worklist fixpoint.  On designs with
  combinational cycles (or unresolvable write targets) the engine
  falls back to the inherited event-driven scheduler, still running
  compiled closures.

Correctness contract: settled signal values, x-propagation, traces and
raised errors are bit-identical to the interpreter.  The *number* of
intermediate glitch evaluations can differ (levelized sweeps evaluate
each cone once per wave), so ``event_count`` — which feeds the
modelled-seconds clock — is scheduler-dependent; HR/FR outcomes are
backend-invariant.  The ``xcheck`` backend enforces the value contract
at every settle.
"""

from repro.sim.compile.codegen import compile_process
from repro.sim.compile.levelize import levelize
from repro.sim.elaborate import elaborate
from repro.sim.engine import SimulationError, Simulator, _MAX_DELTAS


class CompiledSimulator(Simulator):
    """Simulates an elaborated design through compiled closures."""

    backend_name = "compiled"

    def __init__(self, design, trace=True, code_coverage=False):
        if isinstance(design, str):
            design = elaborate(design)
        # The collector must exist before codegen runs: recording
        # calls are baked into the generated closures.
        if code_coverage and not hasattr(code_coverage, "hit_stmt"):
            from repro.cover.code import CodeCoverage

            code_coverage = CodeCoverage(design)
        self.code_coverage = code_coverage or None
        # Compile before the base constructor runs time-zero processes,
        # so initial/comb bodies already execute compiled.
        self._compiled = {}
        self.compiled_sources = {}
        self.fallback_reasons = {}
        for process in design.processes:
            closure, source = compile_process(self, process)
            if closure is not None:
                self._compiled[id(process)] = closure
                self.compiled_sources[process] = source
            else:
                self.fallback_reasons[process] = source
        order = levelize(design)
        self.levelized = order is not None
        if self.levelized:
            self._order = order
            self._level_of = {id(p): i for i, p in enumerate(order)}
            self._dirty = bytearray(len(order))
            self._dirty_count = 0
            # Per-slot closures so the settle sweep skips the dict
            # lookup and wrapper frame of _run_process.
            self._order_closures = [
                self._compiled.get(id(p)) for p in order
            ]
        super().__init__(design, trace=trace)

    # -- compile stats -------------------------------------------------------

    @property
    def compiled_process_count(self):
        return len(self._compiled)

    @property
    def interpreted_process_count(self):
        return len(self.design.processes) - len(self._compiled)

    # -- scheduling overrides ------------------------------------------------

    def _schedule_comb(self, process):
        if not self.levelized:
            return super()._schedule_comb(process)
        if process is self._running:
            return
        index = self._level_of[id(process)]
        if not self._dirty[index]:
            self._dirty[index] = 1
            self._dirty_count += 1

    def settle(self):
        if not self.levelized:
            return super().settle()
        if not (self._dirty_count or self._clocked or self._nba):
            return  # quiescent: skip the local binds below
        dirty = self._dirty
        order = self._order
        closures = self._order_closures
        count = len(order)
        deltas = 0
        while self._dirty_count or self._clocked or self._nba:
            while self._dirty_count:
                # One sweep in topological order; writes can only mark
                # strictly later processes dirty (acyclic), so a single
                # sweep normally drains the wave.  The outer loop
                # re-sweeps defensively if anything is left.
                for index in range(count):
                    if dirty[index]:
                        dirty[index] = 0
                        self._dirty_count -= 1
                        deltas += 1
                        if deltas > _MAX_DELTAS:
                            raise SimulationError(
                                "design did not settle "
                                "(combinational loop?)"
                            )
                        closure = closures[index]
                        if closure is None:
                            self._run_process(order[index])
                        else:
                            previous = self._running
                            self._running = order[index]
                            try:
                                closure()
                            finally:
                                self._running = previous
            if self._clocked:
                clocked, self._clocked = self._clocked, []
                self._clocked_set.clear()
                for process in clocked:
                    self._run_process(process)
            if not self._dirty_count and self._nba:
                updates, self._nba = self._nba, []
                for apply_update in updates:
                    apply_update()

    def _run_process(self, process):
        closure = self._compiled.get(id(process))
        if closure is None:
            return super()._run_process(process)
        previous, self._running = self._running, process
        try:
            closure()
        finally:
            self._running = previous

    # -- compiled store helpers (pre-bound into generated closures) ----------

    def _store_bit(self, signal, index, value):
        if index is None:
            return
        self._write_signal(signal, signal.value.replace_bits(index, value))

    def _store_slice(self, signal, hi, lo, value):
        if hi is None or lo is None:
            return
        self._write_signal(
            signal,
            signal.value.replace_bits(
                min(hi, lo), value.resize(abs(hi - lo) + 1)
            ),
        )

    def _mem_write(self, memory, index, value):
        memory.write(index, value)
        self._notify_memory_write(memory)

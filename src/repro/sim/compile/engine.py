"""The compiled simulation backend.

:class:`CompiledSimulator` is a drop-in :class:`~repro.sim.engine.Simulator`:
same construction signature, same public API (``set``/``poke``/``get``/
``settle``/``tick``/``trace_at``), same trace and event-count
machinery — it inherits all of that.  What changes is *how* processes
execute and how combinational logic settles:

- when the design levelizes (:mod:`repro.sim.compile.levelize`), the
  whole design is fused into one generated ``settle()`` kernel — comb
  processes inlined in topological order over hoisted signal slots —
  plus sibling seq/initial functions and per-clock ``tick()`` kernels
  (:mod:`repro.sim.compile.kernel`).  The generated module is shared
  across simulator instances and across runs through the compilation
  cache (:mod:`repro.sim.compile.cache`): each distinct design is
  compiled once per campaign, not once per work unit;
- process bodies the codegen cannot prove faithful (runtime-width
  part selects, whole-memory stores, ...) are *demoted*: they stay on
  the inherited interpreter, called from inside the fused kernel at
  their topological level;
- designs with combinational cycles (or unresolvable write targets)
  fall back to the previous architecture: every body compiled once
  into a per-process closure (:mod:`repro.sim.compile.codegen`),
  scheduled by the inherited event-driven engine.

Correctness contract: settled signal values, x-propagation, traces and
raised errors are bit-identical to the interpreter.  The *number* of
intermediate glitch evaluations can differ (the fused kernel commits
one final value per activation where the worklist re-evaluates
glitchy cones), so ``event_count`` — which feeds the modelled-seconds
clock — is scheduler-dependent; HR/FR outcomes are backend-invariant.
The ``xcheck`` backend enforces the value contract at every settle.
"""

from repro.sim.compile.cache import get_kernel
from repro.sim.compile.codegen import compile_process
from repro.sim.compile.levelize import levelize
from repro.sim.elaborate import elaborate
from repro.sim.engine import Simulator


class CompiledSimulator(Simulator):
    """Simulates an elaborated design through generated native code."""

    backend_name = "compiled"

    def __init__(self, design, trace=True, code_coverage=False):
        if isinstance(design, str):
            design = elaborate(design)
        # The collector must exist before codegen runs: recording
        # calls are baked into the generated code.
        if code_coverage and not hasattr(code_coverage, "hit_stmt"):
            from repro.cover.code import CodeCoverage

            code_coverage = CodeCoverage(design)
        self.code_coverage = code_coverage or None
        # The untraced write path must be installed before any codegen
        # binds self._write_signal (see Simulator.__init__).
        if not trace:
            self._write_signal = self._write_signal_untraced
        self._compiled = {}        # legacy per-process closures
        self._kernel_fns = {}      # id(process) -> kernel fn(sim)
        self._kernel_ticks = {}    # clock name -> tick fn
        self._kernel_pokes = {}    # port name -> poke fn
        self.compiled_sources = {}
        self.fallback_reasons = {}
        self.kernel_source = None

        order = levelize(design)
        self.levelized = order is not None
        if self.levelized:
            self._level_of = {id(p): i for i, p in enumerate(order)}
            self._dirty = bytearray(len(order))
            bind, source = get_kernel(
                design, order, trace=trace, coverage=self.code_coverage,
            )
            kernel = bind(design)
            self.kernel_source = source
            processes = design.processes
            for index, fn in kernel["fns"].items():
                self._kernel_fns[id(processes[index])] = fn
            self._kernel_ticks = kernel["ticks"]
            self._kernel_pokes = kernel["pokes"]
            for index in kernel["compiled"]:
                self.compiled_sources[processes[index]] = source
            for index, reason in kernel["demoted"].items():
                self.fallback_reasons[processes[index]] = reason
            # Instance attribute wins over the class method: settle()
            # dispatches straight into the generated kernel.
            self.settle = kernel["settle"].__get__(self)
        else:
            # Event-driven fallback: per-process compiled closures
            # under the inherited worklist scheduler.
            for process in design.processes:
                closure, source = compile_process(self, process)
                if closure is not None:
                    self._compiled[id(process)] = closure
                    self.compiled_sources[process] = source
                else:
                    self.fallback_reasons[process] = source
        super().__init__(design, trace=trace)

    # -- compile stats -------------------------------------------------------

    @property
    def compiled_process_count(self):
        if self.levelized:
            return len(self.design.processes) - len(self.fallback_reasons)
        return len(self._compiled)

    @property
    def interpreted_process_count(self):
        return len(self.design.processes) - self.compiled_process_count

    # -- scheduling overrides ------------------------------------------------

    def _schedule_comb(self, process):
        if not self.levelized:
            return super()._schedule_comb(process)
        if process is self._running:
            return
        self._dirty[self._level_of[id(process)]] = 1

    def tick(self, clock="clk", cycles=1, half_period=5):
        fn = self._kernel_ticks.get(clock)
        if fn is None:
            return super().tick(clock, cycles, half_period)
        fn(self, cycles, half_period)

    def poke(self, name, value):
        fn = self._kernel_pokes.get(name)
        if fn is None:
            return super().poke(name, value)
        fn(self, value)

    def set(self, name, value):
        fn = self._kernel_pokes.get(name)
        if fn is None:
            return super().set(name, value)
        fn(self, value)
        self.settle()

    def _run_process(self, process):
        fn = self._kernel_fns.get(id(process))
        if fn is not None:
            previous, self._running = self._running, process
            try:
                fn(self)
            finally:
                self._running = previous
            return
        closure = self._compiled.get(id(process))
        if closure is None:
            return super()._run_process(process)
        previous, self._running = self._running, process
        try:
            closure()
        finally:
            self._running = previous

    # -- compiled store helpers (bound into generated code) ------------------

    def _store_bit(self, signal, index, value):
        if index is None:
            return
        self._write_signal(signal, signal.value.replace_bits(index, value))

    def _store_slice(self, signal, hi, lo, value):
        if hi is None or lo is None:
            return
        self._write_signal(
            signal,
            signal.value.replace_bits(
                min(hi, lo), value.resize(abs(hi - lo) + 1)
            ),
        )

    def _mem_write(self, memory, index, value):
        memory.write(index, value)
        self._notify_memory_write(memory)

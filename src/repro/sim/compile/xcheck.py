"""Lockstep cross-checking backend.

:class:`XCheckSimulator` drives the tree-walking interpreter and the
compiled backend side by side through the same pin-level API and
compares *all* architectural state (every signal, every memory word,
simulation time) after construction and after every settle.  The first
mismatch raises :class:`XCheckDivergence` naming the signal, the time
and both values — the deterministic-replay acceptance bar: the
compiled backend is only correct if it is bit-identical, x-bits
included.

Reads (``get``/``trace``/``event_count``) are served from the
interpreter side, so any consumer sees exactly what the reference
backend would have produced.
"""

from repro.sim.compile.engine import CompiledSimulator
from repro.sim.elaborate import elaborate
from repro.sim.engine import SimulationError, Simulator
from repro.sim.values import Value


def _forensics_enabled():
    """Whether failure capture is live (lazy import: the sim layer must
    not depend on the forensics package at import time)."""
    try:
        from repro.forensics import bundle

        return bundle.enabled()
    except Exception:
        return False


class XCheckDivergence(SimulationError):
    """The compiled backend diverged from the interpreter.

    When raised by :class:`XCheckSimulator` the exception carries
    structured fields for triage replays: ``signal`` (or None for
    time/signal-set divergences), ``time``, ``context``, and
    ``bundle`` — the forensic bundle directory when capture was on.
    """

    signal = None
    time = None
    context = None
    bundle = None


class XCheckSimulator:
    """Runs ``interp`` and ``compiled`` in lockstep; raises on the
    first divergence.  API-compatible with :class:`Simulator`."""

    backend_name = "xcheck"

    def __init__(self, design, trace=True, top=None, code_coverage=False):
        if not isinstance(design, str):
            raise SimulationError(
                "the xcheck backend needs Verilog source text (it "
                "elaborates one design per side); got an elaborated "
                "object"
            )
        # Each side gets its own collector; consumers read the ref
        # side's map (``self.code_coverage``) while the dut side's is
        # available for invariance checks (``dut.code_coverage``).
        self.ref = Simulator(elaborate(design, top=top), trace=trace,
                             code_coverage=code_coverage)
        self.dut = CompiledSimulator(elaborate(design, top=top),
                                     trace=trace,
                                     code_coverage=code_coverage)
        self.compare_count = 0
        # Forensics: keep the source and (capture-enabled runs only)
        # the pin-op script, so a divergence bundles a standalone
        # reproducer.  ``None`` ops == recording off, zero overhead.
        self._source = design
        self._forensic_ops = [] if _forensics_enabled() else None
        self._compare("construction")

    # -- state mirrored from the reference side ------------------------------

    @property
    def design(self):
        return self.ref.design

    @property
    def time(self):
        return self.ref.time

    @property
    def trace(self):
        return self.ref.trace

    @property
    def trace_enabled(self):
        return self.ref.trace_enabled

    @property
    def code_coverage(self):
        return self.ref.code_coverage

    @property
    def event_count(self):
        return self.ref.event_count

    # -- pin-level API -------------------------------------------------------
    # ``tick`` decomposes through set/step_time, so recording only in
    # the four primitive mutators captures the full script exactly
    # once.

    def _record(self, *op):
        if self._forensic_ops is not None:
            self._forensic_ops.append(op)

    @staticmethod
    def _op_bits(value):
        if isinstance(value, Value):
            return int(value.bits), int(value.xmask)
        return int(value), 0

    def set(self, name, value):
        if self._forensic_ops is not None:
            self._record("set", name, *self._op_bits(value))
        self.ref.set(name, value)
        self.dut.set(name, value)
        self._compare(f"set({name!r})")

    def poke(self, name, value):
        if self._forensic_ops is not None:
            self._record("poke", name, *self._op_bits(value))
        self.ref.poke(name, value)
        self.dut.poke(name, value)

    def settle(self):
        self._record("settle")
        self.ref.settle()
        self.dut.settle()
        self._compare("settle()")

    def step_time(self, amount=1):
        self._record("step", int(amount))
        self.ref.step_time(amount)
        self.dut.step_time(amount)

    def tick(self, clock="clk", cycles=1, half_period=5):
        for _ in range(cycles):
            self.set(clock, 1)
            self.step_time(half_period)
            self.set(clock, 0)
            self.step_time(half_period)

    def get(self, name):
        ref_value = self.ref.get(name)
        dut_value = self.dut.get(name)
        if ref_value != dut_value or ref_value.xmask != dut_value.xmask:
            self._diverge(f"get({name!r})", name, ref_value, dut_value)
        return ref_value

    def get_int(self, name):
        return self.get(name).to_int()

    def peek_memory(self, name, address):
        return self.ref.peek_memory(name, address)

    def input_names(self):
        return self.ref.input_names()

    def output_names(self):
        return self.ref.output_names()

    def signal_width(self, name):
        return self.ref.signal_width(name)

    def trace_at(self, name, time):
        return self.ref.trace_at(name, time)

    # -- comparison ----------------------------------------------------------

    def _compare(self, context):
        self.compare_count += 1
        if self.ref.time != self.dut.time:
            self._raise_divergence(
                context, None, self.ref.time, self.dut.time,
                f"xcheck: time diverged after {context}: "
                f"interp={self.ref.time} compiled={self.dut.time}"
            )
        dut_signals = self.dut.design.signals
        if len(dut_signals) != len(self.ref.design.signals):
            extra = sorted(
                set(dut_signals) ^ set(self.ref.design.signals)
            )
            self._raise_divergence(
                context, None, None, None,
                f"xcheck: signal sets diverged after {context}: "
                f"only on one side: {extra[:8]}"
            )
        for name, ref_signal in self.ref.design.signals.items():
            dut_signal = dut_signals.get(name)
            if dut_signal is None:
                self._diverge(context, name, ref_signal.value, None)
            a, b = ref_signal.value, dut_signal.value
            if a != b or a.xmask != b.xmask:
                self._diverge(context, name, a, b)
        dut_memories = self.dut.design.memories
        for name, ref_memory in self.ref.design.memories.items():
            dut_memory = dut_memories.get(name)
            if dut_memory is None:
                self._diverge(context, name, "<memory>", None)
            for offset, (a, b) in enumerate(
                zip(ref_memory.words, dut_memory.words)
            ):
                if a != b or a.xmask != b.xmask:
                    self._diverge(
                        context, f"{name}[{offset + ref_memory.lo}]", a, b
                    )

    def _diverge(self, context, name, ref_value, dut_value):
        self._raise_divergence(
            context, name, ref_value, dut_value,
            f"xcheck: backends diverged after {context} at "
            f"t={self.ref.time}: signal '{name}' "
            f"interp={ref_value!r} compiled={dut_value!r}"
        )

    def _raise_divergence(self, context, name, ref_value, dut_value,
                          message):
        """Single exit for every divergence: bundle it (when forensic
        capture is on), then raise with structured fields attached."""
        exc = XCheckDivergence(message)
        exc.signal = name
        exc.time = int(self.ref.time)
        exc.context = context
        try:
            from repro.forensics import bundle as _forensics

            if _forensics.enabled():
                exc.bundle = _forensics.capture_xcheck(
                    self, context, name, ref_value, dut_value, message)
        except Exception:
            pass  # capture is best-effort; the divergence must surface
        raise exc


# -- lane-vs-scalar parity ----------------------------------------------------

def _lane_perturb(bits, xmask, width, lane, salt):
    """Deterministic per-lane variation of a poked value.

    Lane 0 replays the original stimulus; every other lane XORs the
    defined bits with a seeded pattern so the lanes genuinely diverge
    (x-bits are left alone — ``Value`` clears them anyway)."""
    if lane == 0 or width == 0:
        return bits
    import random

    pattern = random.Random(
        f"repro-lane-parity:{lane}:{salt}"
    ).getrandbits(width)
    mask = (1 << width) - 1
    return (bits ^ pattern) & mask & ~xmask


def _compare_lane(batch, scalar, lane, context):
    """One lane of the batch against its dedicated scalar simulator."""
    if batch.times[lane] != scalar.time:
        raise XCheckDivergence(
            f"lane-parity: time diverged after {context} on lane "
            f"{lane}: packed={batch.times[lane]} scalar={scalar.time}"
        )
    for name in scalar.design.signals:
        a = batch.get(name, lane)
        b = scalar.get(name)
        if a != b or a.xmask != b.xmask:
            raise XCheckDivergence(
                f"lane-parity: diverged after {context} at "
                f"t={scalar.time}: signal '{name}' lane {lane} "
                f"packed={a!r} scalar={b!r}"
            )
    for name, memory in scalar.design.memories.items():
        for address in range(memory.lo, memory.hi + 1):
            a = batch.peek_memory(name, address, lane)
            b = scalar.peek_memory(name, address)
            if a != b or a.xmask != b.xmask or a.signed != b.signed:
                raise XCheckDivergence(
                    f"lane-parity: diverged after {context} at "
                    f"t={scalar.time}: memory '{name}[{address}]' "
                    f"lane {lane} packed={a!r} scalar={b!r}"
                )
    if batch.event_counts[lane] != scalar.event_count:
        raise XCheckDivergence(
            f"lane-parity: event count diverged after {context} on "
            f"lane {lane}: packed={batch.event_counts[lane]} "
            f"scalar={scalar.event_count}"
        )


def run_lane_parity(source, ops, lanes=4):
    """Drive a lane batch and ``lanes`` scalar compiled simulators in
    lockstep through an oracle op list; raise :class:`XCheckDivergence`
    on the first per-lane state, time, event-count, or trace mismatch.

    Lane 0 replays ``ops`` verbatim; lanes 1.. replay a deterministic
    per-lane perturbation of every poke so the lanes exercise genuinely
    independent stimulus.  Returns ``True`` when the design actually
    ran packed, ``False`` when lane codegen demoted it to the scalar
    fallback batch (the check then degrades to an API smoke test).
    """
    from repro.sim.compile.lanes import make_lane_batch

    # force_packed: keep the per-process shim paths under differential
    # test even though production batches prefer the scalar fallback.
    batch = make_lane_batch(source, lanes, trace=True, force_packed=True)
    scalars = [
        CompiledSimulator(elaborate(source), trace=True)
        for _ in range(lanes)
    ]
    for index, op in enumerate(ops):
        if op[0] == "poke":
            _, name, bits, xmask = op
            width = scalars[0].signal_width(name)
            for lane in range(lanes):
                lane_bits = _lane_perturb(bits, xmask, width, lane, index)
                value = Value(lane_bits, width, xmask)
                batch.poke(name, lane, value)
                scalars[lane].poke(name, value)
        elif op[0] == "tick":
            batch.tick()
            for scalar in scalars:
                scalar.tick()
            for lane in range(lanes):
                _compare_lane(batch, scalars[lane], lane,
                              f"op[{index}] tick")
        elif op[0] == "settle":
            batch.settle()
            batch.step_time(10)
            for scalar in scalars:
                scalar.settle()
                scalar.step_time(10)
            for lane in range(lanes):
                _compare_lane(batch, scalars[lane], lane,
                              f"op[{index}] settle")
        else:
            raise ValueError(f"unknown stimulus op {op[0]!r}")
    for lane in range(lanes):
        _compare_lane(batch, scalars[lane], lane, "final state")
        if batch.traces[lane] != scalars[lane].trace:
            diff = sorted(
                name for name in scalars[lane].trace
                if batch.traces[lane].get(name) != scalars[lane].trace[name]
            )
            raise XCheckDivergence(
                f"lane-parity: trace diverged on lane {lane}: "
                f"signals {diff[:8]}"
            )
    return batch.packed

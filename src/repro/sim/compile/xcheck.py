"""Lockstep cross-checking backend.

:class:`XCheckSimulator` drives the tree-walking interpreter and the
compiled backend side by side through the same pin-level API and
compares *all* architectural state (every signal, every memory word,
simulation time) after construction and after every settle.  The first
mismatch raises :class:`XCheckDivergence` naming the signal, the time
and both values — the deterministic-replay acceptance bar: the
compiled backend is only correct if it is bit-identical, x-bits
included.

Reads (``get``/``trace``/``event_count``) are served from the
interpreter side, so any consumer sees exactly what the reference
backend would have produced.
"""

from repro.sim.compile.engine import CompiledSimulator
from repro.sim.elaborate import elaborate
from repro.sim.engine import SimulationError, Simulator


class XCheckDivergence(SimulationError):
    """The compiled backend diverged from the interpreter."""


class XCheckSimulator:
    """Runs ``interp`` and ``compiled`` in lockstep; raises on the
    first divergence.  API-compatible with :class:`Simulator`."""

    backend_name = "xcheck"

    def __init__(self, design, trace=True, top=None, code_coverage=False):
        if not isinstance(design, str):
            raise SimulationError(
                "the xcheck backend needs Verilog source text (it "
                "elaborates one design per side); got an elaborated "
                "object"
            )
        # Each side gets its own collector; consumers read the ref
        # side's map (``self.code_coverage``) while the dut side's is
        # available for invariance checks (``dut.code_coverage``).
        self.ref = Simulator(elaborate(design, top=top), trace=trace,
                             code_coverage=code_coverage)
        self.dut = CompiledSimulator(elaborate(design, top=top),
                                     trace=trace,
                                     code_coverage=code_coverage)
        self.compare_count = 0
        self._compare("construction")

    # -- state mirrored from the reference side ------------------------------

    @property
    def design(self):
        return self.ref.design

    @property
    def time(self):
        return self.ref.time

    @property
    def trace(self):
        return self.ref.trace

    @property
    def trace_enabled(self):
        return self.ref.trace_enabled

    @property
    def code_coverage(self):
        return self.ref.code_coverage

    @property
    def event_count(self):
        return self.ref.event_count

    # -- pin-level API -------------------------------------------------------

    def set(self, name, value):
        self.ref.set(name, value)
        self.dut.set(name, value)
        self._compare(f"set({name!r})")

    def poke(self, name, value):
        self.ref.poke(name, value)
        self.dut.poke(name, value)

    def settle(self):
        self.ref.settle()
        self.dut.settle()
        self._compare("settle()")

    def step_time(self, amount=1):
        self.ref.step_time(amount)
        self.dut.step_time(amount)

    def tick(self, clock="clk", cycles=1, half_period=5):
        for _ in range(cycles):
            self.set(clock, 1)
            self.step_time(half_period)
            self.set(clock, 0)
            self.step_time(half_period)

    def get(self, name):
        ref_value = self.ref.get(name)
        dut_value = self.dut.get(name)
        if ref_value != dut_value or ref_value.xmask != dut_value.xmask:
            self._diverge(f"get({name!r})", name, ref_value, dut_value)
        return ref_value

    def get_int(self, name):
        return self.get(name).to_int()

    def peek_memory(self, name, address):
        return self.ref.peek_memory(name, address)

    def input_names(self):
        return self.ref.input_names()

    def output_names(self):
        return self.ref.output_names()

    def signal_width(self, name):
        return self.ref.signal_width(name)

    def trace_at(self, name, time):
        return self.ref.trace_at(name, time)

    # -- comparison ----------------------------------------------------------

    def _compare(self, context):
        self.compare_count += 1
        if self.ref.time != self.dut.time:
            raise XCheckDivergence(
                f"xcheck: time diverged after {context}: "
                f"interp={self.ref.time} compiled={self.dut.time}"
            )
        dut_signals = self.dut.design.signals
        if len(dut_signals) != len(self.ref.design.signals):
            extra = sorted(
                set(dut_signals) ^ set(self.ref.design.signals)
            )
            raise XCheckDivergence(
                f"xcheck: signal sets diverged after {context}: "
                f"only on one side: {extra[:8]}"
            )
        for name, ref_signal in self.ref.design.signals.items():
            dut_signal = dut_signals.get(name)
            if dut_signal is None:
                self._diverge(context, name, ref_signal.value, None)
            a, b = ref_signal.value, dut_signal.value
            if a != b or a.xmask != b.xmask:
                self._diverge(context, name, a, b)
        dut_memories = self.dut.design.memories
        for name, ref_memory in self.ref.design.memories.items():
            dut_memory = dut_memories.get(name)
            if dut_memory is None:
                self._diverge(context, name, "<memory>", None)
            for offset, (a, b) in enumerate(
                zip(ref_memory.words, dut_memory.words)
            ):
                if a != b or a.xmask != b.xmask:
                    self._diverge(
                        context, f"{name}[{offset + ref_memory.lo}]", a, b
                    )

    def _diverge(self, context, name, ref_value, dut_value):
        raise XCheckDivergence(
            f"xcheck: backends diverged after {context} at "
            f"t={self.ref.time}: signal '{name}' "
            f"interp={ref_value!r} compiled={dut_value!r}"
        )

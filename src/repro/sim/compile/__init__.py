"""Compiled simulation: whole-design kernel fusion + codegen.

See :mod:`repro.sim.compile.engine` for the backend entry point,
:mod:`repro.sim.compile.kernel` for the fused settle/tick generator,
:mod:`repro.sim.compile.cache` for the cross-run compilation cache,
and :mod:`repro.sim.backend` for selection (``interp``/``compiled``/
``xcheck``).
"""

from repro.sim.compile.cache import get_kernel, kernel_cache_key
from repro.sim.compile.codegen import NotCompilable, compile_process
from repro.sim.compile.engine import CompiledSimulator
from repro.sim.compile.kernel import build_kernel_source
from repro.sim.compile.levelize import levelize
from repro.sim.compile.xcheck import XCheckDivergence, XCheckSimulator

__all__ = [
    "CompiledSimulator",
    "NotCompilable",
    "XCheckDivergence",
    "XCheckSimulator",
    "build_kernel_source",
    "compile_process",
    "get_kernel",
    "kernel_cache_key",
    "levelize",
]

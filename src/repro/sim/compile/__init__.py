"""Compiled simulation: levelization + process-body codegen.

See :mod:`repro.sim.compile.engine` for the backend entry point and
:mod:`repro.sim.backend` for selection (``interp``/``compiled``/
``xcheck``).
"""

from repro.sim.compile.codegen import NotCompilable, compile_process
from repro.sim.compile.engine import CompiledSimulator
from repro.sim.compile.levelize import levelize
from repro.sim.compile.xcheck import XCheckDivergence, XCheckSimulator

__all__ = [
    "CompiledSimulator",
    "NotCompilable",
    "XCheckDivergence",
    "XCheckSimulator",
    "compile_process",
    "levelize",
]

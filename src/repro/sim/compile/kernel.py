"""Whole-design kernel fusion: one generated settle()/tick() per design.

The per-process codegen (:mod:`repro.sim.compile.codegen`) removed the
tree walk but kept a Python dispatch loop between process closures:
every ``settle()`` still paid a dict lookup, a wrapper frame and a
generic ``_write_signal`` per store.  This module goes the rest of the
way, Verilator-style: the levelized combinational processes are
*inlined, in topological order, into one generated ``_settle``
function*, and the sequential processes become sibling functions fused
with a specialized NBA commit loop.

What the fused kernel specializes:

- **signal slots hoisted to locals** — within a comb wave every signal
  read/written by inlined processes lives in a local variable, loaded
  once per wave instead of one attribute read per access;
- **dead stores / unread intermediate writebacks eliminated** — a comb
  body's blocking stores rebind the local; the signal slot, the trace
  and the dirty marks are committed *once* per activation with the
  final value.  This is observably identical to the interpreter
  because (a) the canonical trace already collapses same-time
  glitches, and (b) elision is only applied to signals whose comb
  listeners are all *sensitivity-complete* and that have no edge
  listeners — the two cases where an intermediate glitch is
  observable (incomplete ``always @(a or b)`` lists are bugs the
  engine must faithfully simulate; see
  :func:`repro.sim.compile.levelize.sensitivity_complete`);
- **static wake-up** — a committed store marks its statically known
  listener levels directly in the dirty bytearray: no listener-list
  walk, no scheduler call;
- **leaf instance flattening** — elaboration already flattens
  hierarchy into one process list, so pure-comb leaf instances and
  their port binds inline into the parent kernel like any other comb
  process;
- **specialized NBA commit** — non-blocking whole-signal assignments
  append cheap ``(signal, value)`` tuples instead of allocating
  ``functools.partial`` objects; the generated commit loop
  fast-paths them (callables from demoted interpreter processes
  still work);
- **generated tick()** — one function per clocked signal fusing the
  edge commit (static posedge/negedge/anyedge listener sets), the
  settle sweep, and the statically-decided falling-edge settle
  elision.

Faithfulness: processes the codegen must demote (runtime-width
selects, whatever else raises :class:`NotCompilable`) stay on the
interpreter, called from *inside* the fused kernel at their
topological level; designs that cannot be levelized at all (comb
cycles, unresolvable write targets) keep the per-process compiled
backend under event-driven scheduling.  Settled values, x-propagation
and traces stay bit-identical to the interpreter — enforced by xcheck,
the fuzz oracle and ``ci_smoke.py``.  ``event_count`` remains
scheduler-dependent, as documented.

The generated module is **instance-independent**: signals, memories,
scopes and processes are rebound by name/index in a ``bind(design)``
prologue, and constants are materialized at module level — so one
generated source is compiled and ``exec``'d once per design per
worker process and shared by every simulator instance of that design
(see :mod:`repro.sim.compile.cache`).
"""

from repro.hdl import ast
from repro.sim.compile.codegen import (
    NotCompilable,
    ProcessCompiler,
    _ParamResolver,
)
from repro.sim.compile.levelize import sensitivity_complete, write_set
from repro.sim.elaborate import Signal
from repro.sim.eval import Evaluator, Memory
from repro.sim.values import Value


class _KernelProc(ProcessCompiler):
    """Compiles one process body for the fused kernel.

    ``mode`` is ``"comb"`` (inlined into ``_settle``: signal reads are
    hoisted locals, stores defer to a single end-of-body commit where
    provably safe) or ``"fn"`` (seq/initial sibling function: reads
    are slot attributes, NBA stores append specialized tuples).

    Deliberately does *not* call the base constructor: the base binds
    live simulator helpers into an exec environment, while kernel
    compilation is simulator-free — every object reference is emitted
    as a bind-time or module-level assignment instead.
    """

    def __init__(self, kernel, process, mode):
        self.kernel = kernel
        self.process = process
        self.scope = process.scope
        self.nonblocking = process.kind == "seq"
        self.mode = mode
        self.pidx = kernel.proc_index[id(process)]
        self.lines = []
        self.indent = 1
        self.counter = 0
        self._const_folder = Evaluator(_ParamResolver(self.scope))
        cov = kernel.cov
        self.cov = cov if (cov is not None and process.kind != "comb") \
            else None
        #: id(Signal) -> (Signal, local name), insertion-ordered: the
        #: signals this body stores via deferred locals, committed once
        #: at the end of the inlined body.
        self.deferred = {}
        #: Helper bindings the emitted code needs ("_W", "_nba", ...).
        self.uses = set()
        if self.cov is not None:
            self.uses.add("_cov")
        #: True when the body makes engine-mediated writes, which
        #: consult ``sim._running`` for self-wake suppression.
        self.needs_running = False
        self._rhs_signed = None

    # -- plumbing overrides --------------------------------------------------

    def tmp(self):
        self.counter += 1
        return f"_t{self.pidx}_{self.counter}"

    def bind(self, obj, prefix):
        if prefix == "K":
            return self.kernel.bind_const(obj)
        return self.kernel.bind_object(obj, prefix)

    def scope_ref(self):
        return self.kernel.bind_scope(self.process)

    def signal_value_ref(self, entry):
        if self.mode == "comb":
            return self.kernel.local_for(entry)
        return f"{self.bind(entry, 'S')}.value"

    # Elaboration declares every identifier eagerly; a miss here means
    # the interpreter would declare lazily at run time, so the process
    # must stay interpreted to match.

    def resolve_read(self, name):
        entry = self.scope.lookup(name)
        if entry is None:
            raise NotCompilable(f"undeclared identifier '{name}'")
        return entry

    def resolve_target(self, name):
        lookup = getattr(self.scope, "lookup_target", None)
        entry = lookup(name) if lookup else self.scope.lookup(name)
        if entry is None:
            raise NotCompilable(f"undeclared target '{name}'")
        return entry

    # -- case: dict probe to an arm index, arms inlined ----------------------

    def _compile_case_dict(self, stmt, svar, swidth, folded, default_item):
        """Constant same-width ``case``: one dict probe mapping
        ``(bits, xmask)`` to a small arm index, arms inlined as an
        integer if/elif chain (arms must stay inline so they can read
        and write the kernel's hoisted locals)."""
        sid = (
            self.cov.stmt_id.get(id(stmt))
            if self.cov is not None else None
        )
        width = max(swidth, folded[0][0].width)
        dispatch = {}
        arm_of = {}
        for value, item in folded:
            key = (value.resize(width).bits, value.resize(width).xmask)
            if id(item) not in arm_of:
                arm_of[id(item)] = (len(arm_of), item)
            # First matching label wins, like the interpreter's scan.
            dispatch.setdefault(key, arm_of[id(item)][0])
        table = self.kernel.bind_dispatch(dispatch)
        sub = svar
        if width != swidth:
            sub = self.tmp()
            self.emit(f"{sub} = {svar}.resize({width})")
        sel = self.tmp()
        self.emit(f"{sel} = {table}.get(({sub}.bits, {sub}.xmask), -1)")
        first = True
        for index, item in sorted(arm_of.values()):
            self.emit(f"{'if' if first else 'elif'} {sel} == {index}:")
            first = False
            self.indent += 1
            if sid is not None:
                entry = self.cov.case_arm.get(id(item))
                if entry is not None:
                    self.emit(f"_CB({entry[0]!r}, {entry[1]!r})")
            self._compile_branch(item.body)
            self.indent -= 1
        if default_item is not None or sid is not None:
            self.emit("else:")
            self.indent += 1
            if sid is not None:
                self.emit(f"_CB({sid!r}, 'default')")
            if default_item is not None:
                self._compile_branch(default_item.body)
            self.indent -= 1

    # -- stores --------------------------------------------------------------

    def _compile_assign(self, stmt):
        # Statically-known RHS signedness lets the deferred store skip
        # its per-store normalization guard (the engine's
        # ``_write_signal`` normalizes signedness; deferred locals
        # must match because later reads see them).
        try:
            self._rhs_signed = self.static_signed(stmt.value)
        except NotCompilable:
            self._rhs_signed = None
        super()._compile_assign(stmt)

    def _defer_local(self, entry):
        local = self.kernel.local_for(entry)
        self.deferred.setdefault(id(entry), (entry, local))
        return local

    def _emit_local_store(self, entry, var):
        local = self._defer_local(entry)
        signed = bool(entry.signed)
        if signed:
            # Mirror ``_write_signal`` exactly: a no-change
            # (bits, xmask) store keeps the old value object — and
            # its dynamic signedness (unsigned until the first
            # changed write) — while a changed store adopts the
            # declared signed flag.  Later reads in the same comb
            # wave observe whichever survived.
            if self._rhs_signed is True:
                new = var
            else:
                new = (f"({var} if {var}.signed else "
                       f"Value({var}.bits, {entry.width}, "
                       f"{var}.xmask, True))")
            self.emit(
                f"{local} = {local} if ({local}.bits == {var}.bits "
                f"and {local}.xmask == {var}.xmask) else {new}"
            )
        elif self._rhs_signed is False:
            self.emit(f"{local} = {var}")
        else:
            self.emit(
                f"{local} = {var} if not {var}.signed else "
                f"Value({var}.bits, {entry.width}, {var}.xmask)"
            )

    def _emit_local_rmw(self, entry, local, rmw_expr):
        """Structural (bit/part-select) store to a hoisted local.

        ``replace_bits`` keeps the *old* value's signed flag, but the
        engine routes these through ``_write_signal``, which adopts
        the declared flag on a changed write and keeps the old object
        on a no-change one — so a declared-signed target needs the
        same change check here."""
        if not entry.signed:
            self.emit(f"{local} = {rmw_expr}")
            return
        new = self.tmp()
        self.emit(f"{new} = {rmw_expr}")
        self.emit(
            f"{local} = {local} if ({local}.bits == {new}.bits and "
            f"{local}.xmask == {new}.xmask) else "
            f"Value({new}.bits, {entry.width}, {new}.xmask, True)"
        )

    def _after_engine_write(self, entry):
        """Refresh the hoisted local after a generic engine write."""
        if self.mode == "comb":
            self.needs_running = True
            local = self.kernel.local_for(entry)
            self.emit(f"{local} = {self.bind(entry, 'S')}.value")

    def _compile_store(self, target, var, deferred):
        if isinstance(target, ast.Identifier):
            entry = self.resolve_target(target.name)
            if isinstance(entry, Signal):
                if deferred:
                    self.uses.add("_nba")
                    self.emit(f"_nba.append(("
                              f"{self.kernel.commit_fn_for(entry)}, "
                              f"{var}))")
                    return
                if self.mode == "comb":
                    if self.kernel.defer_ok(entry):
                        self._emit_local_store(entry, var)
                        return
                    self.uses.add("_W")
                    self.emit(f"_W({self.bind(entry, 'S')}, {var})")
                    self._after_engine_write(entry)
                    return
                # Seq/initial blocking store: the per-signal committer
                # is exact (seq processes are never comb listeners, so
                # no self-wake suppression is needed).
                self.emit(f"{self.kernel.commit_fn_for(entry)}"
                          f"(sim, {var})")
                return
            if isinstance(entry, Memory):
                raise NotCompilable(
                    f"cannot assign whole memory '{target.name}'"
                )
            return  # parameter target: a lint-caught no-op
        if isinstance(target, ast.Index):
            self._compile_index_store(target, var, deferred)
            return
        if isinstance(target, ast.PartSelect):
            self._compile_part_select_store(target, var, deferred)
            return
        if isinstance(target, ast.Concat):
            # The split pieces are constructed unsigned regardless of
            # the whole RHS's signedness — the deferred-store
            # normalization guard must see that, not the outer RHS.
            self._rhs_signed = False
            self._compile_concat_store(target, var, deferred)
            return
        raise NotCompilable(
            f"invalid assignment target {type(target).__name__}"
        )

    def _compile_index_store(self, target, var, deferred):
        if not isinstance(target.base, ast.Identifier):
            raise NotCompilable("unsupported indexed assignment target")
        ivar = self._runtime_int(target.index)
        entry = self.resolve_target(target.base.name)
        if isinstance(entry, Memory):
            if self.mode == "fn":
                # Seq/initial memory store: the per-memory committer
                # replaces the partial allocation and listener walk.
                fn = self.kernel.mem_commit_fn_for(entry)
                if deferred:
                    self.uses.add("_nba")
                    self.emit(f"_nba.append(({fn}, ({ivar}, {var})))")
                else:
                    self.emit(f"{fn}(sim, ({ivar}, {var}))")
                return
            mem = self.bind(entry, "M")
            self.uses.add("_MW")
            self.needs_running = True
            self.emit(f"_MW({mem}, {ivar}, {var})")
            return
        if isinstance(entry, Signal):
            sig = self.bind(entry, "S")
            if deferred:
                self.uses.update(("_nba", "_pt", "_SB"))
                self.emit(f"_nba.append(_pt(_SB, {sig}, {ivar}, {var}))")
                return
            if self.mode == "comb" and self.kernel.defer_ok(entry):
                local = self._defer_local(entry)
                self.emit(f"if {ivar} is not None:")
                self.indent += 1
                self._emit_local_rmw(
                    entry, local, f"{local}.replace_bits({ivar}, {var})"
                )
                self.indent -= 1
                return
            self.uses.add("_SB")
            self.emit(f"_SB({sig}, {ivar}, {var})")
            self._after_engine_write(entry)
            return
        raise NotCompilable("unsupported indexed assignment target")

    def _compile_part_select_store(self, target, var, deferred):
        if not isinstance(target.base, ast.Identifier):
            raise NotCompilable("unsupported part-select target")
        entry = self.resolve_target(target.base.name)
        if not isinstance(entry, Signal):
            raise NotCompilable("part-select on non-signal target")
        sig = self.bind(entry, "S")
        static = None
        if target.mode == ":":
            try:
                msb = self.const_int(target.msb)
                lsb = self.const_int(target.lsb)
            except NotCompilable:
                # Run-time bounds also make the *target width* (and so
                # the RHS context) run-time — keep it interpreted.
                raise NotCompilable("non-constant part-select bounds")
            static = (msb, lsb)
            hi, lo = repr(msb), repr(lsb)
        elif target.mode == "+:":
            width = self.const_int(target.lsb) or 1
            start = self._runtime_int(target.msb)
            hi = self.tmp()
            self.emit(f"{hi} = None if {start} is None else "
                      f"{start} + {width - 1}")
            lo = start
        else:  # "-:"
            width = self.const_int(target.lsb) or 1
            start = self._runtime_int(target.msb)
            lo = self.tmp()
            self.emit(f"{lo} = None if {start} is None else "
                      f"{start} - {width - 1}")
            hi = start
        if deferred:
            self.uses.update(("_nba", "_pt", "_SS"))
            self.emit(f"_nba.append(_pt(_SS, {sig}, {hi}, {lo}, {var}))")
            return
        if self.mode == "comb" and self.kernel.defer_ok(entry):
            local = self._defer_local(entry)
            if static is not None:
                msb, lsb = static
                if msb is None or lsb is None:
                    return  # x bound: _store_slice would no-op
                # var is already resized to the slice width by
                # _compile_assign, so _store_slice's resize is the
                # identity and min() folds statically.
                self._emit_local_rmw(
                    entry, local,
                    f"{local}.replace_bits({min(msb, lsb)}, {var})",
                )
                return
            # Runtime +:/-: offset: hi is None iff lo is None, and
            # min(hi, lo) is always the computed lo bound.
            self.emit(f"if {lo} is not None:")
            self.indent += 1
            self._emit_local_rmw(
                entry, local, f"{local}.replace_bits({lo}, {var})"
            )
            self.indent -= 1
            return
        self.uses.add("_SS")
        self.emit(f"_SS({sig}, {hi}, {lo}, {var})")
        self._after_engine_write(entry)


class KernelCompiler:
    """Generates the fused-kernel module source for one design.

    The output of :meth:`build` is a self-contained Python module
    defining ``bind(design)``; binding a (fresh elaboration of the
    same) design returns the kernel entry points.  See the module
    docstring for the structure and the faithfulness argument.
    """

    def __init__(self, design, order, trace=True, coverage=None):
        self.design = design
        self.order = list(order)
        self.trace = bool(trace)
        self.cov = coverage
        self.proc_index = {id(p): i for i, p in enumerate(design.processes)}
        self.level_of = {id(p): i for i, p in enumerate(self.order)}
        self.module_lines = []   # K/D constants, built once per exec
        self.bind_lines = []     # S/M/P/scope rebinding per instance
        self._bound = {}         # id(obj) -> emitted name (obj kept alive
        #                          by the design, so ids are stable)
        self._consts = {}        # (bits, width, xmask, signed) -> K name
        self._counts = {}        # prefix -> running count
        self._hoisted = {}       # id(Signal) -> (local, slot name)
        self._complete = {}      # id(process) -> sensitivity_complete
        self._defer = {}         # id(Signal) -> bool
        self.uses = set()        # helpers _settle itself needs
        self.fn_names = {}       # process index -> generated fn name
        self.fn_defs = []        # rendered seq/initial function blocks
        self._commit_fns = {}    # id(Signal) -> committer fn name
        self._mem_commit_fns = {}  # id(Memory) -> committer fn name
        self.commit_defs = []    # rendered per-signal/memory committers
        self.demoted = {}        # process index -> reason
        self.compiled = []       # process indices compiled into kernel
        self.any_running = False

    # -- naming / binding ----------------------------------------------------

    def _name(self, prefix):
        n = self._counts.get(prefix, 0)
        self._counts[prefix] = n + 1
        return f"{prefix}{n}"

    def bind_object(self, obj, prefix):
        name = self._bound.get(id(obj))
        if name is not None:
            return name
        if isinstance(obj, Signal):
            name = self._name("S")
            self.bind_lines.append(f"{name} = _signals[{obj.name!r}]")
        elif isinstance(obj, Memory):
            name = self._name("M")
            self.bind_lines.append(f"{name} = _memories[{obj.name!r}]")
        else:
            raise NotCompilable(
                f"cannot rebind {type(obj).__name__} in a fused kernel"
            )
        self._bound[id(obj)] = name
        return name

    def bind_process(self, process):
        name = self._bound.get(id(process))
        if name is None:
            name = self._name("P")
            self._bound[id(process)] = name
            self.bind_lines.append(
                f"{name} = _procs[{self.proc_index[id(process)]}]"
            )
        return name

    def bind_scope(self, process):
        scope = process.scope
        name = self._bound.get(id(scope))
        if name is None:
            name = self._name("_sc")
            self._bound[id(scope)] = name
            self.bind_lines.append(
                f"{name} = _procs[{self.proc_index[id(process)]}].scope"
            )
        return name

    def bind_const(self, value):
        # Keyed by content, not identity: codegen constants are often
        # transient objects (id() reuse would alias them), and content
        # keying deduplicates equal literals across processes.
        key = (value.bits, value.width, value.xmask, value.signed)
        name = self._consts.get(key)
        if name is None:
            name = self._name("K")
            self._consts[key] = name
            self.module_lines.append(
                f"{name} = Value({value.bits!r}, {value.width!r}, "
                f"{value.xmask!r}, {value.signed!r})"
            )
        return name

    def bind_dispatch(self, dispatch):
        name = self._name("D")
        items = ", ".join(
            f"({bits!r}, {xmask!r}): {arm!r}"
            for (bits, xmask), arm in sorted(dispatch.items())
        )
        self.module_lines.append(f"{name} = {{{items}}}")
        return name

    def local_for(self, signal):
        entry = self._hoisted.get(id(signal))
        if entry is None:
            local = f"v{len(self._hoisted)}"
            entry = self._hoisted[id(signal)] = (
                local, self.bind_object(signal, "S")
            )
        return entry[0]

    # -- store-elision policy ------------------------------------------------

    def _listener_complete(self, process):
        flag = self._complete.get(id(process))
        if flag is None:
            flag = self._complete[id(process)] = \
                sensitivity_complete(process)
        return flag

    def defer_ok(self, signal):
        """May stores to ``signal`` collapse to one commit per comb
        activation?  Only when no observer could tell: no edge
        listeners (a same-delta glitch fires edges on the reference
        engine) and every comb listener is sensitivity-complete (an
        incomplete listener is woken by glitches it cannot otherwise
        see)."""
        flag = self._defer.get(id(signal))
        if flag is None:
            flag = (
                not signal.edge_listeners
                and all(self._listener_complete(p)
                        for p in signal.comb_listeners)
            )
            self._defer[id(signal)] = flag
        return flag

    # -- commit / trace emission ---------------------------------------------

    def _emit_trace(self, pc, name, value_ref, time_ref="_t"):
        """Canonical value-change trace append, mirroring
        ``Simulator._write_signal`` exactly (same-time collapse and
        no-change glitch drop included)."""
        h = pc.tmp()
        pc.emit(f"{h} = _tr.get({name!r})")
        pc.emit(f"if {h} is None:")
        pc.indent += 1
        pc.emit(f"{h} = _tr[{name!r}] = []")
        pc.indent -= 1
        pc.emit(f"if {h} and {h}[-1][0] == {time_ref}:")
        pc.indent += 1
        pc.emit(f"if len({h}) > 1 and {h}[-2][1] == {value_ref}:")
        pc.indent += 1
        pc.emit(f"{h}.pop()")
        pc.indent -= 1
        pc.emit("else:")
        pc.indent += 1
        pc.emit(f"{h}[-1] = ({time_ref}, {value_ref})")
        pc.indent -= 1
        pc.indent -= 1
        pc.emit("else:")
        pc.indent += 1
        pc.emit(f"{h}.append(({time_ref}, {value_ref}))")
        pc.indent -= 1

    def _emit_commit(self, pc, process, signal, local):
        slot = self.bind_object(signal, "S")
        old = pc.tmp()
        pc.emit(f"{old} = {slot}.value")
        pc.emit(f"if {local}.bits != {old}.bits or "
                f"{local}.xmask != {old}.xmask:")
        pc.indent += 1
        pc.emit(f"{slot}.value = {local}")
        pc.emit("ec += 1")
        if self.trace:
            self._emit_trace(pc, signal.name, local)
        levels = sorted({
            self.level_of[id(listener)]
            for listener in signal.comb_listeners
            if listener is not process
        })
        for level in levels:
            pc.emit(f"d[{level}] = 1")
        pc.indent -= 1

    # -- per-process compilation ---------------------------------------------

    def _compile_comb(self, process):
        pc = _KernelProc(self, process, "comb")
        pc.compile_body()
        for signal, local in pc.deferred.values():
            self._emit_commit(pc, process, signal, local)
        self.uses |= pc.uses
        if pc.needs_running:
            self.any_running = True
        return pc.lines, pc.needs_running

    def _compile_fn(self, process):
        pc = _KernelProc(self, process, "fn")
        body = pc.compile_body()
        index = self.proc_index[id(process)]
        name = f"_fn{index}"
        preamble = []
        if "_nba" in pc.uses:
            preamble.append("_nba = sim._nba")
        for helper, attr in (("_W", "_write_signal"),
                             ("_SB", "_store_bit"),
                             ("_SS", "_store_slice"),
                             ("_MW", "_mem_write")):
            if helper in pc.uses:
                preamble.append(f"{helper} = sim.{attr}")
        if "_cov" in pc.uses:
            preamble.append("_cov = sim.code_coverage")
            preamble.append("_CS = _cov.hit_stmt")
            preamble.append("_CB = _cov.hit_branch")
        lines = [f"def {name}(sim):  # {process.kind} "
                 f"{process.name or index}"]
        lines.extend("    " + text for text in preamble)
        lines.extend(body)
        if not preamble and not body:
            lines.append("    pass")
        self.fn_defs.append(lines)
        self.fn_names[index] = name
        return name

    # -- assembly ------------------------------------------------------------

    def build(self, key="", codegen_version=0):
        """Generate the kernel module source for this design."""
        blocks = []  # (process, lines-at-indent-1, needs_running) | demoted
        for process in self.order:
            try:
                lines, needs_running = self._compile_comb(process)
                blocks.append((process, lines, needs_running))
                self.compiled.append(self.proc_index[id(process)])
            except NotCompilable as exc:
                index = self.proc_index[id(process)]
                self.demoted[index] = str(exc)
                blocks.append((process, None, False))
        for process in self.design.processes:
            if process.kind == "comb":
                continue
            try:
                self._compile_fn(process)
                self.compiled.append(self.proc_index[id(process)])
            except NotCompilable as exc:
                self.demoted[self.proc_index[id(process)]] = str(exc)

        settle = self._render_settle(blocks)
        ticks = self._render_ticks()
        pokes = self._render_pokes()

        out = [
            '"""Generated fused simulation kernel '
            "(repro.sim.compile.kernel).",
            "",
            f"design {key or self.design.top_name}",
            f"codegen v{codegen_version} trace={self.trace} "
            f"coverage={self.cov is not None}",
            '"""',
            "from functools import partial as _pt",
            "",
            "from repro.sim.engine import SimulationError, _MAX_DELTAS",
            "from repro.sim.values import Value",
            "",
        ]
        out.extend(self.module_lines)
        out.append("")
        out.append("")
        out.append("def bind(design):")
        out.append("    _signals = design.signals")
        out.append("    _memories = design.memories")
        out.append("    _procs = design.processes")
        out.extend("    " + line for line in self.bind_lines)
        out.append("")
        for commit_lines in self.commit_defs:
            out.extend("    " + line for line in commit_lines)
            out.append("")
        for fn_lines in self.fn_defs:
            out.extend("    " + line for line in fn_lines)
            out.append("")
        fid = ", ".join(
            f"id(_procs[{index}]): {name}"
            for index, name in sorted(self.fn_names.items())
        )
        out.append(f"    _fid = {{{fid}}}")
        out.append("")
        out.extend("    " + line for line in settle)
        out.append("")
        for tick_lines in ticks.values():
            out.extend("    " + line for line in tick_lines)
            out.append("")
        for poke_lines in pokes.values():
            out.extend("    " + line for line in poke_lines)
            out.append("")
        tick_map = ", ".join(
            f"{name!r}: _tick_{i}" for i, name in enumerate(ticks)
        )
        poke_map = ", ".join(
            f"{name!r}: _poke_{i}" for i, name in enumerate(pokes)
        )
        out.append("    return {")
        out.append("        'settle': _settle,")
        out.append(f"        'ticks': {{{tick_map}}},")
        out.append(f"        'pokes': {{{poke_map}}},")
        out.append("        'fns': {" + ", ".join(
            f"{index}: {name}"
            for index, name in sorted(self.fn_names.items())
        ) + "},")
        out.append(f"        'order': {[self.proc_index[id(p)] for p in self.order]!r},")
        out.append(f"        'compiled': {sorted(self.compiled)!r},")
        out.append(f"        'demoted': {self.demoted!r},")
        out.append("    }")
        return "\n".join(out) + "\n"

    def _render_settle(self, blocks):
        lines = []

        def emit(indent, text):
            lines.append("    " * indent + text)

        emit(0, "def _settle(sim):")
        emit(1, "d = sim._dirty")
        emit(1, "if 1 not in d and not sim._clocked and not sim._nba:")
        emit(2, "return")
        for helper, attr in (("_W", "_write_signal"),
                             ("_SB", "_store_bit"),
                             ("_SS", "_store_slice"),
                             ("_MW", "_mem_write")):
            if helper in self.uses:
                emit(1, f"{helper} = sim.{attr}")
        if self.trace:
            emit(1, "_tr = sim.trace")
            emit(1, "_t = sim.time")
        emit(1, "ec = 0")
        emit(1, "deltas = 0")
        emit(1, "try:")
        emit(2, "while True:")
        emit(3, "while 1 in d:")
        hoist = ["{0} = {1}.value".format(local, slot)
                 for local, slot in self._hoisted.values()]
        for line in hoist:
            emit(4, line)
        if not blocks and not hoist:
            emit(4, "pass")
        for process, body, needs_running in blocks:
            level = self.level_of[id(process)]
            emit(4, f"if d[{level}]:")
            emit(5, f"d[{level}] = 0")
            emit(5, "deltas += 1")
            emit(5, "if deltas > _MAX_DELTAS:")
            emit(6, "raise SimulationError('design did not settle "
                    "(combinational loop?)')")
            if body is None:
                # Demoted: interpreted at its level, then the hoisted
                # locals it may have written are refreshed.
                pname = self.bind_process(process)
                emit(5, f"sim._run_process({pname})")
                sets = write_set(process)
                for signal in (sets[0] if sets else ()):
                    entry = self._hoisted.get(id(signal))
                    if entry is not None:
                        emit(5, f"{entry[0]} = {entry[1]}.value")
            else:
                if needs_running:
                    emit(5, f"sim._running = "
                            f"{self.bind_process(process)}")
                for line in body:
                    emit(4, line)  # body lines carry one indent level
                if needs_running:
                    emit(5, "sim._running = None")
        emit(3, "if sim._clocked:")
        emit(4, "_cl = sim._clocked")
        emit(4, "sim._clocked = []")
        emit(4, "sim._clocked_set.clear()")
        emit(4, "for _p in _cl:")
        emit(5, "_f = _fid.get(id(_p))")
        emit(5, "if _f is not None:")
        emit(6, "_f(sim)")
        emit(5, "else:")
        emit(6, "sim._run_process(_p)")
        emit(3, "if 1 not in d and sim._nba:")
        emit(4, "_u = sim._nba")
        emit(4, "sim._nba = []")
        emit(4, "for _e in _u:")
        emit(5, "if type(_e) is tuple:")
        emit(6, "_e[0](sim, _e[1])")
        emit(5, "else:")
        emit(6, "_e()")
        emit(3, "if 1 not in d and not sim._clocked and not sim._nba:")
        emit(4, "return")
        emit(1, "finally:")
        if self.any_running:
            emit(2, "sim._running = None")
        emit(2, "sim.event_count += ec")
        return lines

    # -- per-signal write committers -----------------------------------------

    def commit_fn_for(self, signal):
        """Name of the generated per-signal committer ``_nc{i}(sim, v)``.

        Seq/initial whole-signal stores (blocking and NBA) route
        through it: the engine's generic write — listener walk,
        scheduler call, per-listener level lookup — collapses to a
        change check plus statically-known dirty marks and edge scans.
        Never used from comb bodies (their self-wake suppression needs
        ``sim._running``, which this path skips by construction).
        """
        name = self._commit_fns.get(id(signal))
        if name is None:
            name = f"_nc{len(self._commit_fns)}"
            self._commit_fns[id(signal)] = name
            self.commit_defs.append(self._render_commit_fn(name, signal))
        return name

    def _render_commit_fn(self, name, signal):
        lines = []

        def emit(indent, text):
            lines.append("    " * indent + text)

        slot = self.bind_object(signal, "S")
        width = signal.width
        signed = bool(signal.signed)
        comb_levels = sorted({
            self.level_of[id(p)] for p in signal.comb_listeners
        })
        emit(0, f"def {name}(sim, _v):")
        emit(1, f"if _v.width != {width} or _v.signed != {signed}:")
        emit(2, f"_v = _v.resize({width}, {signed})")
        emit(1, f"_old = {slot}.value")
        emit(1, "if _old.bits == _v.bits and _old.xmask == _v.xmask:")
        emit(2, "return")
        emit(1, f"{slot}.value = _v")
        emit(1, "sim.event_count += 1")
        if self.trace:
            emit(1, "_tr = sim.trace")
            emit(1, "_t = sim.time")
            pc = _TickEmitter(lines, 1)
            self._emit_trace(pc, signal.name, "_v")
        for level in comb_levels:
            emit(1, f"sim._dirty[{level}] = 1")
        if signal.edge_listeners:
            emit(1, "_ob = None if _old.xmask & 1 else _old.bits & 1")
            emit(1, "_nb = None if _v.xmask & 1 else _v.bits & 1")
            emit(1, "_cs = sim._clocked_set")
            for edge, process in signal.edge_listeners:
                pname = self.bind_process(process)
                if edge == "posedge":
                    emit(1, "if _nb == 1 and _ob != 1:")
                elif edge == "negedge":
                    emit(1, "if _nb == 0 and _ob != 0:")
                else:
                    emit(1, "if True:")
                emit(2, f"if id({pname}) not in _cs:")
                emit(3, f"_cs.add(id({pname}))")
                emit(3, f"sim._clocked.append({pname})")
        return lines

    def mem_commit_fn_for(self, memory):
        """Name of the generated memory committer ``_nm{i}(sim, (i, v))``.

        Replaces the ``functools.partial(_MW, ...)`` allocation per
        seq memory write with a tuple append, and the listener walk
        with static dirty marks.  Like the signal committers, never
        used from comb bodies (self-wake suppression)."""
        name = self._mem_commit_fns.get(id(memory))
        if name is None:
            name = f"_nm{len(self._mem_commit_fns)}"
            self._mem_commit_fns[id(memory)] = name
            self.commit_defs.append(
                self._render_mem_commit_fn(name, memory)
            )
        return name

    def _render_mem_commit_fn(self, name, memory):
        lines = []

        def emit(indent, text):
            lines.append("    " * indent + text)

        slot = self.bind_object(memory, "M")
        lo, hi, width = memory.lo, memory.hi, memory.width
        offset = f" - {lo}" if lo else ""
        emit(0, f"def {name}(sim, _a):")
        emit(1, "_i = _a[0]")
        emit(1, f"if _i is not None and {lo} <= _i <= {hi}:")
        emit(2, "_v = _a[1]")
        emit(2, f"if _v.width != {width}:")
        emit(3, f"_v = _v.resize({width})")
        emit(2, f"{slot}.words[_i{offset}] = _v")
        # _notify_memory_write counts and wakes unconditionally, even
        # for out-of-range writes — mirror that exactly.
        emit(1, "sim.event_count += 1")
        for level in sorted({
            self.level_of[id(p)] for p in memory.comb_listeners
        }):
            emit(1, f"sim._dirty[{level}] = 1")
        return lines

    # -- poke ----------------------------------------------------------------

    def _render_pokes(self):
        """One fused ``poke`` per top-level port signal.

        The generic path pays a signal lookup, an int-wrap memo, and a
        fully generic ``_write_signal`` per drive; the fused one is a
        per-signal closure with a private int->Value memo, the change
        check inlined, and statically-known listener marks — the
        testbench driver's hot path."""
        pokes = {}
        for name, (_direction, signal) in self.design.ports.items():
            if signal.name != name:
                continue  # defensive: only top-level flat names
            pokes[name] = self._render_poke(len(pokes), signal)
        return pokes

    def _render_poke(self, index, signal):
        lines = []

        def emit(indent, text):
            lines.append("    " * indent + text)

        slot = self.bind_object(signal, "S")
        width = signal.width
        signed = bool(signal.signed)
        comb_levels = sorted({
            self.level_of[id(p)] for p in signal.comb_listeners
        })
        emit(0, f"_pc{index} = {{}}")
        emit(0, f"def _poke_{index}(sim, value):")
        emit(1, f"_old = {slot}.value")
        emit(1, "if type(value) is int:")
        emit(2, f"_v = _pc{index}.get(value)")
        emit(2, "if _v is None:")
        emit(3, f"_v = _pc{index}[value] = "
                f"Value(value, {width}, 0, {signed})")
        emit(2, "if _old.bits == _v.bits and _old.xmask == _v.xmask:")
        emit(3, "return")
        emit(1, "else:")
        emit(2, f"_v = value")
        emit(2, f"if _v.width != {width} or _v.signed != {signed}:")
        emit(3, f"_v = _v.resize({width}, {signed})")
        emit(2, "if _old.bits == _v.bits and _old.xmask == _v.xmask:")
        emit(3, "return")
        emit(1, f"{slot}.value = _v")
        emit(1, "sim.event_count += 1")
        if self.trace:
            emit(1, "_tr = sim.trace")
            emit(1, "_t = sim.time")
            pc = _TickEmitter(lines, 1)
            self._emit_trace(pc, signal.name, "_v")
        for level in comb_levels:
            emit(1, f"sim._dirty[{level}] = 1")
        if signal.edge_listeners:
            emit(1, "_ob = None if _old.xmask & 1 else _old.bits & 1")
            emit(1, "_nb = None if _v.xmask & 1 else _v.bits & 1")
            emit(1, "_cs = sim._clocked_set")
            for edge, process in signal.edge_listeners:
                pname = self.bind_process(process)
                if edge == "posedge":
                    emit(1, "if _nb == 1 and _ob != 1:")
                elif edge == "negedge":
                    emit(1, "if _nb == 0 and _ob != 0:")
                else:
                    emit(1, "if True:")
                emit(2, f"if id({pname}) not in _cs:")
                emit(3, f"_cs.add(id({pname}))")
                emit(3, f"sim._clocked.append({pname})")
        return lines

    # -- tick ----------------------------------------------------------------

    def _render_ticks(self):
        """One fused ``tick`` per signal with edge listeners."""
        ticks = {}
        for name, signal in self.design.signals.items():
            if not signal.edge_listeners:
                continue
            if any(id(p) not in self.proc_index
                   for _, p in signal.edge_listeners):
                continue  # defensive: unknown listener process
            ticks[name] = self._render_tick(len(ticks), signal)
        return ticks

    def _render_tick(self, index, signal):
        lines = []

        def emit(indent, text):
            lines.append("    " * indent + text)

        one = self.bind_const(
            Value(1, signal.width, 0, bool(signal.signed))
        )
        zero = self.bind_const(
            Value(0, signal.width, 0, bool(signal.signed))
        )
        slot = self.bind_object(signal, "S")
        comb_levels = sorted({
            self.level_of[id(p)] for p in signal.comb_listeners
        })
        wake_on_fall = bool(signal.comb_listeners) or any(
            edge != "posedge" for edge, _ in signal.edge_listeners
        )

        def commit(value_name, new_bit):
            # Mirrors _write_signal for this one statically-known
            # drive: change check, slot store, trace, comb wake-ups,
            # then the edge scan — in listener-list order, exactly the
            # order the engine's scan appends in.
            emit(2, f"_old = {slot}.value")
            if new_bit:
                emit(2, "if _old.bits != 1 or _old.xmask:")
            else:
                emit(2, "if _old.bits or _old.xmask:")
            emit(3, f"{slot}.value = {value_name}")
            emit(3, "sim.event_count += 1")
            if self.trace:
                pc = _TickEmitter(lines, 3)
                pc.emit("_t = sim.time")
                self._emit_trace(pc, signal.name, value_name)
            for level in comb_levels:
                emit(3, f"d[{level}] = 1")
            emit(3, "_ob = None if _old.xmask & 1 else _old.bits & 1")
            for edge, process in signal.edge_listeners:
                fires_at = {"posedge": 1, "negedge": 0}.get(edge)
                if fires_at is not None and fires_at != new_bit:
                    continue  # this edge cannot fire on this drive
                pname = self.bind_process(process)
                indent = 3
                if fires_at is not None:
                    emit(3, f"if _ob != {new_bit}:")
                    indent = 4
                emit(indent, f"if id({pname}) not in _cs:")
                emit(indent + 1, f"_cs.add(id({pname}))")
                emit(indent + 1, f"sim._clocked.append({pname})")

        emit(0, f"def _tick_{index}(sim, cycles, half_period):")
        emit(1, "_cs = sim._clocked_set")
        if comb_levels:
            emit(1, "d = sim._dirty")
        if self.trace:
            emit(1, "_tr = sim.trace")
        emit(1, "for _ in range(cycles):")
        commit(one, 1)
        emit(2, "_settle(sim)")
        emit(2, "sim.time += half_period")
        commit(zero, 0)
        if wake_on_fall:
            emit(2, "_settle(sim)")
        emit(2, "sim.time += half_period")
        return lines


class _TickEmitter:
    """Minimal emit/indent adapter so :meth:`KernelCompiler._emit_trace`
    can write into a tick function's line buffer."""

    def __init__(self, lines, indent):
        self.lines = lines
        self.indent = indent
        self.counter = 0

    def emit(self, text):
        self.lines.append("    " * self.indent + text)

    def tmp(self):
        self.counter += 1
        return f"_tk{self.counter}"


def build_kernel_source(design, order, trace=True, coverage=None,
                        key="", codegen_version=0):
    """Generate the fused-kernel module source for ``design``."""
    compiler = KernelCompiler(design, order, trace=trace,
                              coverage=coverage)
    return compiler.build(key=key, codegen_version=codegen_version)
